"""Reliable, ordered delivery over the lossy network model.

The Zmail paper's channel model (§3) assumes every sent message is
eventually received — credit anti-symmetry (§4.4) is simply false if a
paid email can vanish in transit (the sender counted +1, the receiver
never counted −1, and an honest pair looks like a cheater). Real SMTP
gets this from TCP plus retry queues. This module provides the
equivalent for the simulated network: per-link sequence numbers,
cumulative acknowledgments, and timer-driven retransmission, giving
exactly-once in-order delivery over a :class:`~repro.sim.network.Network`
with arbitrary loss (< 1.0).

Failure-injection tests use it both ways: demonstrating that loss breaks
reconciliation on raw links, and that :class:`ReliableLink` restores the
paper's assumption. The chaos harness (:mod:`repro.chaos`) additionally
crashes endpoints mid-run: :meth:`ReliableEndpoint.close` cancels the
outstanding retransmission timers (so none fires into a dead endpoint)
and :meth:`ReliableEndpoint.reopen` re-arms them from the durable
sequence state, modelling a mail queue that survives a restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError
from .engine import Engine
from .events import EventHandle
from .network import Network

__all__ = ["ReliablePayload", "ReliableAck", "ReliableEndpoint", "ReliableLink"]


@dataclass(frozen=True)
class ReliablePayload:
    """A data frame: link-scoped sequence number plus the user payload."""

    seq: int
    payload: Any


@dataclass(frozen=True)
class ReliableAck:
    """Cumulative acknowledgment: every frame below ``next_expected`` arrived."""

    next_expected: int


@dataclass
class _OutboundState:
    """Sender-side per-destination state.

    ``timer`` holds the outstanding retransmission timer's handle so a
    teardown (:meth:`ReliableEndpoint.close`) can cancel it; ``retries``
    counts consecutive retransmission rounds without ack progress, which
    also drives the exponential backoff schedule.
    """

    next_seq: int = 0
    unacked: dict[int, Any] = field(default_factory=dict)
    retries: int = 0
    timer: EventHandle | None = None


@dataclass
class _InboundState:
    """Receiver-side per-source state."""

    next_expected: int = 0
    buffer: dict[int, Any] = field(default_factory=dict)


class ReliableEndpoint:
    """Network endpoint adapter adding reliability to an inner handler.

    Wire one of these per node; it registers itself with the network under
    ``name`` and delivers application payloads to ``on_payload(src, data)``
    exactly once, in per-link order, despite loss and duplication below.

    Args:
        retransmit_interval: Base retransmission timeout in seconds.
        max_retries: Consecutive no-progress retransmission rounds before
            the endpoint gives up with :class:`SimulationError`; ``None``
            retries forever (chaos campaigns, where the peer *will* come
            back and convergence is the property under test).
        backoff: Multiplier applied to the interval per consecutive
            no-progress round (1.0 = fixed interval, the historic default).
        max_interval: Cap on the backed-off interval, if any.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        engine: Engine,
        on_payload: Callable[[str, Any], None],
        *,
        retransmit_interval: float = 1.0,
        max_retries: int | None = 100,
        backoff: float = 1.0,
        max_interval: float | None = None,
    ) -> None:
        if retransmit_interval <= 0:
            raise SimulationError("retransmit_interval must be positive")
        if backoff < 1.0:
            raise SimulationError("backoff must be >= 1.0")
        if max_interval is not None and max_interval < retransmit_interval:
            raise SimulationError("max_interval must be >= retransmit_interval")
        self.name = name
        self.network = network
        self.engine = engine
        self.on_payload = on_payload
        self.retransmit_interval = retransmit_interval
        self.max_retries = max_retries
        self.backoff = backoff
        self.max_interval = max_interval
        self.closed = False
        self._outbound: dict[str, _OutboundState] = {}
        self._inbound: dict[str, _InboundState] = {}
        self.frames_sent = 0
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.frames_dropped_closed = 0
        network.register(name, self)

    # -- sending -------------------------------------------------------------------

    def send(self, dst: str, payload: Any) -> None:
        """Queue ``payload`` for reliable delivery to endpoint ``dst``."""
        if self.closed:
            raise SimulationError(f"{self.name}: send on a closed endpoint")
        state = self._outbound.setdefault(dst, _OutboundState())
        seq = state.next_seq
        state.next_seq += 1
        state.unacked[seq] = payload
        self._transmit(dst, seq, payload)
        self._arm_retransmit(dst)

    def _transmit(self, dst: str, seq: int, payload: Any) -> None:
        self.frames_sent += 1
        self.network.send(self.name, dst, ReliablePayload(seq, payload))

    def _retransmit_delay(self, state: _OutboundState) -> float:
        delay = self.retransmit_interval * (self.backoff ** state.retries)
        if self.max_interval is not None and delay > self.max_interval:
            delay = self.max_interval
        return delay

    def _arm_retransmit(self, dst: str) -> None:
        state = self._outbound[dst]
        if state.timer is not None:
            return

        def timer() -> None:
            state.timer = None
            if self.closed or not state.unacked:
                return
            if self.max_retries is not None and state.retries >= self.max_retries:
                raise SimulationError(
                    f"{self.name}->{dst}: gave up after {state.retries} retries"
                )
            state.retries += 1
            for seq in sorted(state.unacked):
                self.retransmissions += 1
                self._transmit(dst, seq, state.unacked[seq])
            self._arm_retransmit(dst)

        state.timer = self.engine.schedule_after(
            self._retransmit_delay(state), timer, label=f"rexmit {self.name}->{dst}"
        )

    # -- lifecycle (crash/restart) -----------------------------------------------------

    def close(self) -> None:
        """Tear the endpoint down: cancel every outstanding retransmit timer.

        Without this, a torn-down endpoint's timers keep firing into the
        dead object — retransmitting frames from a process that no longer
        exists and eventually crashing the whole run via ``gave up``.
        Sequence state is retained (it models the durable mail-queue
        journal); :meth:`reopen` resumes from it. Idempotent.
        """
        self.closed = True
        for state in self._outbound.values():
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None

    def reopen(self) -> None:
        """Restart after :meth:`close`: re-arm retransmission of unacked frames."""
        if not self.closed:
            return
        self.closed = False
        # Sorted so the timer-arming order (and hence the engine's
        # same-instant tie-break order) is independent of dict insertion
        # history — a journal-restored endpoint behaves identically to
        # one that lived through the crash in memory.
        for dst, state in sorted(self._outbound.items()):
            if state.unacked:
                state.retries = 0
                self._arm_retransmit(dst)

    # -- durable state (crash/restart with a persistent store) -------------------------

    def state_dict(
        self, encode: Callable[[Any], Any] | None = None
    ) -> dict[str, Any]:
        """The endpoint's durable sequence state (its mail-queue journal).

        Covers per-destination send sequence numbers and unacked frames,
        and per-source receive cursors and reorder buffers — everything a
        restarted process needs to resume exactly-once delivery. Timers,
        retry counters and wire statistics are volatile. ``encode`` maps
        application payloads to JSON-compatible values (identity when
        they already are).
        """
        enc = encode if encode is not None else (lambda payload: payload)
        return {
            "outbound": {
                dst: {
                    "next_seq": state.next_seq,
                    "unacked": {
                        str(seq): enc(payload)
                        for seq, payload in sorted(state.unacked.items())
                    },
                }
                for dst, state in sorted(self._outbound.items())
            },
            "inbound": {
                src: {
                    "next_expected": state.next_expected,
                    "buffer": {
                        str(seq): enc(payload)
                        for seq, payload in sorted(state.buffer.items())
                    },
                }
                for src, state in sorted(self._inbound.items())
            },
        }

    def load_state(
        self,
        state: dict[str, Any],
        decode: Callable[[Any], Any] | None = None,
    ) -> None:
        """Replace the sequence state with a :meth:`state_dict` journal.

        Disk is authoritative: existing in-memory queues are discarded
        wholesale. Call on a closed endpoint, then :meth:`reopen` to
        re-arm retransmission of the rehydrated unacked frames.

        Raises:
            SimulationError: if the journal is malformed.
        """
        dec = decode if decode is not None else (lambda payload: payload)
        try:
            outbound = {
                dst: _OutboundState(
                    next_seq=int(blob["next_seq"]),
                    unacked={
                        int(seq): dec(payload)
                        for seq, payload in blob["unacked"].items()
                    },
                )
                for dst, blob in state["outbound"].items()
            }
            inbound = {
                src: _InboundState(
                    next_expected=int(blob["next_expected"]),
                    buffer={
                        int(seq): dec(payload)
                        for seq, payload in blob["buffer"].items()
                    },
                )
                for src, blob in state["inbound"].items()
            }
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SimulationError(
                f"{self.name}: malformed endpoint journal: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        for old in self._outbound.values():
            if old.timer is not None:
                old.timer.cancel()
                old.timer = None
        self._outbound = outbound
        self._inbound = inbound

    # -- receiving -------------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        """Network-facing entry point (frames and acks)."""
        if self.closed:
            # A crashed process receives nothing; the wire frame is lost
            # (the sender's retransmission timer recovers it later).
            self.frames_dropped_closed += 1
            return
        if isinstance(message, ReliableAck):
            self._handle_ack(src, message)
        elif isinstance(message, ReliablePayload):
            self._handle_frame(src, message)
        else:
            raise SimulationError(
                f"{self.name}: unexpected raw message {message!r} from {src}"
            )

    def _handle_ack(self, src: str, ack: ReliableAck) -> None:
        state = self._outbound.setdefault(src, _OutboundState())
        progressed = False
        for seq in list(state.unacked):
            if seq < ack.next_expected:
                del state.unacked[seq]
                progressed = True
        if progressed:
            # The link is alive: reset the give-up counter and backoff.
            state.retries = 0

    def _handle_frame(self, src: str, frame: ReliablePayload) -> None:
        state = self._inbound.setdefault(src, _InboundState())
        if frame.seq < state.next_expected:
            self.duplicates_dropped += 1
        elif frame.seq == state.next_expected:
            self.on_payload(src, frame.payload)
            state.next_expected += 1
            # Drain any buffered successors.
            while state.next_expected in state.buffer:
                self.on_payload(src, state.buffer.pop(state.next_expected))
                state.next_expected += 1
        elif frame.seq in state.buffer:
            self.duplicates_dropped += 1
        else:
            state.buffer[frame.seq] = frame.payload
        # Cumulative ack (also re-acks duplicates so the sender converges).
        self.network.send(self.name, src, ReliableAck(state.next_expected))

    # -- introspection -----------------------------------------------------------------

    def unacked_count(self, dst: str) -> int:
        """Frames to ``dst`` not yet acknowledged."""
        state = self._outbound.get(dst)
        return len(state.unacked) if state else 0

    def all_delivered(self) -> bool:
        """Whether every sent frame has been acknowledged."""
        return all(not s.unacked for s in self._outbound.values())


class ReliableLink:
    """Convenience: a bidirectional reliable pipe between two names.

    Example:
        >>> from repro.sim import Engine, Network, SeededStreams, LinkSpec
        >>> engine = Engine()
        >>> net = Network(engine, SeededStreams(0),
        ...               default_link=LinkSpec(loss_rate=0.3))
        >>> received = []
        >>> link = ReliableLink("a", "b", net, engine,
        ...                     lambda src, p: received.append(p))
        >>> for i in range(20):
        ...     link.a.send("b", i)
        >>> engine.run(until=1000)
        >>> received == list(range(20))
        True
    """

    def __init__(
        self,
        name_a: str,
        name_b: str,
        network: Network,
        engine: Engine,
        on_payload: Callable[[str, Any], None],
        *,
        retransmit_interval: float = 1.0,
    ) -> None:
        self.a = ReliableEndpoint(
            name_a, network, engine, on_payload,
            retransmit_interval=retransmit_interval,
        )
        self.b = ReliableEndpoint(
            name_b, network, engine, on_payload,
            retransmit_interval=retransmit_interval,
        )

    def close(self) -> None:
        """Tear down both endpoints, cancelling their retransmit timers."""
        self.a.close()
        self.b.close()
