"""Synthetic spam/ham corpora (substitute for the era's real mail).

Real corpora matter to a content filter only through token statistics;
these generators control those statistics directly (class-indicative
pools, overlap, misspelling evasion), so the filtering baseline exhibits
the same false-positive and evasion behaviour the paper discusses.
"""

from .datasets import Dataset, make_dataset
from .generator import CorpusGenerator, LabeledMessage
from .vocabulary import COMMON_WORDS, HAM_WORDS, SPAM_WORDS, Vocabulary, misspell

__all__ = [
    "Dataset",
    "make_dataset",
    "CorpusGenerator",
    "LabeledMessage",
    "Vocabulary",
    "misspell",
    "COMMON_WORDS",
    "HAM_WORDS",
    "SPAM_WORDS",
]
