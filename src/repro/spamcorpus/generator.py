"""Synthetic spam/ham message generation.

Messages are bags of tokens drawn from a class-conditional mixture over
the :mod:`repro.spamcorpus.vocabulary` pools. Spam generation optionally
applies the misspelling evasion of §2.2 ("spammers may deliberately
misspell sensitive words"), which knocks indicative tokens out of a
filter's learned vocabulary — exactly the attack the paper argues makes
content filtering a losing game.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..smtp.message import MailMessage
from .vocabulary import Vocabulary, misspell

__all__ = ["LabeledMessage", "CorpusGenerator"]


@dataclass(frozen=True)
class LabeledMessage:
    """One generated message with its ground-truth label."""

    tokens: tuple[str, ...]
    is_spam: bool
    evasive: bool = False

    @property
    def text(self) -> str:
        """The message body as whitespace-joined tokens."""
        return " ".join(self.tokens)

    def to_mail(self, *, sender: str, recipient: str) -> MailMessage:
        """Wrap as a :class:`MailMessage` for transport-level tests."""
        subject_tokens = self.tokens[: min(5, len(self.tokens))]
        return MailMessage.compose(
            sender=sender,
            recipient=recipient,
            subject=" ".join(subject_tokens),
            body=self.text,
        )


@dataclass
class CorpusGenerator:
    """Seeded generator of labelled spam/ham messages.

    Attributes:
        vocabulary: Token pools (controls class separation).
        ham_signal: Probability a ham token is drawn from the ham pool
            (remainder from the common pool).
        spam_signal: Same for spam.
        mean_length: Mean message length in tokens (geometric).
        seed: RNG seed; every generator with the same seed produces the
            same corpus.
    """

    vocabulary: Vocabulary = field(default_factory=Vocabulary)
    ham_signal: float = 0.35
    spam_signal: float = 0.45
    mean_length: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ham_signal <= 1.0:
            raise ValueError("ham_signal outside [0, 1]")
        if not 0.0 <= self.spam_signal <= 1.0:
            raise ValueError("spam_signal outside [0, 1]")
        if self.mean_length < 1:
            raise ValueError("mean_length must be >= 1")
        self._rng = random.Random(self.seed)

    # -- single messages ---------------------------------------------------------

    def _length(self) -> int:
        # Geometric with the configured mean, floored at 5 tokens.
        p = 1.0 / self.mean_length
        length = 1
        while self._rng.random() > p and length < 10 * self.mean_length:
            length += 1
        return max(5, length)

    def ham(self) -> LabeledMessage:
        """Generate one legitimate message."""
        tokens = []
        for _ in range(self._length()):
            pool = (
                self.vocabulary.ham
                if self._rng.random() < self.ham_signal
                else self.vocabulary.common
            )
            tokens.append(self._rng.choice(pool))
        return LabeledMessage(tuple(tokens), is_spam=False)

    def spam(self, *, evasion_rate: float = 0.0) -> LabeledMessage:
        """Generate one spam message.

        Args:
            evasion_rate: Probability each spam-indicative token is
                obfuscated by :func:`~repro.spamcorpus.vocabulary.misspell`.
        """
        if not 0.0 <= evasion_rate <= 1.0:
            raise ValueError("evasion_rate outside [0, 1]")
        tokens = []
        evaded = False
        for _ in range(self._length()):
            if self._rng.random() < self.spam_signal:
                word = self._rng.choice(self.vocabulary.spam)
                if evasion_rate and self._rng.random() < evasion_rate:
                    word = misspell(word, self._rng)
                    evaded = True
            else:
                word = self._rng.choice(self.vocabulary.common)
            tokens.append(word)
        return LabeledMessage(tuple(tokens), is_spam=True, evasive=evaded)

    # -- corpora --------------------------------------------------------------------

    def corpus(
        self,
        *,
        n_ham: int,
        n_spam: int,
        evasion_rate: float = 0.0,
        shuffle: bool = True,
    ) -> list[LabeledMessage]:
        """Generate a labelled corpus, optionally shuffled."""
        messages = [self.ham() for _ in range(n_ham)]
        messages += [self.spam(evasion_rate=evasion_rate) for _ in range(n_spam)]
        if shuffle:
            self._rng.shuffle(messages)
        return messages
