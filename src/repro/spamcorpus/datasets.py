"""Ready-made train/test splits for the filtering experiments."""

from __future__ import annotations

from dataclasses import dataclass

from .generator import CorpusGenerator, LabeledMessage
from .vocabulary import Vocabulary

__all__ = ["Dataset", "make_dataset"]


@dataclass(frozen=True)
class Dataset:
    """A train/test split with independent generation seeds."""

    train: list[LabeledMessage]
    test: list[LabeledMessage]

    @property
    def train_spam_fraction(self) -> float:
        """Spam share of the training set."""
        if not self.train:
            return 0.0
        return sum(m.is_spam for m in self.train) / len(self.train)


def make_dataset(
    *,
    n_train: int = 2000,
    n_test: int = 1000,
    spam_fraction: float = 0.6,
    evasion_rate: float = 0.0,
    test_evasion_rate: float | None = None,
    extra_overlap: float = 0.0,
    seed: int = 0,
) -> Dataset:
    """Build a dataset with the paper-era 60% default spam share.

    Args:
        evasion_rate: Misspelling evasion in the *training* spam.
        test_evasion_rate: Evasion in the test spam; defaults to the
            training rate. Setting it higher models spammers adapting
            after the filter is trained — the E10 evasion experiment.
        extra_overlap: Vocabulary overlap knob (harder classification).
        seed: Controls both splits (derived seeds keep them independent).
    """
    if not 0.0 <= spam_fraction <= 1.0:
        raise ValueError("spam_fraction outside [0, 1]")
    vocabulary = Vocabulary(extra_overlap=extra_overlap, seed=seed)
    train_gen = CorpusGenerator(vocabulary=vocabulary, seed=seed * 2 + 1)
    test_gen = CorpusGenerator(vocabulary=vocabulary, seed=seed * 2 + 2)
    if test_evasion_rate is None:
        test_evasion_rate = evasion_rate
    train = train_gen.corpus(
        n_ham=round(n_train * (1 - spam_fraction)),
        n_spam=round(n_train * spam_fraction),
        evasion_rate=evasion_rate,
    )
    test = test_gen.corpus(
        n_ham=round(n_test * (1 - spam_fraction)),
        n_spam=round(n_test * spam_fraction),
        evasion_rate=test_evasion_rate,
    )
    return Dataset(train=train, test=test)
