"""Vocabularies for synthetic spam/ham generation.

Real 2004-era corpora (which we do not have) matter to a Bayesian filter
only through their token statistics: spam and ham share most function
words but differ in a heavy-tailed set of class-indicative tokens. The
vocabularies here encode exactly that structure, with controllable
overlap, so the filtering baseline's false-positive and evasion behaviour
(what experiment E10 measures) is driven by the same mechanism as on real
mail.
"""

from __future__ import annotations

import random

__all__ = [
    "COMMON_WORDS",
    "HAM_WORDS",
    "SPAM_WORDS",
    "misspell",
    "Vocabulary",
]

# Function words and everyday vocabulary shared by both classes.
COMMON_WORDS = [
    "the", "and", "for", "you", "that", "with", "this", "have", "from",
    "your", "are", "was", "will", "can", "all", "been", "about", "there",
    "when", "which", "their", "would", "them", "like", "time", "just",
    "know", "people", "into", "year", "good", "some", "could", "see",
    "other", "than", "then", "now", "only", "come", "over", "also",
    "back", "after", "work", "first", "well", "even", "want", "because",
    "these", "give", "day", "most", "email", "please", "thanks", "best",
    "regards", "meeting", "today", "tomorrow", "week", "send", "message",
]

# Tokens indicative of legitimate correspondence.
HAM_WORDS = [
    "project", "report", "deadline", "schedule", "attached", "review",
    "budget", "quarterly", "team", "lunch", "conference", "interview",
    "resume", "draft", "feedback", "agenda", "minutes", "proposal",
    "contract", "invoice", "weekend", "family", "dinner", "birthday",
    "photos", "vacation", "flight", "reservation", "homework", "class",
    "lecture", "assignment", "paper", "professor", "semester", "thesis",
    "commit", "patch", "release", "server", "deploy", "database",
    "kernel", "module", "compile", "merge", "branch", "ticket",
]

# Tokens indicative of 2004-vintage spam.
SPAM_WORDS = [
    "viagra", "cialis", "pharmacy", "prescription", "pills", "meds",
    "mortgage", "refinance", "rates", "approved", "loan", "credit",
    "debt", "consolidate", "winner", "congratulations", "prize",
    "lottery", "million", "dollars", "nigeria", "inheritance", "transfer",
    "urgent", "confidential", "investment", "opportunity", "guaranteed",
    "free", "offer", "limited", "act", "unsubscribe", "click", "here",
    "enlargement", "weight", "loss", "miracle", "cheap", "discount",
    "rolex", "replica", "software", "oem", "casino", "gambling",
]

_LEET = str.maketrans({"a": "4", "e": "3", "i": "1", "o": "0", "s": "5"})


def misspell(word: str, rng: random.Random) -> str:
    """Obfuscate a word the way evasive spammers did ("se><" for "sex").

    Three paper-era tricks, chosen at random: leetspeak substitution,
    inserted punctuation, or character doubling. The output never equals
    the input for words of length >= 2.
    """
    if len(word) < 2:
        return word + "."
    trick = rng.randrange(3)
    if trick == 0:
        mutated = word.translate(_LEET)
        if mutated != word:
            return mutated
        trick = 1
    if trick == 1:
        pos = rng.randrange(1, len(word))
        return word[:pos] + "." + word[pos:]
    pos = rng.randrange(len(word))
    return word[: pos + 1] + word[pos] + word[pos + 1 :]


class Vocabulary:
    """Token pools with configurable class separation.

    Args:
        extra_overlap: Fraction of class-indicative words additionally
            copied into the common pool — raising it makes the classes
            harder to separate (drives the E10 false-positive sweep).
        seed: RNG seed for the overlap sampling.
    """

    def __init__(self, *, extra_overlap: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= extra_overlap <= 1.0:
            raise ValueError("extra_overlap outside [0, 1]")
        rng = random.Random(seed)
        self.common = list(COMMON_WORDS)
        self.ham = list(HAM_WORDS)
        self.spam = list(SPAM_WORDS)
        if extra_overlap > 0:
            k_ham = int(len(self.ham) * extra_overlap)
            k_spam = int(len(self.spam) * extra_overlap)
            self.common.extend(rng.sample(self.ham, k_ham))
            self.common.extend(rng.sample(self.spam, k_spam))
