"""E9 — incremental deployment from two ISPs has positive feedback (§5).

Runs the adoption model across policies and switch propensities,
checking: full adoption is reached from a two-ISP seed, the per-holdout
switching hazard grows with adoption (the positive-feedback loop), and
stricter non-compliant-mail policies accelerate adoption (the §5 lever).
"""

from conftest import report

from repro.core import AdoptionParams, AdoptionSimulation, NonCompliantMailPolicy
from repro.economics import sweep_policies, sweep_propensity


def test_e9_s_curve_from_two_isps(benchmark):
    def run():
        sim = AdoptionSimulation(
            AdoptionParams(
                n_isps=200, initial_compliant=2,
                base_switch_propensity=0.1, seed=3,
            )
        )
        sim.run(max_rounds=100)
        return sim

    sim = benchmark(run)
    assert sim.rounds[0].compliant_count == 2
    assert sim.rounds[-1].compliant_fraction == 1.0
    assert sim.has_positive_feedback()
    milestones = [
        {
            "milestone": f"{target:.0%}",
            "round": sim.rounds_to_fraction(target),
        }
        for target in (0.1, 0.25, 0.5, 0.9, 1.0)
    ]
    report(
        "E9a",
        "adoption grows from 2 ISPs to everyone via positive feedback",
        milestones,
    )


def test_e9_policy_sweep(benchmark):
    outcomes = benchmark(sweep_policies, n_isps=100, seed=4)
    by_policy = {o.label: o for o in outcomes}
    strict = by_policy[NonCompliantMailPolicy.DISCARD.value]
    lax = by_policy[NonCompliantMailPolicy.DELIVER.value]
    assert (strict.rounds_to_90pct or 999) <= (lax.rounds_to_90pct or 999)
    report(
        "E9b",
        "stricter handling of non-compliant mail accelerates adoption",
        [
            {
                "policy": o.label,
                "rounds_to_50pct": o.rounds_to_half,
                "rounds_to_90pct": o.rounds_to_90pct,
                "final_fraction": f"{o.final_fraction:.0%}",
            }
            for o in outcomes
        ],
    )


def test_e9_propensity_sweep(benchmark):
    propensities = [0.05, 0.15, 0.4]
    outcomes = benchmark(sweep_propensity, propensities, n_isps=100, seed=5)
    speeds = [o.rounds_to_90pct or 9999 for o in outcomes]
    assert speeds == sorted(speeds, reverse=True)
    report(
        "E9c",
        "faster-switching users compress the adoption timeline",
        [
            {
                "propensity": p,
                "rounds_to_90pct": o.rounds_to_90pct,
                "positive_feedback": o.positive_feedback,
            }
            for p, o in zip(propensities, outcomes)
        ],
    )
