"""E10 — filters false-positive and get evaded; Zmail needs no spam
definition (§1.2, §2.2).

Three parts: (a) the Bayes filter's recall collapses under misspelling
evasion while its training-set accuracy looked fine; (b) a harder corpus
(overlapping vocabulary) produces the false positives the paper prices at
$230M/yr, and Zmail's structural false-positive rate is zero; (c) the
full §2 comparison table.
"""

from conftest import report

from repro.baselines import (
    ComparisonScenario,
    NaiveBayesFilter,
    evaluate_filter,
    run_comparison,
)
from repro.spamcorpus import make_dataset


def train_and_eval(evasion: float, overlap: float, seed: int = 9):
    dataset = make_dataset(
        n_train=1500,
        n_test=1500,
        evasion_rate=0.0,
        test_evasion_rate=evasion,
        extra_overlap=overlap,
        seed=seed,
    )
    filt = NaiveBayesFilter(threshold=0.9)
    filt.train(dataset.train)
    return evaluate_filter(filt, dataset.test)


def test_e10_evasion_sweep(benchmark):
    def sweep():
        rows = []
        for evasion in (0.0, 0.3, 0.6, 0.9):
            metrics = train_and_eval(evasion=evasion, overlap=0.0)
            rows.append(
                {
                    "evasion_rate": evasion,
                    "spam_recall": round(metrics.spam_recall, 3),
                    "false_pos_rate": round(metrics.false_positive_rate, 3),
                }
            )
        return rows

    rows = benchmark(sweep)
    recalls = [row["spam_recall"] for row in rows]
    assert recalls[0] > 0.9
    assert recalls[-1] < recalls[0]  # misspelling evasion bites
    report(
        "E10a",
        "spammers' misspelling tricks degrade content filters; Zmail makes "
        "the tricks irrelevant",
        rows,
    )


def test_e10_false_positive_regime(benchmark):
    def sweep():
        rows = []
        for overlap in (0.0, 0.4, 0.8):
            metrics = train_and_eval(evasion=0.0, overlap=overlap)
            rows.append(
                {
                    "vocab_overlap": overlap,
                    "false_pos_rate": round(metrics.false_positive_rate, 4),
                    "spam_recall": round(metrics.spam_recall, 3),
                    "zmail_false_pos": 0.0,
                }
            )
        return rows

    rows = benchmark(sweep)
    # Harder corpora push the filter into the false-positive regime the
    # paper's Jupiter citation prices; Zmail never discards legitimate mail.
    assert rows[-1]["false_pos_rate"] >= rows[0]["false_pos_rate"]
    assert any(row["false_pos_rate"] > 0 for row in rows)
    report(
        "E10b",
        "content filters lose legitimate mail as classes overlap; Zmail's "
        "structural false-positive rate is zero",
        rows,
    )


def test_e10_full_comparison_table(benchmark):
    results = benchmark(
        run_comparison, ComparisonScenario(n_train=1000, n_test=1000)
    )
    by_name = {r.approach: r for r in results}
    zmail = by_name["zmail"]
    assert zmail.ham_lost_fraction == 0.0
    assert not zmail.needs_spam_definition
    assert zmail.resists_evasion
    report(
        "E10c",
        "the full Section 2 comparison: only Zmail combines no spam "
        "definition, no false positives, and per-message sender cost",
        [
            {
                "approach": r.approach,
                "spam_blocked": f"{r.spam_blocked_fraction:.0%}",
                "ham_lost": f"{r.ham_lost_fraction:.1%}",
                "sender_$": round(r.sender_dollar_cost_per_msg, 4),
                "sender_cpu_s": round(r.sender_cpu_seconds_per_msg, 3),
                "rcvr_acts/spam": round(r.receiver_actions_per_spam, 2),
                "needs_defn": r.needs_spam_definition,
            }
            for r in results
        ],
    )


def test_e10_roc_dilemma(benchmark):
    """No threshold gives both high recall and zero ham loss on a hard
    corpus — the §2.2 dilemma is structural, not a tuning failure."""
    from repro.baselines.bayes_filter import NaiveBayesFilter, roc_points
    from repro.spamcorpus import make_dataset

    def sweep():
        dataset = make_dataset(
            n_train=1200, n_test=1200, extra_overlap=0.8, seed=10
        )
        filt = NaiveBayesFilter()
        filt.train(dataset.train)
        return roc_points(
            filt, dataset.test, thresholds=(0.5, 0.9, 0.99, 0.999)
        )

    points = benchmark(sweep)
    rows = [
        {
            "threshold": threshold,
            "spam_recall": round(metrics.spam_recall, 3),
            "false_pos_rate": round(metrics.false_positive_rate, 4),
        }
        for threshold, metrics in points
    ]
    recalls = [row["spam_recall"] for row in rows]
    assert recalls == sorted(recalls, reverse=True)
    report(
        "E10d",
        "the recall/false-positive dilemma across thresholds: protecting "
        "ham costs recall and vice versa; Zmail sits outside the curve",
        rows,
    )
