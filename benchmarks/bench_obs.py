#!/usr/bin/env python3
"""Observability overhead benchmark: what does tracing cost?

Runs the canonical 3-ISP scenario (the one behind ``repro trace``) in
three configurations and records the results in ``BENCH_obs.json``:

* ``off``   — no recorder at all (every emit site is one attribute load
  plus one false branch; this is what production-scale runs pay);
* ``ring``  — full tracing into the default bounded :class:`RingSink`;
* ``jsonl`` — full tracing streamed line-by-line to a JSONL sink
  (written to ``os.devnull`` so the number isolates serialization cost
  from disk speed).

Each configuration runs ``--repeats`` times; spread is reported through
:func:`repro.sim.metrics.summary_stats` (the repo's single stddev
implementation — benchmarks must not reimplement it), and the headline
overhead percentages compare best-of-N times, which are robust to
scheduler noise.

The harness also *asserts observer-effect zero*: all three
configurations must produce identical scenario summaries, and the ring
and jsonl runs must agree on the trace digest (the recorder digests the
canonical line stream independently of which sink stores it). A tracer
that changed outcomes would be measuring a different system.

Usage::

    python benchmarks/bench_obs.py                # 7 repeats per mode
    python benchmarks/bench_obs.py --repeats 3    # quicker smoke run
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
SRC = ROOT / "src"

MODES = ("off", "ring", "jsonl")


def run_once(mode: str, seed: int) -> dict:
    """One canonical run under ``mode``; returns timing and outcome."""
    from repro.obs.canonical import canonical_scenario
    from repro.obs.trace import JsonlSink, RingSink, TraceRecorder

    sink = None
    devnull = None
    if mode == "off":
        recorder = None
    elif mode == "ring":
        sink = RingSink()
        recorder = TraceRecorder(sink=sink)
    elif mode == "jsonl":
        devnull = open(os.devnull, "w", encoding="utf-8")
        sink = JsonlSink(devnull)
        recorder = TraceRecorder(sink=sink)
    else:
        raise SystemExit(f"unknown mode {mode!r}")

    scenario = canonical_scenario(seed=seed, tracer=recorder)
    start = time.perf_counter()
    result = scenario.run()
    elapsed = time.perf_counter() - start
    if devnull is not None:
        sink.close()
        devnull.close()
    return {
        "seconds": elapsed,
        "summary": result.summary(),
        "events": recorder.events_emitted if recorder else 0,
        "digest": recorder.digest() if recorder else None,
    }


def bench_mode(mode: str, seed: int, repeats: int) -> dict:
    """Repeat one mode and summarize its timings."""
    from repro.sim.metrics import summary_stats

    run_once(mode, seed)  # warm-up: import and allocator effects
    runs = [run_once(mode, seed) for _ in range(repeats)]
    seconds = [run["seconds"] for run in runs]
    stats = summary_stats(seconds)
    best = stats["min"]
    events = runs[0]["events"]
    return {
        "mode": mode,
        "repeats": repeats,
        "best_seconds": round(best, 4),
        "mean_seconds": round(stats["mean"], 4),
        "stddev_seconds": round(stats["stddev"], 4),
        "events": events,
        "events_per_sec": round(events / best, 1) if events else None,
        "summary": runs[0]["summary"],
        "digest": runs[0]["digest"],
        "_all_summaries_equal": all(
            run["summary"] == runs[0]["summary"] for run in runs
        ),
        "_all_digests_equal": all(
            run["digest"] == runs[0]["digest"] for run in runs
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=ROOT / "BENCH_obs.json",
        help="result file (default BENCH_obs.json at the repo root)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and check only"
    )
    args = parser.parse_args()

    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    from repro.obs.canonical import CANONICAL_SEED

    seed = CANONICAL_SEED if args.seed is None else args.seed

    results: dict[str, dict] = {}
    for mode in MODES:
        print(f"[bench_obs] {mode}: {args.repeats} repeats ...", flush=True)
        measured = bench_mode(mode, seed, args.repeats)
        print(
            f"    best {measured['best_seconds']}s, "
            f"mean {measured['mean_seconds']}s "
            f"± {measured['stddev_seconds']}s"
            + (
                f", {measured['events']} events"
                if measured["events"]
                else ""
            ),
            flush=True,
        )
        results[mode] = measured

    failures: list[str] = []
    reference = results["off"]["summary"]
    for mode in MODES:
        if results[mode]["summary"] != reference:
            failures.append(
                f"observer effect: {mode} summary differs from off"
            )
        if not results[mode].pop("_all_summaries_equal"):
            failures.append(f"{mode}: summaries varied across repeats")
        if not results[mode].pop("_all_digests_equal"):
            failures.append(f"{mode}: trace digests varied across repeats")
    if results["ring"]["digest"] != results["jsonl"]["digest"]:
        failures.append("ring and jsonl trace digests differ")

    baseline = results["off"]["best_seconds"]
    overhead = {
        mode: round(
            100.0 * (results[mode]["best_seconds"] - baseline) / baseline, 1
        )
        for mode in ("ring", "jsonl")
    }
    for mode, pct in overhead.items():
        print(f"[bench_obs] {mode} overhead vs off: {pct:+.1f}%")

    for failure in failures:
        print(f"OBSERVER-EFFECT FAILURE: {failure}", file=sys.stderr)

    document = {
        "scenario": {"name": "canonical-3isp", "seed": seed},
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "repeats": args.repeats,
        "current": results,
        "overhead_pct_vs_off": overhead,
        "observer_effect_zero": not failures,
    }
    if not args.no_write:
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[bench_obs] wrote {args.output}")

    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
