"""E17 (extension) — the §5 hybrid deployment: filters only at the border.

During incremental deployment a compliant ISP may "require any email from
a non-compliant ISP to pass a spam filter". This experiment measures the
resulting asymmetry with real content flowing end to end: boundary mail
suffers the §2.2 filter pathologies (evasion leaks, ham false positives),
while paid compliant mail is structurally exempt — its false-positive
rate is zero by construction, not by tuning.
"""

from conftest import report

from repro.baselines.letter_filter import (
    ContentProvider,
    make_letter_predicate,
    train_default_filter,
)
from repro.core import NonCompliantMailPolicy, ZmailConfig, ZmailNetwork
from repro.sim import Address, TrafficKind


def run_hybrid(*, evasion: float, overlap: float, threshold: float = 0.7,
               messages: int = 300, seed: int = 17):
    config = ZmailConfig(noncompliant_policy=NonCompliantMailPolicy.FILTER)
    net = ZmailNetwork(
        n_isps=3, users_per_isp=8, compliant=[True, True, False],
        config=config, seed=seed,
    )
    filt = train_default_filter(
        extra_overlap=overlap, seed=seed, threshold=threshold
    )
    predicate = make_letter_predicate(filt)
    for isp in net.compliant_isps().values():
        isp._spam_filter = predicate
    provider = ContentProvider(
        extra_overlap=overlap, evasion_rate=evasion, seed=seed
    )

    # Boundary traffic from the non-compliant ISP: half spam, half ham.
    for i in range(messages):
        if i % 2:
            net.send(Address(2, 0), Address(0, i % 8), TrafficKind.SPAM,
                     content=provider.spam())
        else:
            net.send(Address(2, 1), Address(0, i % 8), TrafficKind.NORMAL,
                     content=provider.ham())
    # Paid traffic between compliant ISPs, same ham content.
    for i in range(messages // 2):
        net.send(Address(1, i % 8), Address(0, i % 8), TrafficKind.NORMAL,
                 content=provider.ham())

    isp = net.isps[0]
    return {
        "evasion": evasion,
        "overlap": overlap,
        "boundary_filtered": isp.stats.filtered_out,
        "boundary_delivered": isp.stats.received_unpaid,
        "paid_delivered": isp.stats.received_paid,
        "paid_filtered": 0,  # structurally: FILTER never sees paid mail
    }


def test_e17_boundary_asymmetry(benchmark):
    def sweep():
        return [
            run_hybrid(evasion=0.0, overlap=0.0),
            run_hybrid(evasion=0.9, overlap=0.0),
            run_hybrid(evasion=0.0, overlap=0.8),
        ]

    rows = benchmark(sweep)
    base, evaded, overlapped = rows
    # Clean corpus: the boundary filter catches most spam.
    assert base["boundary_filtered"] > 100
    # Evasion: much more boundary spam leaks through to delivery.
    assert evaded["boundary_delivered"] > base["boundary_delivered"]
    # Paid mail is never filtered in any condition.
    assert all(row["paid_delivered"] == 150 for row in rows)
    report(
        "E17",
        "hybrid deployments filter only at the non-compliant boundary: "
        "evasion and false positives stay confined there; paid mail has "
        "structurally zero filtering loss",
        rows,
    )
