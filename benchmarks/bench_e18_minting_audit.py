"""E18 (extension) — the bank's economic audit catches e-penny minting.

The paper stops at "the bank may make further investigation". This
experiment completes it: across reconciliation rounds the bank bounds
each ISP's legitimate e-penny holdings from observable flows (initial
endowment + purchases + net mail inflow from credit arrays) and flags
ISPs whose cumulative sales exceed the bound. Sweeps the minted amount:
small frauds stay under the ceiling until the ISP cashes out; cashing out
is exactly what makes minting profitable, so profit implies detection.
"""

import random

from conftest import report

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.audit import EconomicAuditor
from repro.sim import Address, TrafficKind


def run_audit(mint: int, days: int = 15, seed: int = 18):
    config = ZmailConfig(
        initial_pool=500, minavail=200, maxavail=900,
        default_user_balance=50, auto_topup_amount=10,
    )
    net = ZmailNetwork(n_isps=3, users_per_isp=8, config=config, seed=seed)
    auditor = EconomicAuditor()
    endowment = config.initial_pool + 8 * config.default_user_balance
    for isp_id in net.compliant_isps():
        auditor.register_isp(isp_id, initial_endowment=endowment)
    if mint:
        net.isps[1].ledger.pool += mint  # off-the-books creation

    rng = random.Random(seed)
    for day in range(1, days):
        for _ in range(300):
            net.send(
                Address(rng.randrange(3), rng.randrange(8)),
                Address(rng.randrange(3), rng.randrange(8)),
                TrafficKind.NORMAL,
            )
        isps = net.compliant_isps()
        for isp in isps.values():
            isp.begin_snapshot(net.bank.next_seq)
        reports = {}
        for isp_id, isp in sorted(isps.items()):
            reports[isp_id] = isp.snapshot_reply()
            isp.resume_sending()
        net.bank.reconcile(reports)
        auditor.ingest_credit_reports(reports)
        before = {i: net.bank.account_balance(i) for i in isps}
        net.advance_day_to(day)
        for isp_id in isps:
            delta = net.bank.account_balance(isp_id) - before[isp_id]
            if delta < 0:
                auditor.note_purchase(isp_id, -delta)
            elif delta > 0:
                auditor.note_sale(isp_id, delta)
    alerts = auditor.check()
    return {
        "minted": mint,
        "flagged_isps": [a.isp_id for a in alerts],
        "detected_excess": alerts[0].excess if alerts else 0,
        "cashed_out": any(a.isp_id == 1 for a in alerts),
    }


def test_e18_minting_detection_sweep(benchmark):
    def sweep():
        return [run_audit(mint) for mint in (0, 3000, 6000, 12000)]

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    honest = rows[0]
    assert honest["flagged_isps"] == []  # no false alarms
    # Every real mint that gets cashed out is flagged, and the detected
    # excess grows with the minted amount.
    assert all(row["flagged_isps"] == [1] for row in rows[1:])
    excesses = [row["detected_excess"] for row in rows[1:]]
    assert excesses == sorted(excesses)
    report(
        "E18",
        "the solvency audit flags ISPs that mint e-pennies the moment the "
        "fraud is cashed out; honest ISPs are never flagged",
        rows,
    )
