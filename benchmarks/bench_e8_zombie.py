"""E8 — daily limits bound zombie liability and detect infections (§5).

Sweeps the limit value and the outbreak rate: liability is always capped
at the limit, every zombie is detected (it necessarily hits its limit),
and no innocent user is flagged at sane limits.
"""

from conftest import report

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.zombie import ZombieMonitor
from repro.sim import DAY, HOUR, Address, SeededStreams
from repro.sim.workload import (
    NormalUserWorkload,
    ZombieBurstWorkload,
    merge_workloads,
)


def run_outbreak(limit: int, rate_per_hour: float, n_zombies: int = 3):
    config = ZmailConfig(
        default_daily_limit=limit,
        default_user_balance=1_000,
        auto_topup_amount=0,
    )
    net = ZmailNetwork(n_isps=3, users_per_isp=12, config=config, seed=21)
    streams = SeededStreams(21)
    zombies = [Address(i % 3, 2 + i) for i in range(n_zombies)]
    bursts = [
        ZombieBurstWorkload(
            zombie=z, n_isps=3, users_per_isp=12,
            rate_per_hour=rate_per_hour, start=0.0, end=12 * HOUR,
            streams=streams.spawn(f"z{i}"),
        ).generate()
        for i, z in enumerate(zombies)
    ]
    normal = NormalUserWorkload(
        n_isps=3, users_per_isp=12, rate_per_day=5.0, streams=streams
    ).generate(DAY)
    net.run_workload(merge_workloads(normal, *bursts))
    monitor = ZombieMonitor(net)
    monitor.poll()
    detected = {d.address for d in monitor.detections}
    max_liability = 0
    for z in zombies:
        user = net.isps[z.isp].ledger.user(z.user)
        max_liability = max(max_liability, 1_000 - user.balance)
    return {
        "zombies": set(zombies),
        "detected": detected,
        "max_liability": max_liability,
        "blocked": net.metrics.counter("send.blocked_limit").value,
    }


def test_e8_limit_sweep(benchmark):
    def sweep():
        rows = []
        for limit in (10, 50, 200):
            result = run_outbreak(limit=limit, rate_per_hour=150.0)
            rows.append(
                {
                    "daily_limit": limit,
                    "zombies": len(result["zombies"]),
                    "detected": len(
                        result["zombies"] & result["detected"]
                    ),
                    "false_alarms": len(
                        result["detected"] - result["zombies"]
                    ),
                    "max_liability": result["max_liability"],
                    "virus_mail_blocked": result["blocked"],
                }
            )
        return rows

    rows = benchmark(sweep)
    for row in rows:
        assert row["detected"] == row["zombies"]  # all detected
        assert row["max_liability"] <= row["daily_limit"]  # bounded
        assert row["false_alarms"] == 0
    # Lower limits bound liability tighter and block more virus mail.
    assert rows[0]["max_liability"] <= rows[-1]["max_liability"]
    report(
        "E8a",
        "the daily limit bounds zombie liability and detects every zombie",
        rows,
    )


def test_e8_outbreak_rate_sweep(benchmark):
    def sweep():
        rows = []
        for rate in (30.0, 150.0, 600.0):
            result = run_outbreak(limit=50, rate_per_hour=rate)
            rows.append(
                {
                    "zombie_rate_per_hour": rate,
                    "detected": len(result["zombies"] & result["detected"]),
                    "max_liability": result["max_liability"],
                }
            )
        return rows

    rows = benchmark(sweep)
    assert all(row["max_liability"] <= 50 for row in rows)
    report(
        "E8b",
        "liability stays bounded no matter how fast the zombie blasts",
        rows,
    )
