"""E12 — computational postage makes sending "significantly inefficient";
Zmail's per-message work is a ledger update (§2.3).

Measures real hashcash minting time across difficulty levels against the
Zmail send path, and scales both to a day's legitimate ISP outbound — the
paper's point that proof-of-work taxes ISPs and honest bulk senders.
"""

from conftest import report

from repro.baselines import expected_attempts, mint, verify
from repro.core import ZmailNetwork
from repro.sim import Address, TrafficKind


def test_e12_hashcash_minting_cost(benchmark):
    counter = iter(range(10**9))

    def mint_one():
        return mint(f"victim{next(counter)}@example.com", bits=12)

    stamp = benchmark(mint_one)
    assert verify(stamp, resource=stamp.resource, bits=12)
    report(
        "E12a",
        "hashcash minting at 12 bits (production proposals used 20 bits = "
        "256x more work; see pytest-benchmark table for seconds/stamp)",
        [
            {
                "bits": 12,
                "expected_hashes": expected_attempts(12),
                "bits_20_expected_hashes": expected_attempts(20),
            }
        ],
    )


def test_e12_zmail_send_cost(benchmark):
    net = ZmailNetwork(n_isps=2, users_per_isp=4, seed=4)
    net.fund_user(Address(0, 0), epennies=10**7)
    counter = iter(range(10**9))

    def send_one():
        net.send(Address(0, 0), Address(1, next(counter) % 4), TrafficKind.NORMAL)

    benchmark(send_one)
    report(
        "E12b",
        "Zmail's per-message sender cost is integer ledger arithmetic "
        "(compare medians against E12a)",
        [{"path": "zmail-send", "note": "see pytest-benchmark table"}],
    )


def test_e12_daily_isp_burden(benchmark):
    """Scale both costs to 10M legitimate messages/day for one ISP."""

    def compute():
        sample = 40
        attempts = sum(
            mint(f"r{i}", bits=10).attempts for i in range(sample)
        ) / sample
        # Work scales by 2^(20-10) for the deployed 20-bit proposal.
        hashes_per_msg_20bit = attempts * (2 ** 10)
        daily = 10_000_000
        sha1_per_second = 5e6  # mid-2000s desktop core
        cpu_hours = daily * hashes_per_msg_20bit / sha1_per_second / 3600.0
        return {
            "daily_messages": daily,
            "hashcash20_cpu_hours_per_day": round(cpu_hours),
            "zmail_extra_cpu_hours": 0,
            "zmail_cost": "1 e-penny/msg, returned to receivers",
        }

    row = benchmark(compute)
    # The paper's claim: the CPU tax on legitimate senders is enormous.
    assert row["hashcash20_cpu_hours_per_day"] > 100
    report(
        "E12c",
        "proof-of-work taxes ISPs' legitimate outbound with server-farm "
        "hours per day; Zmail moves money instead of burning cycles",
        [row],
    )
