"""E3 — zero-sum conservation at scale (§1.2, §4.1).

Drives 100k mixed messages (plus buy/sell churn via pool rebalancing and
auto top-ups) through a deployment and checks exact integer conservation
of total value, plus throughput of the accounting hot path.
"""

from conftest import report

from repro.core import ZmailConfig, ZmailNetwork
from repro.sim import DAY, SeededStreams
from repro.sim.workload import NormalUserWorkload


def run_large_workload(n_messages: int):
    config = ZmailConfig(default_user_balance=30, auto_topup_amount=20)
    net = ZmailNetwork(n_isps=5, users_per_isp=40, config=config, seed=3)
    workload = NormalUserWorkload(
        n_isps=5, users_per_isp=40, rate_per_day=50.0,
        streams=SeededStreams(3),
    )
    sent = 0
    for request in workload.generate(30 * DAY):
        net.note_time(request.time)
        net.send(request.sender, request.recipient, request.kind)
        sent += 1
        if sent >= n_messages:
            break
    return net, sent


def test_e3_conservation_100k_messages(benchmark):
    net, sent = benchmark.pedantic(
        run_large_workload, args=(100_000,), iterations=1, rounds=1
    )
    assert sent == 100_000
    assert net.total_value() == net.expected_total_value()
    assert net.reconcile("direct").consistent
    topups = net.metrics.counter("topup.count").value
    rebalances = (
        net.metrics.counter("bank.buys").value
        + net.metrics.counter("bank.sells").value
    )
    report(
        "E3",
        "every transaction is zero-sum: total value is exactly conserved",
        [
            {
                "messages": sent,
                "topups": topups,
                "bank_rebalances": rebalances,
                "total_value": net.total_value(),
                "expected": net.expected_total_value(),
                "conserved": net.total_value() == net.expected_total_value(),
            }
        ],
    )


def test_e3_transfer_throughput(benchmark):
    """Messages/second through the full accounting path."""
    from repro.sim.workload import Address, TrafficKind

    net = ZmailNetwork(n_isps=2, users_per_isp=10, seed=1)
    net.fund_user(Address(0, 0), epennies=10**7)
    counter = iter(range(10**9))

    def one_send():
        i = next(counter)
        net.send(Address(0, 0), Address(1, i % 10), TrafficKind.NORMAL)

    benchmark(one_send)
    report(
        "E3-throughput",
        "the bulk-accounting hot path is cheap (no per-message bank round trip)",
        [{"path": "send+deliver+ledger", "note": "see pytest-benchmark table"}],
    )
