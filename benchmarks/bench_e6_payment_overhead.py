"""E6 — bulk reconciliation is cheap; per-payment SHRED is not (§2.3).

Counts settlement operations and bytes per period as message volume and
federation size grow: Zmail's cost is O(n) messages + O(n^2) comparisons
per *period* regardless of mail volume, while SHRED pays a transaction
per triggered spam. Includes the paper's own point that SHRED's clearing
cost can exceed the penny collected, and the snapshot-method ablation
(timeout vs marker control-message cost and safety).
"""

import random

from conftest import report

from repro.baselines import ShredConfig, ShredSystem
from repro.core import ZmailConfig, ZmailNetwork
from repro.sim import Address, Engine, LinkSpec, TrafficKind


def zmail_settlement_cost(n_isps: int, messages: int):
    net = ZmailNetwork(n_isps=n_isps, users_per_isp=4, seed=1)
    rng = random.Random(1)
    for _ in range(messages):
        net.send(
            Address(rng.randrange(n_isps), rng.randrange(4)),
            Address(rng.randrange(n_isps), rng.randrange(4)),
            TrafficKind.NORMAL,
        )
    outcome = net.reconcile("direct")
    return outcome.settlement_operations, outcome.settlement_bytes


def test_e6_settlement_scaling(benchmark):
    def sweep():
        rows = []
        shred = ShredSystem(ShredConfig(trigger_probability=1.0))
        for messages in (1_000, 10_000, 50_000):
            ops, size = zmail_settlement_cost(n_isps=8, messages=messages)
            shred_outcome = shred.run_campaign(
                spam_messages=messages, colluding=False, rng=random.Random(2)
            )
            rows.append(
                {
                    "messages": messages,
                    "zmail_settlement_ops": ops,
                    "zmail_bytes": size,
                    "shred_payment_txns": shred_outcome.payment_transactions,
                    "ratio": round(
                        shred_outcome.payment_transactions / ops, 1
                    ),
                }
            )
        return rows

    rows = benchmark(sweep)
    # Zmail's per-period cost is volume-independent; SHRED's grows linearly.
    assert rows[0]["zmail_settlement_ops"] == rows[-1]["zmail_settlement_ops"]
    assert rows[-1]["shred_payment_txns"] > 100 * rows[-1]["zmail_settlement_ops"]
    report(
        "E6a",
        "payments handled in bulk: Zmail settlement cost is independent of "
        "mail volume; SHRED pays per message",
        rows,
    )


def test_e6_shred_processing_exceeds_collection(benchmark):
    def run():
        system = ShredSystem(ShredConfig())
        return system.run_campaign(
            spam_messages=10_000, colluding=False, rng=random.Random(3)
        )

    outcome = benchmark(run)
    assert outcome.processing_exceeds_collections
    report(
        "E6b",
        "SHRED's cost to collect an individual payment can exceed its value",
        [
            {
                "collected_cents": outcome.spammer_paid_cents,
                "processing_cents": outcome.isp_processing_cost_cents,
                "net_loss": outcome.isp_processing_cost_cents
                - outcome.spammer_paid_cents,
            }
        ],
    )


def test_e6_snapshot_method_ablation(benchmark):
    """DESIGN.md ablation: the paper's timeout quiesce vs marker cut."""

    def run_method(method: str, quiesce: float):
        engine = Engine()
        config = ZmailConfig(snapshot_quiesce_seconds=quiesce)
        net = ZmailNetwork(
            n_isps=6, users_per_isp=4, seed=5, engine=engine, config=config,
            link=LinkSpec(base_latency=0.5, jitter=0.5),
        )
        for k in range(300):
            engine.schedule_at(
                k * 0.05,
                lambda k=k: net.send(
                    Address(k % 6, k % 4), Address((k + 1) % 6, (k + 2) % 4)
                ),
            )
        start = 8.0
        engine.schedule_at(start, lambda: net.reconcile(method))
        engine.run()
        done = engine.now
        return {
            "method": f"{method}(q={quiesce:g}s)",
            "consistent": net.last_report.consistent,
            "round_latency_s": round(done - start, 2),
        }

    def ablation():
        return [
            run_method("timeout", 60.0),
            run_method("timeout", 0.1),  # window below the drain time
            run_method("marker", 60.0),
        ]

    rows = benchmark(ablation)
    assert rows[0]["consistent"] is True
    assert rows[1]["consistent"] is False  # the false-alarm regime
    assert rows[2]["consistent"] is True
    assert rows[2]["round_latency_s"] < rows[0]["round_latency_s"]
    report(
        "E6c",
        "ablation: the 10-minute timeout is safe but slow and unsafe if "
        "under-provisioned; a marker cut is safe with no tuning",
        rows,
    )
