"""E11 — Zmail "requires no change to SMTP"; overhead is transparent (§1.3).

Measures messages/second through the in-memory SMTP transport with and
without the Zmail accounting layer behind the handler, and through the
real asyncio SMTP server over localhost TCP. The claim's shape: the Zmail
ledger work is a small constant next to SMTP itself.
"""

import asyncio

from conftest import report

from repro.core import ZmailNetwork
from repro.sim import Address, TrafficKind
from repro.smtp import (
    Envelope,
    InMemoryTransport,
    MailMessage,
    SMTPClient,
    SMTPServer,
    ZmailStamp,
    stamp_message,
)


def make_message(i: int = 0) -> MailMessage:
    return MailMessage.compose(
        sender="user1@isp0.example",
        recipient="user2@isp1.example",
        subject=f"benchmark message {i}",
        body="x" * 512,
    )


def test_e11_inmemory_plain(benchmark):
    transport = InMemoryTransport()
    transport.register_domain("isp1.example", lambda e: None)
    envelope = Envelope("user1@isp0.example", "user2@isp1.example", make_message())
    benchmark(transport.submit, envelope)
    report(
        "E11a",
        "baseline: plain SMTP delivery path (in-memory transport)",
        [{"path": "plain", "note": "see pytest-benchmark table"}],
    )


def test_e11_inmemory_with_zmail(benchmark):
    network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=2)
    network.fund_user(Address(0, 1), epennies=10**7)
    transport = InMemoryTransport()

    def zmail_handler(envelope: Envelope) -> None:
        network.send(Address(0, 1), Address(1, 2), TrafficKind.NORMAL)

    transport.register_domain("isp1.example", zmail_handler)
    stamped = stamp_message(make_message(), ZmailStamp(sender_isp="isp0"))
    envelope = Envelope("user1@isp0.example", "user2@isp1.example", stamped)
    benchmark(transport.submit, envelope)
    report(
        "E11b",
        "the Zmail accounting layer adds only ledger arithmetic per message",
        [{"path": "plain+zmail", "note": "see pytest-benchmark table"}],
    )


def _run_tcp_batch(n_messages: int, handler) -> float:
    async def scenario():
        server = SMTPServer(handler, hostname="bench.example")
        host, port = await server.start()
        client = SMTPClient(host, port)
        await client.connect()
        for i in range(n_messages):
            await client.send(
                Envelope(
                    "user1@isp0.example", "user2@isp1.example", make_message(i)
                )
            )
        await client.quit()
        await server.stop()

    asyncio.run(scenario())
    return float(n_messages)


def test_e11_real_tcp_plain(benchmark):
    n = benchmark.pedantic(
        _run_tcp_batch, args=(200, lambda e: None), iterations=1, rounds=3
    )
    assert n == 200
    report(
        "E11c",
        "real localhost SMTP, no Zmail: wire dominates",
        [{"path": "tcp-plain", "messages": 200}],
    )


def test_e11_real_tcp_with_zmail(benchmark):
    network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=3)
    network.fund_user(Address(0, 1), epennies=10**7)

    def handler(envelope: Envelope) -> None:
        network.send(Address(0, 1), Address(1, 2), TrafficKind.NORMAL)

    n = benchmark.pedantic(
        _run_tcp_batch, args=(200, handler), iterations=1, rounds=3
    )
    assert n == 200
    assert network.total_value() == network.expected_total_value()
    report(
        "E11d",
        "real localhost SMTP with Zmail accounting: indistinguishable "
        "overhead (compare tcp-plain vs tcp-zmail medians)",
        [{"path": "tcp-zmail", "messages": 200}],
    )
