"""E7 — mailing-list acknowledgments make volunteer lists free (§5).

Sweeps list size and acknowledgment probability: the distributor's net
cost per post is (1 - ack_rate) * list_size, hitting zero with full
acknowledgment; stale subscribers are pruned, keeping the database clean.
"""

from conftest import report

from repro.core import ZmailNetwork
from repro.core.mailinglist import ListServer
from repro.sim import Address, SeededStreams


def run_list(n_subscribers: int, ack_probability: float, posts: int = 3):
    # Distributors legitimately negotiate a high daily limit; without it
    # the zombie brake would throttle the fan-out.
    from repro.core import ZmailConfig

    config = ZmailConfig(default_daily_limit=100_000)
    net = ZmailNetwork(n_isps=4, users_per_isp=40, config=config, seed=11)
    distributor = Address(0, 0)
    net.fund_user(distributor, epennies=10 * n_subscribers * posts)
    server = ListServer(net, distributor, prune_after_misses=0)
    members = [
        Address(isp, user)
        for isp in range(4)
        for user in range(40)
        if Address(isp, user) != distributor
    ][:n_subscribers]
    for member in members:
        server.subscribe(member)
    stream = SeededStreams(11).get("acks")
    total_cost = 0
    for _ in range(posts):
        outcome = server.post(
            ack_probability_fn=lambda a: stream.random() < ack_probability
        )
        total_cost += outcome.net_epenny_cost
    assert net.total_value() == net.expected_total_value()
    return total_cost / posts, len(server)


def test_e7_ack_probability_sweep(benchmark):
    def sweep():
        rows = []
        for p_ack in (1.0, 0.9, 0.5, 0.0):
            cost, _ = run_list(n_subscribers=100, ack_probability=p_ack)
            rows.append(
                {
                    "subscribers": 100,
                    "ack_prob": p_ack,
                    "net_cost_per_post": round(cost, 1),
                    "expected": round(100 * (1 - p_ack), 1),
                }
            )
        return rows

    rows = benchmark(sweep)
    assert rows[0]["net_cost_per_post"] == 0.0  # full acks: free
    assert rows[-1]["net_cost_per_post"] == 100.0  # no acks: full fan-out
    costs = [row["net_cost_per_post"] for row in rows]
    assert costs == sorted(costs)
    report(
        "E7a",
        "acknowledgments return the distributor's e-pennies: net cost per "
        "post is (1 - ack_rate) * subscribers",
        rows,
    )


def test_e7_list_size_sweep(benchmark):
    def sweep():
        return [
            {
                "subscribers": size,
                "net_cost_per_post": round(
                    run_list(n_subscribers=size, ack_probability=1.0)[0], 1
                ),
            }
            for size in (10, 50, 150)
        ]

    rows = benchmark(sweep)
    assert all(row["net_cost_per_post"] == 0.0 for row in rows)
    report(
        "E7b",
        "with universal acks even large volunteer lists post for free",
        rows,
    )


def test_e7_pruning_keeps_database_clean(benchmark):
    def run_with_dead_tail():
        net = ZmailNetwork(n_isps=2, users_per_isp=30, seed=12)
        distributor = Address(0, 0)
        net.fund_user(distributor, epennies=5_000)
        server = ListServer(net, distributor, prune_after_misses=3)
        members = [Address(1, u) for u in range(30)]
        for member in members:
            server.subscribe(member)
        dead = set(members[:6])
        for _ in range(5):
            server.post(ack_probability_fn=lambda a: a not in dead)
        return len(server), len(dead)

    remaining, dead_count = benchmark(run_with_dead_tail)
    assert remaining == 30 - dead_count
    report(
        "E7c",
        "subscribers who never acknowledge are detected and pruned",
        [
            {
                "initial": 30,
                "dead_addresses": dead_count,
                "remaining_after_5_posts": remaining,
            }
        ],
    )
