"""E2 — "the amount of spam will undoubtedly decrease substantially" (§1.2).

Two parts: (a) the market projection — profit-maximising spammers
re-optimise under Zmail pricing and aggregate spam volume collapses from
the calibrated 60% share; (b) a behavioural simulation — the same funded
spammer against a live deployment is cut off by its war chest.
"""

from conftest import report

from repro.core import ZmailConfig, ZmailNetwork
from repro.economics import CampaignModel, SpamRegime, project_market
from repro.sim import DAY, Address, SeededStreams
from repro.sim.workload import SpamCampaignWorkload

CAMPAIGNS = [
    CampaignModel(1_000_000, 0.00003, 25.0),
    CampaignModel(1_000_000, 0.00005, 40.0),
    CampaignModel(1_000_000, 0.00001, 200.0),
    CampaignModel(1_000_000, 0.002, 30.0),
]


def market_projection():
    return project_market(campaigns=CAMPAIGNS)


def test_e2_market_volume_collapse(benchmark):
    before, after = benchmark(market_projection)
    assert before.spam_share > 0.55
    assert after.spam_volume < 0.35 * before.spam_volume  # "substantially"
    assert after.isp_annual_cost < before.isp_annual_cost
    report(
        "E2a",
        "profit-maximising spam volume decreases substantially under Zmail",
        [
            {
                "regime": s.regime,
                "spam_volume": int(s.spam_volume),
                "spam_share": f"{s.spam_share:.0%}",
                "isp_cost_$": int(s.isp_annual_cost),
            }
            for s in (before, after)
        ],
    )


def run_funded_campaign(war_chest: int):
    config = ZmailConfig(
        default_daily_limit=10**9,
        default_user_balance=50,
        auto_topup_amount=0,
    )
    net = ZmailNetwork(n_isps=4, users_per_isp=25, config=config, seed=7)
    spammer = Address(0, 0)
    net.fund_user(spammer, epennies=war_chest)
    workload = SpamCampaignWorkload(
        spammer=spammer, n_isps=4, users_per_isp=25,
        volume=20_000, start=0.0, duration=DAY, streams=SeededStreams(7),
    )
    net.run_workload(workload.generate())
    delivered = (
        net.metrics.counter("send.sent_paid").value
        + net.metrics.counter("send.delivered_local").value
    )
    blocked = net.metrics.counter("send.blocked_balance").value
    assert net.total_value() == net.expected_total_value()
    return delivered, blocked


def test_e2_war_chest_bounds_campaign(benchmark):
    delivered, blocked = benchmark(run_funded_campaign, war_chest=2_000)
    # Delivery is bounded by funding (war chest + initial balance + windfalls
    # the spammer's own address happens to receive), not by bandwidth.
    assert delivered < 3_000
    assert blocked > 15_000
    report(
        "E2b",
        "a spammer's reach is bounded by money, not bandwidth",
        [
            {
                "war_chest_epennies": 2_000,
                "attempted": 20_000,
                "delivered": delivered,
                "blocked_broke": blocked,
            }
        ],
    )


def test_e2_adaptive_spammer_no_oracle(benchmark):
    """E2 dynamic form: a spammer with NO knowledge of the regime, only
    observed profit, grows under free riding and collapses under Zmail."""
    from repro.core import ZmailConfig, ZmailNetwork
    from repro.economics.adaptive import AdaptiveSpammer

    def run_both():
        rows = []
        for label, compliant_flags, spammer_isp, epenny in (
            ("status-quo", [True, True, False], 2, 0.0),
            ("zmail", [True, True, True], 0, 0.01),
        ):
            net = ZmailNetwork(
                n_isps=3, users_per_isp=10, compliant=compliant_flags,
                config=ZmailConfig(
                    default_daily_limit=10**6,
                    default_user_balance=10**6,
                    auto_topup_amount=0,
                ),
                seed=82,
            )
            from repro.sim.workload import Address

            # Conversion between the two break-evens: profitable at
            # $0.0001/msg, a loser at $0.0101/msg.
            spammer = AdaptiveSpammer(
                network=net,
                address=Address(spammer_isp, 0),
                conversion_rate=0.0002,
                epenny_dollars=epenny,
                initial_volume=10_000,
                seed=82,
            )
            spammer.run(periods=10)
            rows.append(
                {
                    "regime": label,
                    "initial_volume": 10_000,
                    "final_volume": spammer.final_volume(),
                    "total_profit_$": round(spammer.total_profit(), 2),
                    "collapsed": spammer.collapsed(below=1000),
                }
            )
        return rows

    rows = benchmark.pedantic(run_both, iterations=1, rounds=1)
    status_quo, zmail = rows
    assert status_quo["final_volume"] > status_quo["initial_volume"]
    assert zmail["collapsed"]
    report(
        "E2c",
        "an adaptive spammer needs no oracle: market feedback alone grows "
        "free-riding campaigns and extinguishes paid ones",
        rows,
    )
