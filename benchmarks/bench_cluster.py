#!/usr/bin/env python3
"""Cluster throughput benchmark: sharded runtime vs the single-process engine.

Runs the same million-message canonical scenario as
``bench_macro_scale.py`` (same seed, same workload) three ways:

* ``engine_stream``   — the single-process engine fast path (the
  baseline the cluster has to beat);
* ``cluster@1``       — the sharded runtime with one spawn worker
  (isolates protocol/IPC overhead from parallelism);
* ``cluster@4``       — four spawn workers in epoch lockstep (the
  multi-core headline);
* ``cluster@4+lagK``  — four spawn workers under the bounded-lag
  asynchronous drive with streaming reconciliation (``--lag``, default
  2): same results, no global barrier.

Every run row carries an explicit ``mode`` string
(``engine_stream`` / ``lockstep`` / ``lagK``) into ``results.jsonl`` so
regressions are attributable to the drive that produced them.

Methodology: every configuration gets ``--warmups`` discarded runs and
``--repeats`` measured runs; the headline figure is the best (minimum)
wall-clock time, with mean/stddev spread from
:func:`repro.sim.metrics.summary_stats` recorded alongside. Machine info
(CPU count, platform, interpreter) is written into the result so a
number is never read without its hardware context.

Two correctness gates run inside the benchmark — a throughput harness
that changed results would be measuring a different system:

* the cluster's merged balances digest must be identical at 1 and 4
  shards (shard invariance);
* every cluster run must report value conservation.

The ``>=2x at 4 workers`` speedup target is asserted only when the
machine actually has >= 4 usable cores; on smaller hosts the observed
numbers are recorded with ``speedup.met = false`` and a ``bounded_by``
note, because wall-clock parallel speedup is physically capped by the
core count. Results land in ``BENCH_cluster.json`` at the repo root and
one summary record is appended to ``benchmarks/results.jsonl``.

Usage::

    python benchmarks/bench_cluster.py                   # full 1M run
    python benchmarks/bench_cluster.py --messages 50000  # smoke scale
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import time
import uuid

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
SRC = ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from bench_macro_scale import canonical_scenario, run_subprocess

SHARD_COUNTS = (1, 4)
SPEEDUP_TARGET = 2.0
RESULTS_PATH = HERE / "results.jsonl"


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_cluster_once(
    n_shards: int, messages: int, seed: int, lag: int = 0
) -> dict:
    """One measured cluster run (spawn workers, tracing off)."""
    from repro.cluster import ClusterConfig, run_cluster

    scenario = canonical_scenario(messages, seed)
    start = time.perf_counter()
    result = run_cluster(
        ClusterConfig(
            scenario=scenario, n_shards=n_shards, mode="spawn",
            traced=False, lag=lag,
        )
    )
    elapsed = time.perf_counter() - start
    extra = result.manifest.extra
    return {
        "messages": extra["sends_attempted"],
        "seconds": round(elapsed, 3),
        "messages_per_sec": round(extra["sends_attempted"] / elapsed, 1),
        "balances_digest": extra["balances_digest"],
        "conserved": result.conserved and result.all_consistent,
    }


def run_baseline_once(messages: int, seed: int) -> dict:
    """One measured single-process engine run (fresh interpreter)."""
    start = time.perf_counter()
    run = run_subprocess("engine_stream", messages, seed)
    elapsed = time.perf_counter() - start
    return {
        "messages": run["messages"],
        # Wall-clock as seen by a caller, like the cluster figure; the
        # in-process time the child reported is kept for reference.
        "seconds": round(elapsed, 3),
        "seconds_in_process": run["seconds"],
        "messages_per_sec": round(run["messages"] / elapsed, 1),
        "balances_digest": run["digest"],
        "conserved": True,
    }


def measure(name: str, once, warmups: int, repeats: int) -> dict:
    """Warmups discarded, repeats measured; best + spread recorded."""
    from repro.sim.metrics import summary_stats

    for i in range(warmups):
        print(f"[bench_cluster] {name}: warmup {i + 1}/{warmups} ...",
              flush=True)
        once()
    runs = []
    for i in range(repeats):
        run = once()
        print(
            f"[bench_cluster] {name}: repeat {i + 1}/{repeats}: "
            f"{run['messages']} msgs in {run['seconds']}s = "
            f"{run['messages_per_sec']:,.0f} msgs/sec",
            flush=True,
        )
        runs.append(run)
    times = [run["seconds"] for run in runs]
    best = min(runs, key=lambda run: run["seconds"])
    stats = summary_stats(times)
    return {
        "messages": best["messages"],
        "best_seconds": best["seconds"],
        "best_messages_per_sec": best["messages_per_sec"],
        "seconds_mean": round(stats["mean"], 3),
        "seconds_stdev": round(stats["stddev"], 3),
        "repeats": repeats,
        "warmups": warmups,
        "balances_digest": best["balances_digest"],
        "conserved": all(run["conserved"] for run in runs),
    }


def append_results_record(document: dict) -> None:
    """One EXPERIMENTS.md-style record, same shape the conftest writes."""
    rows = []
    for name, run in document["runs"].items():
        rows.append(
            {
                "config": name,
                # The drive that produced the number (engine_stream /
                # lockstep / lagK), mirroring the executor-mode field
                # bench_macro_scale records — regressions must be
                # attributable to a specific drive.
                "mode": run["mode"],
                "messages": run["messages"],
                "best_seconds": run["best_seconds"],
                "messages_per_sec": run["best_messages_per_sec"],
                "seconds_mean": run["seconds_mean"],
                "seconds_stdev": run["seconds_stdev"],
            }
        )
    record = {
        "experiment": "cluster-throughput",
        "claim": (
            "the sharded cluster runtime reproduces single-process results "
            "bit-identically and scales throughput with available cores"
        ),
        "rows": rows,
        "speedup": document["speedup"],
        "host": document["host"],
        "run_id": uuid.uuid4().hex[:12],
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
    }
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--messages",
        type=int,
        default=1_000_000,
        help="target send count for every configuration (default 1M)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--warmups", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--lag", type=int, default=2,
        help="K for the bounded-lag configuration (default 2); 0 skips it",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=ROOT / "BENCH_cluster.json",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and check only"
    )
    args = parser.parse_args()

    cores = usable_cores()
    runs: dict[str, dict] = {}
    runs["engine_stream"] = measure(
        "engine_stream",
        lambda: run_baseline_once(args.messages, args.seed),
        args.warmups,
        args.repeats,
    )
    runs["engine_stream"]["mode"] = "engine_stream"
    for n_shards in SHARD_COUNTS:
        runs[f"cluster@{n_shards}"] = measure(
            f"cluster@{n_shards}",
            lambda n=n_shards: run_cluster_once(n, args.messages, args.seed),
            args.warmups,
            args.repeats,
        )
        runs[f"cluster@{n_shards}"]["mode"] = "lockstep"
    if args.lag > 0:
        n_async = SHARD_COUNTS[-1]
        name = f"cluster@{n_async}+lag{args.lag}"
        runs[name] = measure(
            name,
            lambda: run_cluster_once(
                n_async, args.messages, args.seed, lag=args.lag
            ),
            args.warmups,
            args.repeats,
        )
        runs[name]["mode"] = f"lag{args.lag}"

    failures = []
    if not all(run["conserved"] for run in runs.values()):
        failures.append("a run violated conservation or anti-symmetry")
    digests = {
        name: run["balances_digest"]
        for name, run in runs.items()
        if name.startswith("cluster@")
    }
    if len(set(digests.values())) != 1:
        failures.append(f"shard counts disagree on balances: {digests}")

    baseline = runs["engine_stream"]["best_seconds"]
    speedups = {
        str(n): round(
            baseline / runs[f"cluster@{n}"]["best_seconds"], 2
        )
        for n in SHARD_COUNTS
    }
    achieved = speedups[str(SHARD_COUNTS[-1])]
    met = achieved >= SPEEDUP_TARGET
    speedup = {
        "target": SPEEDUP_TARGET,
        "vs_engine_stream": speedups,
        "achieved_at_4_workers": achieved,
        "met": met,
        "cores": cores,
    }
    if args.lag > 0:
        async_name = f"cluster@{SHARD_COUNTS[-1]}+lag{args.lag}"
        speedup["achieved_at_4_workers_bounded_lag"] = round(
            baseline / runs[async_name]["best_seconds"], 2
        )
    if not met and cores < 4:
        speedup["bounded_by"] = (
            f"host exposes {cores} usable core(s); wall-clock parallel "
            "speedup is capped at the core count, so the 4-worker target "
            "is unreachable on this machine. Re-run on >=4 cores."
        )
    elif not met:
        failures.append(
            f"speedup {achieved}x at 4 workers < {SPEEDUP_TARGET}x "
            f"target on a {cores}-core host"
        )
    print(f"[bench_cluster] speedup vs engine_stream: {speedups} "
          f"(target {SPEEDUP_TARGET}x at 4 workers, {cores} cores)")

    document = {
        "scenario": {
            "n_isps": 8,
            "users_per_isp": 64,
            "duration_days": 2,
            "spammers": 3,
            "zombies": 2,
            "reconcile_every_days": 1,
            "seed": args.seed,
            "messages": args.messages,
        },
        "methodology": {
            "warmups": args.warmups,
            "repeats": args.repeats,
            "headline": "best (min) wall-clock over repeats",
            "spread": "mean/stdev via repro.sim.metrics.summary_stats",
            "cluster_mode": "spawn workers, tracing off",
            "bounded_lag": args.lag,
            "baseline": "engine_stream in a fresh interpreter",
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
        },
        "runs": runs,
        "speedup": speedup,
        "ok": not failures,
    }

    if not args.no_write:
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[bench_cluster] wrote {args.output}")
        append_results_record(document)
        print(f"[bench_cluster] appended record to {RESULTS_PATH}")

    for failure in failures:
        print(f"FAILURE: {failure}", file=sys.stderr)
    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
