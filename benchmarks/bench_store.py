#!/usr/bin/env python3
"""Restart-cost benchmark: O(dirty) store restore vs full-state reload.

The durable-service claim under test (ROADMAP item 3 / PR 8): an ISP
network with 1M+ accounts restarts in O(dirty-state), not O(users).
The benchmark builds a 4-ISP, million-user network, touches 1% of the
accounts through the tracked mutation funnels, commits the dirty set to
a WAL-mode SQLite store, then measures two restart strategies:

* ``dirty_restore``  — :func:`repro.store.restore_network`: genesis
  metadata + per-ISP aggregates + only the ever-dirty user records;
* ``full_reload``    — :func:`repro.core.persistence.loads` of a full
  JSON checkpoint of the same network (every user serialised).

Methodology mirrors ``bench_cluster.py``: ``--warmups`` discarded runs
then ``--repeats`` measured runs per strategy, headline is best (min)
wall-clock, spread recorded via ``summary_stats``, host info embedded.

Three correctness gates run inside the benchmark — a restart that loses
money is not a restart:

* the restored network must be ``durable_digest``-identical to the live
  one (recovery equivalence);
* the restored hot set must equal the dirty count exactly (memory is
  bounded by the hot set, lazy genesis never materialises a clean user);
* the headline speedup must meet the ``>=10x`` acceptance floor.

Results land in ``BENCH_store.json`` at the repo root and one summary
record is appended to ``benchmarks/results.jsonl``.

Usage::

    python benchmarks/bench_store.py                 # full 1M-user run
    python benchmarks/bench_store.py --users 50000   # smoke scale
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import tempfile
import time
import uuid

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
SRC = ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

N_ISPS = 4
DIRTY_FRACTION = 0.01
SPEEDUP_TARGET = 10.0
RESULTS_PATH = HERE / "results.jsonl"


def build_committed_store(total_users: int, seed: int, store_path: str):
    """Genesis network + 1% dirty traffic committed at barrier 1.

    Returns ``(network, dirty_count, checkpoint_blob)`` with the store
    written and closed on disk.
    """
    from repro.core import ZmailNetwork, persistence
    from repro.sim import Address
    from repro.store import (
        DurableStore,
        attach_tracker,
        commit_network,
        init_store,
    )

    users_per_isp = total_users // N_ISPS
    network = ZmailNetwork(
        n_isps=N_ISPS, users_per_isp=users_per_isp, seed=seed
    )
    store = DurableStore.create(store_path)
    init_store(store, network)
    tracker = attach_tracker(network)
    dirty = int(total_users * DIRTY_FRACTION)
    for i in range(dirty):
        network.fund_user(
            Address(i % N_ISPS, i // N_ISPS), epennies=1
        )
    commit_network(store, network, tracker, barrier=1)
    store.close()
    blob = persistence.dumps(network)
    return network, dirty, blob


def measure(name: str, once, warmups: int, repeats: int) -> dict:
    """Warmups discarded, repeats measured; best + spread recorded."""
    from repro.sim.metrics import summary_stats

    for i in range(warmups):
        print(f"[bench_store] {name}: warmup {i + 1}/{warmups} ...",
              flush=True)
        once()
    times = []
    for i in range(repeats):
        start = time.perf_counter()
        once()
        elapsed = time.perf_counter() - start
        print(f"[bench_store] {name}: repeat {i + 1}/{repeats}: "
              f"{elapsed:.4f}s", flush=True)
        times.append(elapsed)
    stats = summary_stats(times)
    return {
        "best_seconds": round(min(times), 4),
        "seconds_mean": round(stats["mean"], 4),
        "seconds_stdev": round(stats["stddev"], 4),
        "repeats": repeats,
        "warmups": warmups,
    }


def append_results_record(document: dict) -> None:
    """One EXPERIMENTS.md-style record, same shape the conftest writes."""
    record = {
        "experiment": "store-restart-cost",
        "claim": (
            "a durable-store restart replays O(dirty) state and beats a "
            "full-checkpoint reload by >=10x at 1M users with 1% dirty"
        ),
        "rows": [
            {
                "config": name,
                "best_seconds": run["best_seconds"],
                "seconds_mean": run["seconds_mean"],
                "seconds_stdev": run["seconds_stdev"],
            }
            for name, run in document["runs"].items()
        ],
        "speedup": document["speedup"],
        "host": document["host"],
        "run_id": uuid.uuid4().hex[:12],
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
    }
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--users", type=int, default=1_000_000,
        help="total account count across all ISPs (default 1M)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--warmups", type=int, default=1)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", type=pathlib.Path, default=ROOT / "BENCH_store.json"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and check only"
    )
    args = parser.parse_args()

    from repro.core import persistence
    from repro.store import DurableStore, durable_digest, restore_network

    workdir = tempfile.mkdtemp(prefix="bench_store_")
    store_path = os.path.join(workdir, "bench.db")
    print(f"[bench_store] building {args.users} users, "
          f"{DIRTY_FRACTION:.0%} dirty ...", flush=True)
    network, dirty, blob = build_committed_store(
        args.users, args.seed, store_path
    )
    live_digest = durable_digest(network)
    print(f"[bench_store] checkpoint blob: {len(blob) / 1e6:.1f} MB, "
          f"store: {os.path.getsize(store_path) / 1e6:.1f} MB", flush=True)

    failures = []
    hot_set = {}

    def dirty_restore():
        with DurableStore.open(store_path) as store:
            restored = restore_network(store)
        hot_set["materialized"] = sum(
            isp.ledger.materialized_count()
            for isp in restored.compliant_isps().values()
        )
        return restored

    def full_reload():
        return persistence.loads(blob, seed=args.seed)

    # Correctness gates before any timing: both strategies must land on
    # the live network's durable digest.
    if durable_digest(dirty_restore()) != live_digest:
        failures.append("dirty restore diverged from the live network")
    if durable_digest(full_reload()) != live_digest:
        failures.append("full reload diverged from the live network")
    if hot_set["materialized"] != dirty:
        failures.append(
            f"restore materialised {hot_set['materialized']} accounts; "
            f"expected exactly the {dirty}-user dirty set"
        )

    runs = {
        "dirty_restore": measure(
            "dirty_restore", dirty_restore, args.warmups, args.repeats
        ),
        "full_reload": measure(
            "full_reload", full_reload, args.warmups, args.repeats
        ),
    }
    achieved = round(
        runs["full_reload"]["best_seconds"]
        / runs["dirty_restore"]["best_seconds"],
        1,
    )
    met = achieved >= SPEEDUP_TARGET
    if not met:
        failures.append(
            f"speedup {achieved}x < {SPEEDUP_TARGET}x acceptance floor"
        )
    print(f"[bench_store] speedup: {achieved}x "
          f"(target {SPEEDUP_TARGET}x)", flush=True)

    document = {
        "scenario": {
            "n_isps": N_ISPS,
            "total_users": args.users,
            "dirty_fraction": DIRTY_FRACTION,
            "dirty_users": dirty,
            "seed": args.seed,
            "checkpoint_mb": round(len(blob) / 1e6, 1),
            "store_mb": round(os.path.getsize(store_path) / 1e6, 1),
        },
        "methodology": {
            "warmups": args.warmups,
            "repeats": args.repeats,
            "headline": "best (min) wall-clock over repeats",
            "spread": "mean/stdev via repro.sim.metrics.summary_stats",
            "dirty_restore": "restore_network over WAL SQLite store",
            "full_reload": "persistence.loads of a full JSON checkpoint",
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "runs": runs,
        "hot_set": {
            "materialized_accounts": hot_set["materialized"],
            "dirty_accounts": dirty,
            "bounded": hot_set["materialized"] == dirty,
        },
        "speedup": {
            "target": SPEEDUP_TARGET,
            "achieved": achieved,
            "met": met,
        },
        "ok": not failures,
    }

    if not args.no_write:
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[bench_store] wrote {args.output}")
        append_results_record(document)
        print(f"[bench_store] appended record to {RESULTS_PATH}")

    for failure in failures:
        print(f"FAILURE: {failure}", file=sys.stderr)
    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
