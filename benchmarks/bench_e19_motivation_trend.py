"""E19 — the motivating trend: spam share 8% (2001) → 60% (Apr 2004).

The paper's §1.1 statistics, regenerated as the time series its
introduction implies: the logistic fitted through Brightmail's two cited
points projects spam drowning email entirely ("threatens the social
viability of the Internet itself"), while the Zmail counterfactual caps
the share at the surviving targeted volume from the E2 market
projection. Also prices the §1.1 dollar figures: ISP infrastructure and
Gartner-style productivity losses on both trajectories.
"""

from conftest import report

from repro.economics import ISPCostModel, productivity_loss_annual
from repro.economics.timeline import SpamShareTimeline


def test_e19_trend_and_counterfactual(benchmark):
    def build():
        timeline = SpamShareTimeline.fit()
        rows = []
        for year in (2001.0, 2002.0, 2003.0, 2004.25, 2005.0, 2006.0, 2008.0):
            rows.append(
                {
                    "year": year,
                    "unchecked_share": round(timeline.share(year), 3),
                    "zmail_2005_share": round(
                        timeline.with_zmail(year, adopted_at=2005.0), 3
                    ),
                }
            )
        return timeline, rows

    timeline, rows = benchmark(build)
    # Anchored to the cited data.
    assert rows[0]["unchecked_share"] == 0.08
    assert rows[3]["unchecked_share"] == 0.6
    # Unchecked, spam passes 80% within two years of the paper.
    assert timeline.share(2006.0) > 0.8
    # Zmail bends the curve down toward the targeted residual.
    assert rows[-1]["zmail_2005_share"] < 0.2
    report(
        "E19a",
        "the §1.1 trajectory (8% in 2001 -> 60% in Apr 2004) heads toward "
        "total inundation; Zmail caps it at the paid, targeted residual",
        rows,
    )


def test_e19_dollar_figures(benchmark):
    def build():
        timeline = SpamShareTimeline.fit()
        cost_model = ISPCostModel(legitimate_messages_per_year=1e10)
        rows = []
        for year in (2004.25, 2006.0, 2008.0):
            unchecked = min(0.95, timeline.share(year))
            with_zmail = timeline.with_zmail(year, adopted_at=2005.0)
            rows.append(
                {
                    "year": year,
                    "infra_cost_unchecked_$M": round(
                        cost_model.annual_cost(unchecked).total / 1e6, 1
                    ),
                    "infra_cost_zmail_$M": round(
                        cost_model.annual_cost(
                            with_zmail, filtering_enabled=year < 2005.0
                        ).total / 1e6,
                        1,
                    ),
                    "productivity_per_1k_emp_$k": round(
                        productivity_loss_annual(
                            employees=1000,
                            spam_per_employee_day=25 * unchecked / 0.6,
                            seconds_per_spam=10.0,
                        ) / 1e3,
                    ),
                }
            )
        return rows

    rows = benchmark(build)
    # Post-adoption, Zmail infrastructure cost is below the unchecked path.
    assert rows[-1]["infra_cost_zmail_$M"] < rows[-1]["infra_cost_unchecked_$M"]
    # The 2004 productivity figure lands at Gartner's ~$300k scale.
    assert 200 < rows[0]["productivity_per_1k_emp_$k"] < 600
    report(
        "E19b",
        "the cited dollar figures (Gartner ~$300k per 1,000 employees) "
        "reproduce on the unchecked path and fall under Zmail",
        rows,
    )
