"""E13 — the §4 formal spec satisfies its invariants; cheaters get caught.

Runs the Abstract-Protocol transliteration under the randomized scheduler
with conservation/non-negativity/anti-symmetry checked after every step,
sweeping protocol size; then injects each cheat mode and verifies the
bank's §4.4 verification implicates the cheater.
"""

from conftest import report

from repro.apn import (
    CheatMode,
    ZmailSpecConfig,
    build_zmail_protocol,
    total_value,
)

KEY_BITS = 128


def run_honest(n: int, m: int, steps: int, seed: int = 7):
    config = ZmailSpecConfig(n=n, m=m, seed=seed, key_bits=KEY_BITS)
    protocol = build_zmail_protocol(config)
    initial = total_value(protocol.state, config)
    executed = protocol.run(steps)
    return {
        "n_isps": n,
        "users": m,
        "steps": executed,
        "rounds": protocol.completed_rounds(),
        "value_conserved": total_value(protocol.state, config) == initial,
        "false_alarms": len(protocol.flagged_pairs()),
    }


def test_e13_honest_model_checking_sweep(benchmark):
    def sweep():
        return [
            run_honest(2, 2, 2000),
            run_honest(3, 3, 3000),
            run_honest(4, 2, 3000),
        ]

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    for row in rows:
        assert row["value_conserved"]
        assert row["false_alarms"] == 0
        assert row["rounds"] >= 1
    report(
        "E13a",
        "the formal spec holds conservation + anti-symmetry under "
        "randomized weakly-fair execution, with zero false alarms",
        rows,
    )


def test_e13_cheater_detection_both_modes(benchmark):
    def run_cheaters():
        rows = []
        for mode in (CheatMode.INFLATE_SENT, CheatMode.SKIP_RECEIVE_DEBIT):
            config = ZmailSpecConfig(
                n=3, m=3, seed=17, key_bits=KEY_BITS, cheaters={1: mode}
            )
            protocol = build_zmail_protocol(config)
            protocol.run(6000)
            implicated: dict[int, int] = {}
            for a, b in protocol.flagged_pairs():
                implicated[a] = implicated.get(a, 0) + 1
                implicated[b] = implicated.get(b, 0) + 1
            top = max(implicated, key=implicated.get) if implicated else None
            rows.append(
                {
                    "cheat_mode": mode,
                    "rounds": protocol.completed_rounds(),
                    "flagged_pairs": len(protocol.flagged_pairs()),
                    "top_suspect": top,
                    "cheater_found": top == 1,
                }
            )
        return rows

    rows = benchmark.pedantic(run_cheaters, iterations=1, rounds=1)
    assert all(row["cheater_found"] for row in rows)
    report(
        "E13b",
        "§4.4 verification implicates the injected cheater under both "
        "misreporting modes",
        rows,
    )
