#!/usr/bin/env python3
"""Macro-scale throughput benchmark: the million-message canonical scenario.

Unlike the ``bench_e*.py`` experiment benchmarks (which reproduce paper
claims), this harness measures *implementation* throughput on one fixed,
adversarial, full-system scenario — 8 ISPs x 64 users over two simulated
days with three funded spam campaigns, two zombie outbreaks and daily
reconciliation — and records the results in ``BENCH_scale.json`` at the
repo root, where CI (``tools/ci.sh``) guards against regressions.

Four drive modes run the *same* workload from the same seed:

* ``columnar``      — the struct-of-arrays batch executor
  (``repro.columnar``): vectorized masked numpy ops, the fastest path;
* ``direct``        — synchronous sends, no engine (the scalar
  reference path the columnar executor is verified against);
* ``engine_stream`` — engine mode with the streaming fast path (workload
  pulled lazily between heap events; heap stays O(timers));
* ``engine_events`` — engine mode with one heap event + closure per
  message (the legacy path, kept for comparison).

Each mode runs in its own subprocess so peak-RSS figures are honest
per-mode numbers. After the runs, the harness *asserts determinism*: all
modes must report identical message accounting, identical per-user
balances/pools/bank accounts (compared via SHA-256 digest) and identical
conservation-audit totals — and the modes that take per-reconcile-cut
accounting digests (``direct``, ``columnar``) must agree on the digest
at *every* cut, not just at the end. A throughput benchmark that changed
results would be measuring a different system.

Usage::

    python benchmarks/bench_macro_scale.py                  # full 1M run
    python benchmarks/bench_macro_scale.py --messages 50000 # smoke scale
    python benchmarks/bench_macro_scale.py --verify-messages 100000

``engine_events`` materializes one event per message (at 1M: hundreds of
MB and minutes of heap churn — the regression this harness exists to
document), so it runs at ``--verify-messages`` scale (default 100k) while
``direct`` and ``engine_stream`` run at full ``--messages`` scale. The
determinism cross-check compares modes pairwise at equal scales.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import uuid

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
SRC = ROOT / "src"

MODES = ("columnar", "direct", "engine_stream", "engine_events")


def canonical_scenario(messages: int, seed: int):
    """The fixed macro benchmark scenario, scaled to ~``messages`` sends.

    Rates scale linearly, topology and duration stay fixed, so every
    scale exercises the same code paths (spam brakes, auto top-up, zombie
    detection, daily reconciliation) in the same proportions.
    """
    from repro.core.config import ZmailConfig
    from repro.core.scenario import Scenario, SpammerSpec, ZombieSpec
    from repro.sim.clock import DAY, HOUR
    from repro.sim.network import LinkSpec
    from repro.sim.workload import Address

    scale = messages / 1_000_000
    spam_volume = int(180_000 * scale)
    return Scenario(
        # Zero-latency links keep engine-mode accounting bit-identical to
        # direct mode: with real latency a credit can be in flight when
        # its recipient makes a send decision, which a synchronous run
        # cannot reproduce (at 1M messages that flips a handful of ±1
        # balances). Latency/loss behaviour has its own integration tests.
        link=LinkSpec(base_latency=0.0, jitter=0.0, loss_rate=0.0),
        n_isps=8,
        users_per_isp=64,
        config=ZmailConfig(
            default_daily_limit=5_000,
            default_user_balance=500,
            auto_topup_amount=50,
        ),
        seed=seed,
        duration=2 * DAY,
        normal_rate_per_day=450.0 * scale,
        spammers=[
            SpammerSpec(Address(0, 0), volume=spam_volume, war_chest=60_000),
            SpammerSpec(Address(3, 7), volume=spam_volume, war_chest=60_000),
            SpammerSpec(Address(7, 63), volume=spam_volume, war_chest=60_000),
        ],
        zombies=[
            ZombieSpec(
                Address(1, 9),
                rate_per_hour=2_000.0 * scale,
                start=6 * HOUR,
                end=18 * HOUR,
            ),
            ZombieSpec(
                Address(5, 40),
                rate_per_hour=2_000.0 * scale,
                start=DAY + 6 * HOUR,
                end=DAY + 18 * HOUR,
            ),
        ],
        reconcile_every=DAY,
    )


def accounting_digest(network) -> str:
    """SHA-256 over every balance in the system, for determinism checks.

    Delegates to :func:`repro.obs.manifest.accounting_digest` — the same
    digest the columnar executor asserts at every reconciliation cut —
    imported lazily so ``--help`` works without ``src`` on the path.
    """
    from repro.obs.manifest import accounting_digest as digest

    return digest(network)


def run_single(mode: str, messages: int, seed: int) -> dict:
    """Run one mode in-process and return its measurements."""
    import resource
    import time

    scenario = canonical_scenario(messages, seed)
    if mode == "engine_stream":
        scenario.engine_mode = True
    elif mode == "engine_events":
        scenario.engine_mode = True
        scenario.engine_streaming = False
    elif mode == "columnar":
        scenario.columnar = True
    elif mode != "direct":
        raise SystemExit(f"unknown mode {mode!r}")

    start = time.perf_counter()
    result = scenario.run()
    elapsed = time.perf_counter() - start
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "mode": mode,
        "messages": result.sends_attempted,
        "seconds": round(elapsed, 3),
        "messages_per_sec": round(result.sends_attempted / elapsed, 1),
        "peak_rss_mb": round(rss_kb / 1024, 1),
        "summary": result.summary(),
        "digest": accounting_digest(result.network),
        # Per-reconcile-cut accounting digests; empty for engine modes
        # (their mid-run cut ordering differs — see ScenarioResult).
        "cut_digests": result.cut_digests,
    }


def run_subprocess(mode: str, messages: int, seed: int) -> dict:
    """Run one mode in a fresh interpreter (honest per-mode peak RSS)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            str(HERE / "bench_macro_scale.py"),
            "--single",
            mode,
            "--messages",
            str(messages),
            "--seed",
            str(seed),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"{mode} run failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def check_determinism(runs: dict[str, dict]) -> list[str]:
    """Pairwise identity of accounting across equal-scale runs."""
    failures = []
    by_scale: dict[int, list[dict]] = {}
    for run in runs.values():
        by_scale.setdefault(run["messages"], []).append(run)
    for messages, group in sorted(by_scale.items()):
        reference = group[0]
        for other in group[1:]:
            for field in ("messages", "summary", "digest"):
                if other[field] != reference[field]:
                    failures.append(
                        f"{other['mode']} vs {reference['mode']} at "
                        f"{messages} msgs: {field} differs "
                        f"({other[field]!r} != {reference[field]!r})"
                    )
            # Cut digests exist only for direct/columnar; when both
            # sides have them they must agree at every reconcile cut.
            ours, theirs = other.get("cut_digests"), reference.get("cut_digests")
            if ours and theirs and ours != theirs:
                failures.append(
                    f"{other['mode']} vs {reference['mode']} at "
                    f"{messages} msgs: per-cut accounting digests differ"
                )
    return failures


def append_results_jsonl(runs: dict[str, dict]) -> None:
    """Append one record to ``benchmarks/results.jsonl``.

    Same record shape as :func:`conftest.report` so the EXPERIMENTS.md
    renderer picks it up; every row carries the executor ``mode`` string
    explicitly (the run label alone — ``engine_stream_smoke`` — is a
    plan name, not a mode).
    """
    rows = [
        {
            "run": name,
            "mode": run["mode"],
            "messages": run["messages"],
            "seconds": run["seconds"],
            "messages_per_sec": run["messages_per_sec"],
            "peak_rss_mb": run["peak_rss_mb"],
        }
        for name, run in runs.items()
    ]
    record = {
        "experiment": "macro_scale",
        "claim": "columnar SoA executor sustains >=3x engine_stream "
        "throughput on the macro scenario with bit-identical accounting",
        "rows": rows,
        "run_id": uuid.uuid4().hex[:12],
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
    with (HERE / "results.jsonl").open("a") as fh:
        fh.write(json.dumps(record) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--messages",
        type=int,
        default=1_000_000,
        help="target send count for direct/engine_stream (default 1M)",
    )
    parser.add_argument(
        "--verify-messages",
        type=int,
        default=100_000,
        help="scale for the engine_events old-path cross-check "
        "(default 100k; engine_events is O(messages) memory)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=ROOT / "BENCH_scale.json",
        help="result file (seed_baseline section is preserved)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and check only"
    )
    parser.add_argument(
        "--single",
        choices=MODES,
        help="internal: run one mode in-process and print JSON",
    )
    args = parser.parse_args()

    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))

    if args.single:
        print(json.dumps(run_single(args.single, args.messages, args.seed)))
        return

    verify_messages = min(args.verify_messages, args.messages)
    plan = [
        ("columnar", args.messages),
        ("direct", args.messages),
        ("engine_stream", args.messages),
        ("engine_events", verify_messages),
    ]
    # The old-path/new-path determinism check needs equal scales; when the
    # main scale differs from the verify scale, rerun the streaming path
    # small so engine_events has a same-scale twin.
    if verify_messages != args.messages:
        plan.append(("engine_stream_verify", verify_messages))

    # Throughput is scale-dependent (interpreter and deployment setup
    # amortize over more messages at full scale), so CI's smoke runs are
    # compared against a smoke-scale reference, recorded alongside the
    # full-scale numbers whenever the full benchmark runs.
    smoke_messages = 50_000
    if args.messages > 4 * smoke_messages:
        plan += [
            ("columnar_smoke", smoke_messages),
            ("direct_smoke", smoke_messages),
            ("engine_stream_smoke", smoke_messages),
        ]

    runs: dict[str, dict] = {}
    for name, messages in plan:
        mode = name.replace("_verify", "").replace("_smoke", "")
        print(f"[bench_macro_scale] {name}: {messages} messages ...", flush=True)
        run = run_subprocess(mode, messages, args.seed)
        print(
            f"    {run['messages']} msgs in {run['seconds']}s = "
            f"{run['messages_per_sec']:,.0f} msgs/sec, "
            f"peak RSS {run['peak_rss_mb']} MB",
            flush=True,
        )
        runs[name] = run

    failures = check_determinism(runs)
    for failure in failures:
        print(f"DETERMINISM FAILURE: {failure}", file=sys.stderr)

    document = {
        "scenario": {
            "n_isps": 8,
            "users_per_isp": 64,
            "duration_days": 2,
            "spammers": 3,
            "zombies": 2,
            "reconcile_every_days": 1,
            "seed": args.seed,
            "messages": args.messages,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "seed_baseline": None,
        "current": {name: run for name, run in runs.items()},
        "determinism_ok": not failures,
    }
    if args.output.exists():
        try:
            previous = json.loads(args.output.read_text())
            document["seed_baseline"] = previous.get("seed_baseline")
        except (json.JSONDecodeError, OSError):
            pass
    baseline = document["seed_baseline"]
    if baseline:
        speedups = {}
        for name, seed_run in baseline.get("runs", {}).items():
            current = runs.get(name)
            # Throughput is scale-dependent; a speedup is only
            # meaningful against the baseline at (roughly) the same
            # scale. Exact counts differ slightly across workload-
            # generator versions, so match within 10%.
            seed_messages = seed_run.get("messages") or 0
            same_scale = (
                current
                and seed_messages
                and abs(current["messages"] - seed_messages)
                <= 0.1 * seed_messages
            )
            if same_scale and seed_run.get("messages_per_sec"):
                speedups[name] = round(
                    current["messages_per_sec"]
                    / seed_run["messages_per_sec"],
                    2,
                )
        document["speedup_vs_seed"] = speedups
        if speedups:
            print(f"[bench_macro_scale] speedup vs seed: {speedups}")

    columnar = runs.get("columnar")
    engine = runs.get("engine_stream")
    if columnar and engine and engine.get("messages_per_sec"):
        ratio = round(
            columnar["messages_per_sec"] / engine["messages_per_sec"], 2
        )
        document["columnar_speedup_vs_engine_stream"] = ratio
        print(
            f"[bench_macro_scale] columnar is {ratio}x engine_stream "
            f"at {columnar['messages']} messages"
        )

    if not args.no_write:
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[bench_macro_scale] wrote {args.output}")
        # Only runs refreshing the committed reference feed results.jsonl
        # — CI's smoke-scale runs (/tmp output) would otherwise shadow
        # the full-scale record (the renderer keeps the newest).
        if args.output.resolve() == (ROOT / "BENCH_scale.json").resolve():
            append_results_jsonl(runs)
            print(f"[bench_macro_scale] appended {HERE / 'results.jsonl'}")

    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
