"""E4 — normal users "neither pay nor profit" on average (§1.2).

Balanced correspondence: per-user net e-penny flow distribution should be
centred on zero with small spread, and the buffer needed to ride out the
fluctuations is pocket change. Sweeps the send/receive imbalance to show
where neutrality breaks (deliberately unbalanced users pay).
"""

from conftest import report

from repro.core import ZmailNetwork
from repro.economics import analyze_user_flows, required_buffer
from repro.sim import DAY, Address, SeededStreams, TrafficKind
from repro.sim.workload import NormalUserWorkload


def run_balanced(days: int = 20):
    net = ZmailNetwork(n_isps=3, users_per_isp=20, seed=6)
    workload = NormalUserWorkload(
        n_isps=3, users_per_isp=20, rate_per_day=10.0,
        streams=SeededStreams(6),
    )
    net.run_workload(workload.generate(days * DAY))
    return analyze_user_flows(net, tolerance=100)


def test_e4_balanced_users_are_neutral(benchmark):
    summary = benchmark(run_balanced)
    # Population-level neutrality is exact (every debit credits someone).
    assert abs(summary.mean_net_flow) < 0.5
    # Individual imbalance is popularity-driven and stays well below the
    # gross traffic volume: the "neither pay nor profit" regime.
    assert summary.stddev_net_flow < 0.5 * summary.mean_sent
    assert summary.fraction_within > 0.8  # most users within 100 e¢ ($1)
    report(
        "E4",
        "users who receive as much as they send neither pay nor profit; "
        "individual drift stays tiny next to gross volume",
        [
            {
                "users": summary.users,
                "mean_net_epennies": round(summary.mean_net_flow, 3),
                "stddev": round(summary.stddev_net_flow, 1),
                "gross_sent_per_user": round(summary.mean_sent, 1),
                "min": summary.min_net_flow,
                "max": summary.max_net_flow,
                "within_$1": f"{summary.fraction_within:.0%}",
            }
        ],
    )


def test_e4_imbalance_sweep(benchmark):
    """Users who send extra mail beyond what they receive pay for it."""

    def run_sweep():
        rows = []
        for extra_sends in (0, 50, 200):
            net = ZmailNetwork(n_isps=2, users_per_isp=10, seed=8)
            workload = NormalUserWorkload(
                n_isps=2, users_per_isp=10, rate_per_day=10.0,
                streams=SeededStreams(8),
            )
            net.run_workload(workload.generate(10 * DAY))
            heavy = Address(0, 0)
            net.fund_user(heavy, epennies=extra_sends)
            for i in range(extra_sends):
                net.send(heavy, Address(1, i % 10), TrafficKind.NORMAL)
            isp = net.isps[0]
            rows.append(
                {
                    "extra_sends": extra_sends,
                    "heavy_user_net": isp.ledger.user(0).net_epenny_flow,
                }
            )
        return rows

    rows = benchmark(run_sweep)
    assert rows[0]["heavy_user_net"] > rows[1]["heavy_user_net"]
    assert rows[1]["heavy_user_net"] > rows[2]["heavy_user_net"]
    report(
        "E4-imbalance",
        "net cost scales with send/receive imbalance (senders-of-more pay)",
        rows,
    )


def test_e4_required_buffer(benchmark):
    rows = benchmark(
        lambda: [
            {
                "msgs_per_day": rate,
                "days": 30,
                "buffer_epennies": required_buffer(rate, 30),
                "buffer_dollars": required_buffer(rate, 30) / 100.0,
            }
            for rate in (5, 20, 100)
        ]
    )
    # Even a heavy correspondent's float is a few dollars.
    assert rows[-1]["buffer_dollars"] < 10.0
    report(
        "E4-buffer",
        "initial balances needed to buffer fluctuations are pocket change",
        rows,
    )
