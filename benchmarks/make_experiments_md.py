#!/usr/bin/env python3
"""Render benchmarks/results.jsonl into EXPERIMENTS.md.

Run after a full benchmark pass::

    pytest benchmarks/ --benchmark-only -s
    python benchmarks/make_experiments_md.py
"""

import json
import pathlib

HERE = pathlib.Path(__file__).parent
RESULTS = HERE / "results.jsonl"
OUTPUT = HERE.parent / "EXPERIMENTS.md"

PREAMBLE = """\
# EXPERIMENTS — paper claims vs. measured

The paper (*Zmail: Zero-Sum Free Market Control of Spam*, ICDCS 2005)
contains **no numbered tables or figures**; its evaluation surface is a set
of quantitative claims (DESIGN.md §4 maps each to an experiment E1–E19).
This file records, for every experiment, the claim and the values measured
by the benchmark harness on this machine. Regenerate with:

```
pytest benchmarks/ --benchmark-only -s
python benchmarks/make_experiments_md.py
```

Absolute timings vary by host; the *shape* of each result (who wins, by
roughly what factor, where crossovers fall) is asserted inside the
benchmarks themselves — a green `pytest benchmarks/ --benchmark-only` run
**is** the reproduction check.

## Reproduction summary

| Exp | Paper claim (section) | Status |
|---|---|---|
| E1 | Spam cost & break-even response rate rise ≥2 orders of magnitude (§1.2) | reproduced (101× at the paper's $0.01 e-penny) |
| E2 | Spam volume decreases substantially (§1.2) | reproduced (bulk campaigns drop to zero volume; share 60%→<35% of calibrated market) |
| E3 | Zero-sum: exact conservation at 100k-message scale (§1.2, §4.1) | reproduced (integer-exact) |
| E4 | Balanced users neither pay nor profit (§1.2) | reproduced (population mean exactly 0; drift ≪ gross volume) |
| E5 | Misbehaving ISPs are discovered; SHRED cannot detect collusion (§2.3, §4.4) | reproduced (100% cheater recall; SHRED structurally blind) |
| E6 | Bulk settlement is cheap vs. per-payment SHRED (§2.3) | reproduced (settlement ops volume-independent; SHRED clearing cost exceeds collections) |
| E7 | Mailing-list acks refund the distributor; stale addresses pruned (§5) | reproduced (net cost = (1−ack_rate)·size; exact 0 at full acks) |
| E8 | Daily limit bounds zombie liability and detects zombies (§4.1, §5) | reproduced (liability ≤ limit always; 100% detection, 0 false alarms) |
| E9 | Incremental deployment from 2 ISPs has positive feedback (§1.3, §5) | reproduced (hazard grows with adoption; stricter policies adopt faster) |
| E10 | Filters false-positive and get evaded; Zmail needs no spam definition (§1.2, §2.2) | reproduced (evasion degrades recall; overlap drives false positives; Zmail 0 by construction) |
| E11 | Zmail rides unmodified SMTP with transparent overhead (§1.3) | reproduced (ledger work ≪ wire cost on real localhost SMTP) |
| E12 | Computational postage is significantly inefficient vs. Zmail (§2.3) | reproduced (20-bit hashcash ≈ server-farm hours/day at ISP scale; Zmail is ledger arithmetic) |
| E13 | The §4 formal spec holds its invariants; cheaters flagged (§4) | reproduced (randomized model checking, 0 false alarms, both cheat modes caught) |
| E14 | (extension) Distributed/hierarchical banks are straightforward (§5) | built & validated (detection parity with the central bank; per-node load drops) |
| E15 | Legal approaches fail: offshore escape, registry backfire (§2.1) | reproduced (volume barely moves; registry increases expected spam at realistic leak risk) |
| E16 | (synthesis) Compliant inboxes stay clean; incentive grows with adoption (§1.1–§1.2, §5) | reproduced (delivered spam collapses as adoption grows; receivers keep the windfall) |
| E17 | (extension) Hybrid boundary filtering (§5) | built & validated (filter pathologies confined to non-compliant mail; paid mail structurally exempt) |
| E18 | (extension) Solvency audit catches e-penny minting (§4.4 "further investigation") | built & validated (0 false alarms; every cash-out flagged) |
| E19 | Motivating trend: 8%→60% spam share heading to inundation; Gartner ~$300k (§1.1) | reproduced (logistic through the cited points; Zmail counterfactual caps the share) |

Substitutions for things we lack (real traffic, corpora, market data) are
documented in DESIGN.md §2; paper-era constants ($0.0001/msg infra cost,
$0.01 e-penny, 60% spam share) are encoded in `repro.economics` and swept
where the claim depends on them.

## Measured tables

"""


def format_cell(value):
    if isinstance(value, float):
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(rows):
    if not rows:
        return "*(no rows)*\n"
    keys = list(rows[0].keys())
    out = ["| " + " | ".join(keys) + " |"]
    out.append("|" + "|".join("---" for _ in keys) + "|")
    for row in rows:
        out.append(
            "| " + " | ".join(format_cell(row.get(k, "")) for k in keys) + " |"
        )
    return "\n".join(out) + "\n"


def main() -> None:
    if not RESULTS.exists():
        raise SystemExit(
            "no benchmarks/results.jsonl — run "
            "`pytest benchmarks/ --benchmark-only -s` first"
        )
    # Keep only the most recent record per experiment id. The file is
    # append-only (interrupted runs never clobber it), so recency is
    # decided by the ISO-8601 ``timestamp`` field; legacy records without
    # one rank oldest, with file order breaking ties.
    latest = {}
    order = []
    for index, line in enumerate(RESULTS.read_text().splitlines()):
        record = json.loads(line)
        name = record["experiment"]
        recency = (record.get("timestamp", ""), index)
        if name not in latest:
            order.append(name)
        if name not in latest or recency >= latest[name][0]:
            latest[name] = (recency, record)
    latest = {name: record for name, (recency, record) in latest.items()}

    def sort_key(name):
        head = name.split("-")[0].lstrip("E")
        digits = "".join(ch for ch in head if ch.isdigit())
        return (int(digits or 0), name)

    parts = [PREAMBLE]
    for name in sorted(order, key=sort_key):
        record = latest[name]
        parts.append(f"### {name}\n")
        parts.append(f"**Claim:** {record['claim']}\n")
        parts.append(render_table(record["rows"]))
        parts.append("")
    OUTPUT.write_text("\n".join(parts))
    print(f"wrote {OUTPUT} ({len(order)} experiments)")


if __name__ == "__main__":
    main()
