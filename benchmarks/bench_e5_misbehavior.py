"""E5 — colluding/misreporting ISPs "can be discovered" (§2.3, §4.4).

Sweeps the number of ISPs and injected cheaters: after real traffic, the
cheater corrupts its credit report; the bank's anti-symmetry check must
flag it (and rank it first when it cheats against several peers). The
SHRED baseline on identical traffic detects nothing — its payment loop
never leaves the colluding ISP.
"""

import random

from conftest import report

from repro.baselines import ShredConfig, ShredSystem
from repro.core import ZmailNetwork
from repro.sim import Address, TrafficKind


def run_detection(n_isps: int, cheaters: set[int], traffic: int = 2000):
    net = ZmailNetwork(n_isps=n_isps, users_per_isp=5, seed=42)
    rng = random.Random(42)
    for _ in range(traffic):
        src = rng.randrange(n_isps)
        dst = rng.randrange(n_isps)
        net.send(
            Address(src, rng.randrange(5)),
            Address(dst, rng.randrange(5)),
            TrafficKind.NORMAL,
        )
    isps = net.compliant_isps()
    seq = net.bank.next_seq
    for isp in isps.values():
        isp.begin_snapshot(seq)
    reports = {}
    for isp_id, isp in sorted(isps.items()):
        credit = isp.snapshot_reply()
        isp.resume_sending()
        if isp_id in cheaters:
            credit = {peer: value + 25 for peer, value in credit.items()}
        reports[isp_id] = credit
    return net.bank.reconcile(reports)


def test_e5_single_cheater_detected(benchmark):
    outcome = benchmark(run_detection, n_isps=6, cheaters={2})
    assert not outcome.consistent
    assert outcome.suspects[0] == 2
    report(
        "E5a",
        "a misreporting ISP is discovered via credit anti-symmetry",
        [
            {
                "n_isps": 6,
                "injected_cheater": 2,
                "flagged_pairs": len(outcome.inconsistent),
                "top_suspect": outcome.suspects[0],
                "detected": 2 in outcome.suspects,
            }
        ],
    )


def test_e5_detection_sweep(benchmark):
    def sweep():
        rows = []
        for n in (4, 8, 16):
            for k in (1, 2):
                cheaters = set(range(k))
                outcome = run_detection(n_isps=n, cheaters=cheaters)
                detected = cheaters & set(outcome.suspects)
                rows.append(
                    {
                        "n_isps": n,
                        "cheaters": k,
                        "flagged_pairs": len(outcome.inconsistent),
                        "cheaters_detected": len(detected),
                        "recall": f"{len(detected) / k:.0%}",
                    }
                )
        return rows

    rows = benchmark(sweep)
    assert all(row["cheaters_detected"] >= 1 for row in rows)
    report("E5b", "detection holds as the federation grows", rows)


def test_e5_shred_cannot_detect_collusion(benchmark):
    def shred_collusion():
        system = ShredSystem(ShredConfig(trigger_probability=1.0))
        outcome = system.run_campaign(
            spam_messages=2000, colluding=True, rng=random.Random(1)
        )
        return outcome

    outcome = benchmark(shred_collusion)
    assert outcome.effective_spammer_cost_cents == 0.0
    assert ShredSystem.collusion_detectable() is False
    report(
        "E5c",
        "SHRED/Vanquish collusion is free and structurally undetectable; "
        "Zmail detects the same behaviour",
        [
            {
                "system": "shred",
                "spam": outcome.spam_received,
                "effective_cost_cents": outcome.effective_spammer_cost_cents,
                "detectable": ShredSystem.collusion_detectable(),
            },
            {
                "system": "zmail",
                "spam": 2000,
                "effective_cost_cents": 2000.0,
                "detectable": True,
            },
        ],
    )
