#!/usr/bin/env python3
"""Overload benchmark: goodput vs. offered load under admission control.

The tentpole claim of the overload layer is *graceful degradation*: as
offered load climbs past the sustainable admission rate, goodput (mail
actually admitted and delivered per second) should plateau near the
configured rate instead of collapsing, queue memory should stay under
its hard bound, and no admitted message may vanish from the accounting.

This harness sweeps a flood multiplier over one fixed deployment —
3 ISPs with an 8 msg/s admission rate, background user traffic, and a
zombie flood from isp0 aimed at isp1 scaled to ``multiplier x
admit_rate`` — then checks three acceptance criteria:

* **plateau** — goodput at the highest multiplier (10x) is within 20%
  of the peak goodput across the sweep;
* **bounded memory** — the deferred-queue high-water mark never exceeds
  the configured ``queue_capacity``;
* **no lost accounting** — the overload monitor stays green (every
  admitted message was delivered or bounced) and e-penny conservation
  holds at quiescence.

Results land in ``BENCH_overload.json`` at the repo root and print as a
fixed-width table. Deterministic for a given seed.

Usage::

    python benchmarks/bench_overload.py                # full sweep + checks
    python benchmarks/bench_overload.py --duration 60  # quicker sweep
    python benchmarks/bench_overload.py --no-write     # measure only
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

MULTIPLIERS = (0.5, 1.0, 2.0, 5.0, 10.0)
ADMIT_RATE = 8.0
GOODPUT_TOLERANCE = 0.20


def run_point(
    multiplier: float, *, seed: int, duration: float, drain_window: float
) -> dict:
    """Run one offered-load point; returns its measurement row."""
    from repro.chaos.deployment import ChaosDeployment
    from repro.chaos.faults import FaultSpec, FloodSpec, flood_requests
    from repro.core.overload import OverloadConfig
    from repro.sim.rng import SeededStreams, derive_seed
    from repro.sim.workload import NormalUserWorkload, merge_workloads

    point_seed = derive_seed(seed, f"overload-bench:{multiplier}")
    overload = OverloadConfig(
        admit_rate=ADMIT_RATE,
        admit_burst=16,
        queue_capacity=64,
        retry_base=2.0,
        retry_backoff=2.0,
        retry_max_interval=30.0,
        max_retries=3,
    )
    deployment = ChaosDeployment(
        seed=point_seed,
        faults=FaultSpec(),
        n_isps=3,
        users_per_isp=6,
        monitor_interval=5.0,
        reconcile_every=max(duration, 150.0),
        overload=overload,
    )
    background = NormalUserWorkload(
        n_isps=3,
        users_per_isp=6,
        rate_per_day=2000.0,
        streams=SeededStreams(derive_seed(point_seed, "background")),
    )
    flood = FloodSpec(
        attacker_isp=0,
        target_isp=1,
        rate_per_sec=multiplier * ADMIT_RATE,
        start=0.0,
        duration=duration,
    )
    requests = merge_workloads(
        background.generate(duration),
        flood_requests(
            flood,
            n_isps=3,
            users_per_isp=6,
            streams=SeededStreams(derive_seed(point_seed, "flood")),
        ),
    )
    converged = deployment.run(
        requests, until=duration, drain_window=drain_window
    )
    network = deployment.network
    stats = deployment.stats()
    # Goodput counts work the system completed: admissions that went on
    # to the ledger/delivery path (immediate or after deferral), over the
    # offered-load window.
    goodput = stats["overload_accepted"] / duration
    return {
        "multiplier": multiplier,
        "offered_per_sec": round(stats["submits"] / duration, 2),
        "goodput_per_sec": round(goodput, 2),
        "accepted": stats["overload_accepted"],
        "shed": stats["overload_shed"],
        "bounced": stats["overload_bounced"],
        "peak_queue": stats["overload_peak_pending"],
        "queue_capacity": overload.queue_capacity,
        "converged": converged,
        "conserved": network.total_value() == network.expected_total_value(),
        "monitor_green": stats["overload_violations"] == 0
        and stats["violations"] == 0,
    }


def check_criteria(rows: list[dict]) -> list[str]:
    """The acceptance criteria; returns human-readable failures."""
    failures: list[str] = []
    peak = max(row["goodput_per_sec"] for row in rows)
    worst = rows[-1]  # highest multiplier
    if worst["goodput_per_sec"] < (1.0 - GOODPUT_TOLERANCE) * peak:
        failures.append(
            f"goodput collapsed under flood: {worst['goodput_per_sec']}/s at "
            f"{worst['multiplier']}x vs peak {peak}/s "
            f"(tolerance {GOODPUT_TOLERANCE:.0%})"
        )
    for row in rows:
        label = f"{row['multiplier']}x"
        if row["peak_queue"] > row["queue_capacity"]:
            failures.append(
                f"{label}: queue high-water {row['peak_queue']} exceeds "
                f"bound {row['queue_capacity']}"
            )
        if not row["monitor_green"]:
            failures.append(f"{label}: invariant/overload monitor violation")
        if not row["conserved"]:
            failures.append(f"{label}: e-penny conservation broken")
        if not row["converged"]:
            failures.append(f"{label}: deployment failed to drain")
    return failures


def format_table(rows: list[dict]) -> str:
    headers = [
        "mult", "offered/s", "goodput/s", "accepted", "shed",
        "bounced", "peakq", "green",
    ]
    keys = [
        "multiplier", "offered_per_sec", "goodput_per_sec", "accepted",
        "shed", "bounced", "peak_queue", "monitor_green",
    ]
    table = [[
        ("yes" if row[k] else "NO") if isinstance(row[k], bool) else str(row[k])
        for k in keys
    ] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in table))
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="offered-load window per point, simulated seconds",
    )
    parser.add_argument(
        "--drain-window", type=float, default=400.0,
        help="extra simulated time allowed to drain each point",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=ROOT / "BENCH_overload.json"
    )
    parser.add_argument("--no-write", action="store_true")
    args = parser.parse_args()

    rows = []
    for multiplier in MULTIPLIERS:
        print(
            f"[bench_overload] {multiplier}x "
            f"({multiplier * ADMIT_RATE:.0f} flood msgs/s) ...",
            flush=True,
        )
        rows.append(
            run_point(
                multiplier,
                seed=args.seed,
                duration=args.duration,
                drain_window=args.drain_window,
            )
        )

    print(format_table(rows))
    failures = check_criteria(rows)
    for failure in failures:
        print(f"CRITERION FAILED: {failure}", file=sys.stderr)
    verdict = "PASS" if not failures else "FAIL"
    print(f"[bench_overload] verdict: {verdict}")

    if not args.no_write:
        document = {
            "admit_rate": ADMIT_RATE,
            "seed": args.seed,
            "duration": args.duration,
            "goodput_tolerance": GOODPUT_TOLERANCE,
            "rows": rows,
            "passed": not failures,
            "failures": failures,
        }
        args.output.write_text(json.dumps(document, indent=2) + "\n")
        print(f"[bench_overload] wrote {args.output}")

    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
