#!/usr/bin/env python3
"""Arena acceptance benchmark: the strategy-tournament phase diagram.

Runs the full registered matchup matrix (5 attackers x 4 defenders)
over ``--worlds`` seeded worlds (default 100 — the acceptance scale)
and checks the three things the subsystem promises:

* **byte reproducibility** — the whole tournament runs twice and the
  two canonical reports must be byte-identical (the same property CI's
  ``cmp`` smoke checks at mini scale);
* **invariants everywhere** — every cell must report ledger
  conservation and §4.4 consistency, and ``--verify`` cells are lowered
  and run through the cross-executor differential oracle;
* **the collapse region** — under default Zmail pricing
  (``zmail_static``), the phase extraction must contain a non-empty
  band of markets in which *no* attacker strategy is profitable in
  expectation, with its boundary (expected dollars per delivered
  message) recorded. This is the paper's economic claim, measured.

Throughput is recorded two ways: tournament cells/sec on the direct
match path, and a lowered-sweep figure — the first ``--lowered`` cells
lowered to plain DSL worlds and driven through the columnar batch
executor — so the "small matchups direct, large sweeps lowered" split
has numbers attached. Results land in ``BENCH_arena.json`` at the repo
root and one summary record is appended to ``benchmarks/results.jsonl``
with explicit executor mode strings (``direct`` / ``columnar``),
mirroring bench_cluster / bench_macro_scale.

``--check-against BENCH_arena.json`` re-checks a fresh (usually smoke
scale) run's cells/sec against the committed reference with a loose
tolerance — the CI regression floor.

Usage::

    python benchmarks/bench_arena.py                    # full 100-world run
    python benchmarks/bench_arena.py --worlds 8         # smoke scale
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import time
import uuid

HERE = pathlib.Path(__file__).resolve().parent
ROOT = HERE.parent
SRC = ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

RESULTS_PATH = HERE / "results.jsonl"
BASELINE_DEFENDER = "zmail_static"


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run_tournament_once(worlds: int, periods: int, seed: int,
                        verify: int) -> tuple[dict, str, float]:
    from repro.arena import report_json, run_tournament

    start = time.perf_counter()
    report = run_tournament(
        seed=seed, worlds=worlds, periods=periods, verify=verify
    )
    elapsed = time.perf_counter() - start
    return report, report_json(report), elapsed


def lowered_columnar_sweep(report: dict, seed: int, count: int) -> dict:
    """Lower the first ``count`` cells and drive them columnar."""
    from repro.arena import cell_doc, cell_seed, lower_doc, run_match
    from repro.arena.worlds import generate_arena_doc
    from repro.scenario.compiler import compile_scenario, run_plan
    from repro.sim.rng import derive_seed

    cells = report["cells"][:count]
    worlds = {
        w["world"]: generate_arena_doc(
            derive_seed(seed, f"arena-world:{w['world']}"),
            periods=report["periods"],
        )
        for w in report["worlds"]
    }
    start = time.perf_counter()
    messages = 0
    for cell in cells:
        doc = cell_doc(worlds[cell["world"]], cell["attacker"],
                       cell["defender"])
        pilot = run_match(
            doc,
            seed=cell_seed(seed, cell["attacker"], cell["defender"],
                           cell["world"]),
        )
        plan = compile_scenario(lower_doc(doc, pilot))
        result = run_plan(plan, "columnar")
        extra = result["manifest"].extra
        if not extra["conserved"]:
            raise SystemExit(
                f"lowered cell {cell['attacker']} vs {cell['defender']} "
                f"world {cell['world']} violated conservation on columnar"
            )
        messages += extra["sends_attempted"]
    elapsed = time.perf_counter() - start
    return {
        "cells": len(cells),
        "messages": messages,
        "seconds": round(elapsed, 3),
        "messages_per_sec": round(messages / elapsed, 1) if elapsed else 0.0,
    }


def append_results_record(document: dict) -> None:
    """One EXPERIMENTS.md-style record, same shape the conftest writes."""
    sweep = document["throughput"]["lowered_columnar"]
    rows = [
        {
            "config": "tournament",
            # The drive that produced the number, mirroring the
            # executor-mode strings of bench_cluster/bench_macro_scale.
            "mode": "direct",
            "cells": document["scale"]["cells"],
            "best_seconds": document["throughput"]["tournament"]["seconds"],
            "cells_per_sec": document["throughput"]["tournament"][
                "cells_per_sec"
            ],
        },
        {
            "config": "lowered_sweep",
            "mode": "columnar",
            "cells": sweep["cells"],
            "messages": sweep["messages"],
            "best_seconds": sweep["seconds"],
            "messages_per_sec": sweep["messages_per_sec"],
        },
    ]
    for defender, phase in document["phase"].items():
        rows.append(
            {
                "config": f"phase@{defender}",
                "mode": "direct",
                "worlds": phase["worlds"],
                "profitable_worlds": phase["profitable_worlds"],
                "collapsed_worlds": phase["collapsed_worlds"],
                "collapse_boundary_ev": phase["collapse_boundary_ev"],
            }
        )
    record = {
        "experiment": "arena-tournament",
        "claim": (
            "under default Zmail pricing every attacker strategy is "
            "unprofitable in expectation below a measurable "
            "expected-value-per-message boundary (the collapse region), "
            "and the seeded tournament reproducing it is byte-identical "
            "across runs"
        ),
        "rows": rows,
        "host": document["host"],
        "run_id": uuid.uuid4().hex[:12],
        "timestamp": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(),
    }
    with open(RESULTS_PATH, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--worlds", type=int, default=100,
        help="generated worlds per matchup (default 100, the acceptance "
        "scale)",
    )
    parser.add_argument("--periods", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument(
        "--verify", type=int, default=3,
        help="cells lowered through the cross-executor differential "
        "oracle inside the tournament (default 3)",
    )
    parser.add_argument(
        "--lowered", type=int, default=5,
        help="cells for the lowered columnar throughput sweep (default 5)",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=ROOT / "BENCH_arena.json"
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and check only"
    )
    parser.add_argument(
        "--check-against", type=pathlib.Path, default=None,
        help="committed BENCH_arena.json to hold a cells/sec floor "
        "against (CI regression gate)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.6,
        help="allowed cells/sec regression fraction for --check-against "
        "(default 0.6: hosted runners are slow and noisy)",
    )
    args = parser.parse_args()

    from repro.arena import report_digest

    print(
        f"[bench_arena] tournament: full registry x {args.worlds} worlds "
        f"x {args.periods} periods (seed {args.seed}) ...", flush=True
    )
    report, text, elapsed = run_tournament_once(
        args.worlds, args.periods, args.seed, args.verify
    )
    cells = len(report["cells"])
    print(
        f"[bench_arena] {cells} cells in {elapsed:.1f}s = "
        f"{cells / elapsed:.2f} cells/sec", flush=True
    )

    print("[bench_arena] reproducibility: second full run ...", flush=True)
    report2, text2, elapsed2 = run_tournament_once(
        args.worlds, args.periods, args.seed, args.verify
    )

    failures = []
    if text != text2:
        failures.append("same-seed tournament reports are not byte-identical")
    else:
        print(
            f"[bench_arena] reports byte-identical "
            f"(digest {report_digest(report)})", flush=True
        )
    if not report["passed"]:
        failures.append(
            "tournament failed its own gates (conservation, consistency "
            f"or verification): verify={report['verify']}"
        )

    phase = report["phase"][BASELINE_DEFENDER]
    boundary = phase["collapse_boundary_ev"]
    print(
        f"[bench_arena] phase@{BASELINE_DEFENDER}: "
        f"{phase['collapsed_worlds']}/{phase['worlds']} worlds collapsed, "
        f"{phase['profitable_worlds']} profitable, "
        f"boundary ev {boundary}", flush=True
    )
    if phase["collapsed_worlds"] < 1 or boundary is None:
        failures.append(
            f"no collapse region under default Zmail pricing "
            f"({BASELINE_DEFENDER}): {phase}"
        )

    sweep = lowered_columnar_sweep(report, args.seed, args.lowered)
    print(
        f"[bench_arena] lowered columnar sweep: {sweep['cells']} cells, "
        f"{sweep['messages']} msgs in {sweep['seconds']}s = "
        f"{sweep['messages_per_sec']:,.0f} msgs/sec", flush=True
    )

    document = {
        "scale": {
            "attackers": report["attackers"],
            "defenders": report["defenders"],
            "worlds": args.worlds,
            "periods": args.periods,
            "seed": args.seed,
            "cells": cells,
            "verified_cells": report["verify"]["cells"],
        },
        "throughput": {
            "tournament": {
                "seconds": round(min(elapsed, elapsed2), 3),
                "cells_per_sec": round(cells / min(elapsed, elapsed2), 2),
            },
            "lowered_columnar": sweep,
        },
        "report_digest": report_digest(report),
        "byte_identical": text == text2,
        "phase": report["phase"],
        "collapse_boundary_ev": boundary,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "usable_cores": usable_cores(),
        },
    }

    if args.check_against:
        committed = json.loads(args.check_against.read_text())
        reference = committed["throughput"]["tournament"]["cells_per_sec"]
        measured = document["throughput"]["tournament"]["cells_per_sec"]
        floor = reference * (1.0 - args.tolerance)
        status = "OK" if measured >= floor else "REGRESSION"
        print(
            f"[bench_arena] cells/sec: {measured:.2f} "
            f"(committed {reference:.2f}, floor {floor:.2f}) {status}",
            flush=True,
        )
        if measured < floor:
            failures.append(
                f"tournament throughput regressed: {measured:.2f} "
                f"cells/sec < floor {floor:.2f}"
            )

    if failures:
        for failure in failures:
            print(f"[bench_arena] FAIL: {failure}", file=sys.stderr)
        raise SystemExit(1)

    if not args.no_write:
        args.output.write_text(
            json.dumps(document, sort_keys=True, indent=2) + "\n"
        )
        append_results_record(document)
        print(f"[bench_arena] wrote {args.output}", flush=True)
    print("[bench_arena] all gates passed", flush=True)


if __name__ == "__main__":
    main()
