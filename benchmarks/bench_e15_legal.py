"""E15 — legal approaches fail structurally (§2.1).

Regenerates the paper's two §2.1 arguments as measurements: national
enforcement relocates spam offshore without shrinking it (Sophos: 57.47%
already offshore by Aug 2004), and the FTC's do-not-email registry
*increases* a registered user's expected spam once leak risk is priced
in — while Zmail needs no jurisdiction at all (economics travel with the
message).
"""

from conftest import report

from repro.baselines import (
    SOPHOS_OFFSHORE_SHARE_2004,
    JurisdictionModel,
    RegistryModel,
)


def test_e15_enforcement_relocates_not_reduces(benchmark):
    def run():
        model = JurisdictionModel()
        rows = []
        for period in range(0, 11, 2):
            while len(model.history) <= period:
                model.step()
            onshore, offshore = model.history[period]
            total = onshore + offshore
            rows.append(
                {
                    "period": period,
                    "onshore": round(onshore, 1),
                    "offshore": round(offshore, 1),
                    "offshore_share": f"{offshore / total:.0%}",
                    "total": round(total, 1),
                }
            )
        return model, rows

    model, rows = benchmark(run)
    assert abs(
        model.history[0][1] / sum(model.history[0])
        - SOPHOS_OFFSHORE_SHARE_2004
    ) < 0.01
    assert model.offshore_share > 0.95  # enforcement chased it offshore
    assert model.volume_reduction() < 0.10  # ...but barely reduced it
    report(
        "E15a",
        "anti-spam laws relocate spam offshore; total volume barely moves",
        rows,
    )


def test_e15_registry_backfires(benchmark):
    def sweep():
        rows = []
        for leak in (0.0, 0.25, 0.5, 0.75, 1.0):
            model = RegistryModel(leak_probability=leak)
            rows.append(
                {
                    "leak_probability": leak,
                    "expected_spam_change": round(
                        model.expected_change(baseline=100.0), 1
                    ),
                }
            )
        return rows

    rows = benchmark(sweep)
    # With no leak the registry helps a little; at realistic leak risk it
    # hurts — the FTC's "might increase it".
    assert rows[0]["expected_spam_change"] < 0
    assert rows[-1]["expected_spam_change"] > 0
    changes = [row["expected_spam_change"] for row in rows]
    assert changes == sorted(changes)
    report(
        "E15b",
        "a do-not-email registry increases expected spam once leak risk "
        "is realistic (FTC 2004); Zmail requires no jurisdiction",
        rows,
    )
