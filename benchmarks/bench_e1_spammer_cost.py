"""E1 — spammer cost rises >= two orders of magnitude (paper §1.2).

Regenerates the break-even analysis: per-message cost ratio, break-even
response rates under both regimes, and the optimal-volume table across
campaign archetypes, swept over e-penny price.
"""

from conftest import report

from repro.core.epenny import EPENNY_PRICE_DOLLARS
from repro.economics import (
    CampaignModel,
    SpamRegime,
    break_even_table,
    cost_increase_factor,
    surviving_campaigns,
)


def compute_tables():
    rows = break_even_table()
    sweep = []
    for price in (0.001, 0.005, 0.01, 0.05):
        factor = cost_increase_factor(epenny_dollars=price)
        model = CampaignModel(1_000_000, 0.00003, 25.0)
        regime = SpamRegime.zmail(epenny_dollars=price)
        sweep.append(
            {
                "epenny_$": price,
                "cost_factor": factor,
                "bulk_volume": model.optimal_volume(regime),
                "breakeven_rate": model.break_even_response_rate(regime),
            }
        )
    return rows, sweep


def test_e1_cost_increase_and_breakeven(benchmark):
    rows, sweep = benchmark(compute_tables)

    factor = cost_increase_factor()
    # The headline claim, at the paper's own $0.01 e-penny.
    assert factor >= 100.0

    model = CampaignModel(1_000_000, 0.00003, 25.0)
    rate_sq = model.break_even_response_rate(SpamRegime.status_quo())
    rate_zm = model.break_even_response_rate(SpamRegime.zmail())
    # "The response rate required to break even will increase similarly."
    assert rate_zm / rate_sq >= 100.0

    # Bulk campaigns die; targeted ones survive.
    survivors = surviving_campaigns(rows)
    assert "pharma-bulk" not in survivors
    assert "targeted-niche" in survivors

    report(
        "E1",
        "sending cost and break-even response rate rise by >= 2 orders of "
        "magnitude; only targeted campaigns stay profitable",
        [
            {
                "campaign": r.campaign,
                "conv_rate": r.conversion_rate,
                "sq_volume": r.statusquo_volume,
                "zmail_volume": r.zmail_volume,
                "reduction": f"{r.volume_reduction:.0%}",
                "survives": r.survives,
            }
            for r in rows
        ],
    )
    report(
        "E1-sweep",
        "cost factor scales with e-penny price (100x at the paper's $0.01)",
        sweep,
    )
