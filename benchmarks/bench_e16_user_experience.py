"""E16 (headline synthesis) — what a user actually sees in the inbox.

The paper's motivation is user experience: spam drowning inboxes. This
experiment runs the full deployment — normal correspondence plus funded
spammers on compliant ISPs plus free-riding spammers on non-compliant
ISPs — and measures the inbox spam fraction for users of compliant vs
non-compliant ISPs as adoption grows. It synthesises E2 (economics cut
off compliant-side spam), the §5 policy lever (non-compliant mail is
segregated), and the adoption incentive of E9 (compliant users' inboxes
are visibly cleaner, which is what drives switching).
"""

from conftest import report

from repro.core import NonCompliantMailPolicy, ZmailConfig, ZmailNetwork
from repro.sim import DAY, Address, SeededStreams
from repro.sim.workload import (
    NormalUserWorkload,
    SpamCampaignWorkload,
    merge_workloads,
)

N_ISPS = 8
USERS = 10


def run_scenario(n_compliant: int, seed: int = 16):
    flags = [i < n_compliant for i in range(N_ISPS)]
    config = ZmailConfig(
        default_user_balance=60,
        auto_topup_amount=0,
        default_daily_limit=100_000,
        noncompliant_policy=NonCompliantMailPolicy.SEGREGATE,
    )
    net = ZmailNetwork(
        n_isps=N_ISPS, users_per_isp=USERS, compliant=flags,
        config=config, seed=seed,
    )
    streams = SeededStreams(seed)
    normal = NormalUserWorkload(
        n_isps=N_ISPS, users_per_isp=USERS, rate_per_day=8.0, streams=streams
    )
    spam_streams = []
    # One spammer on a compliant ISP (pays), one per non-compliant ISP (free).
    compliant_spammer = Address(0, 0)
    net.fund_user(compliant_spammer, epennies=200)  # its whole war chest
    spam_streams.append(
        SpamCampaignWorkload(
            spammer=compliant_spammer, n_isps=N_ISPS, users_per_isp=USERS,
            volume=2_000, start=0.0, duration=5 * DAY,
            streams=streams.spawn("cspam"),
        ).generate()
    )
    for isp_id in range(n_compliant, N_ISPS):
        spam_streams.append(
            SpamCampaignWorkload(
                spammer=Address(isp_id, 0), n_isps=N_ISPS,
                users_per_isp=USERS, volume=2_000, start=0.0,
                duration=5 * DAY, streams=streams.spawn(f"nspam{isp_id}"),
            ).generate()
        )
    net.run_workload(
        merge_workloads(normal.generate(5 * DAY), *spam_streams)
    )

    compliant_inbox = compliant_junk = compliant_ham = 0
    for isp_id in range(n_compliant):
        isp = net.isps[isp_id]
        stats = isp.stats
        compliant_junk += stats.junked
        for user in isp.ledger.users():
            compliant_inbox += user.inbox
    # Paid spam that reached compliant inboxes is bounded by war chests;
    # estimate inbox spam = delivered spam-kind letters to compliant ISPs.
    spam_delivered = net.metrics.counter("deliver.kind.spam").value
    total_delivered = net.metrics.counter("deliver.delivered").value
    return {
        "compliant_isps": n_compliant,
        "inbox_total": compliant_inbox,
        "junked_spam": compliant_junk,
        "spam_delivered_all": spam_delivered,
        "net": net,
    }


def test_e16_inbox_spam_vs_adoption(benchmark):
    def sweep():
        rows = []
        for n_compliant in (2, 4, 6, 8):
            result = run_scenario(n_compliant)
            net = result.pop("net")
            # Spam that reached a compliant user's *inbox* (not junk):
            # only what a funded compliant-side spammer could pay for.
            paid_spam = net.metrics.counter("send.kind.spam").value
            blocked = net.metrics.counter("send.blocked_balance").value
            result["spam_junked_not_inboxed"] = result.pop("junked_spam")
            result["compliant_spammer_blocked"] = blocked
            rows.append(result)
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    # Spam aimed at compliant users costs money: the more of the network
    # complies, the sooner the spammer's war chest chokes the campaign.
    blocked = [row["compliant_spammer_blocked"] for row in rows]
    assert blocked[-1] > blocked[0]
    assert blocked[-1] > 1_000  # full adoption: most of the blast refused
    # Free-riding spam lands in junk folders, not inboxes...
    assert all(row["spam_junked_not_inboxed"] > 0 for row in rows[:-1])
    # ...and at full adoption no free-riding spammers exist at all.
    assert rows[-1]["spam_junked_not_inboxed"] == 0
    report(
        "E16",
        "compliant-ISP users' inboxes stay clean: paid spam is throttled "
        "by money, free spam is segregated; incentives grow with adoption",
        [
            {k: v for k, v in row.items()}
            for row in rows
        ],
    )


def test_e16_windfall_to_receivers(benchmark):
    """§1.2: whatever paid spam does arrive is compensated attention."""

    def run():
        result = run_scenario(4)
        net = result["net"]
        windfall = 0
        for isp_id in range(1, 4):  # compliant ISPs other than spammer's
            for user in net.isps[isp_id].ledger.users():
                windfall += max(0, user.net_epenny_flow)
        return windfall

    windfall = benchmark.pedantic(run, iterations=1, rounds=1)
    assert windfall > 0
    report(
        "E16b",
        "received spam is a windfall: e-pennies land with the receivers",
        [{"aggregate_receiver_windfall_epennies": windfall}],
    )
