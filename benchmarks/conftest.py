"""Shared reporting for the experiment benchmarks.

Each ``bench_e*.py`` module regenerates one experiment from DESIGN.md's
index (the paper has no numbered tables/figures; each quantitative claim
is an experiment). Benchmarks do three things:

1. time the experiment's computational core via pytest-benchmark;
2. *assert* the claim's shape (who wins, roughly by how much) so the
   benchmark run doubles as a reproduction check;
3. emit a claim-vs-measured table through :func:`report`, which also
   appends to ``benchmarks/results.jsonl`` for EXPERIMENTS.md.

Run:
    pytest benchmarks/ --benchmark-only            # quiet
    pytest benchmarks/ --benchmark-only -s         # with the tables
"""

import datetime
import json
import pathlib
import uuid

RESULTS_PATH = pathlib.Path(__file__).parent / "results.jsonl"

# One id per pytest session: every record a run appends carries the same
# run_id, so partial/interrupted runs are distinguishable in the JSONL.
RUN_ID = uuid.uuid4().hex[:12]


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def report(experiment: str, claim: str, rows: list[dict]) -> None:
    """Print a uniform experiment table and persist it as JSONL."""
    print(f"\n[{experiment}] paper claim: {claim}")
    if rows:
        keys = list(rows[0].keys())
        widths = {
            k: max(len(k), *(len(_format_cell(r.get(k, ""))) for r in rows))
            for k in keys
        }
        header = "  " + "  ".join(k.ljust(widths[k]) for k in keys)
        print(header)
        print("  " + "-" * (len(header) - 2))
        for row in rows:
            print(
                "  "
                + "  ".join(
                    _format_cell(row.get(k, "")).rjust(widths[k]) for k in keys
                )
            )
    # Append-only: interrupted or partial benchmark runs never clobber
    # earlier results. make_experiments_md.py keeps the newest record per
    # experiment by timestamp when rendering.
    record = {
        "experiment": experiment,
        "claim": claim,
        "rows": rows,
        "run_id": RUN_ID,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }
    with RESULTS_PATH.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
