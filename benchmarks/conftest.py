"""Shared reporting for the experiment benchmarks.

Each ``bench_e*.py`` module regenerates one experiment from DESIGN.md's
index (the paper has no numbered tables/figures; each quantitative claim
is an experiment). Benchmarks do three things:

1. time the experiment's computational core via pytest-benchmark;
2. *assert* the claim's shape (who wins, roughly by how much) so the
   benchmark run doubles as a reproduction check;
3. emit a claim-vs-measured table through :func:`report`, which also
   appends to ``benchmarks/results.jsonl`` for EXPERIMENTS.md.

Run:
    pytest benchmarks/ --benchmark-only            # quiet
    pytest benchmarks/ --benchmark-only -s         # with the tables
"""

import json
import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.jsonl"


def _format_cell(value):
    if isinstance(value, float):
        return f"{value:,.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def report(experiment: str, claim: str, rows: list[dict]) -> None:
    """Print a uniform experiment table and persist it as JSONL."""
    print(f"\n[{experiment}] paper claim: {claim}")
    if rows:
        keys = list(rows[0].keys())
        widths = {
            k: max(len(k), *(len(_format_cell(r.get(k, ""))) for r in rows))
            for k in keys
        }
        header = "  " + "  ".join(k.ljust(widths[k]) for k in keys)
        print(header)
        print("  " + "-" * (len(header) - 2))
        for row in rows:
            print(
                "  "
                + "  ".join(
                    _format_cell(row.get(k, "")).rjust(widths[k]) for k in keys
                )
            )
    with RESULTS_PATH.open("a") as fh:
        fh.write(
            json.dumps({"experiment": experiment, "claim": claim, "rows": rows})
            + "\n"
        )


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start every benchmark session with a clean results file."""
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
    yield
