"""E14 (extension) — distributed/hierarchical banks (§5, "Bank Setup").

The paper asserts the central bank "can be implemented as a set of
distributed banks or a hierarchy of banks" and that the extension is
straightforward. This experiment validates the built extension: detection
power identical to the central bank, every pair still checked exactly
once, and the heaviest single node's verification load shrinking as the
federation grows.
"""

import random

from conftest import report

from repro.core import BankFederation, ZmailNetwork, verify_credit_matrix
from repro.sim import Address, TrafficKind


def collect_reports(n_isps: int, messages: int, corrupt: dict[int, int]):
    net = ZmailNetwork(n_isps=n_isps, users_per_isp=4, seed=14)
    rng = random.Random(14)
    for _ in range(messages):
        net.send(
            Address(rng.randrange(n_isps), rng.randrange(4)),
            Address(rng.randrange(n_isps), rng.randrange(4)),
            TrafficKind.NORMAL,
        )
    isps = net.compliant_isps()
    for isp in isps.values():
        isp.begin_snapshot(0)
    reports = {}
    for isp_id, isp in sorted(isps.items()):
        credit = isp.snapshot_reply()
        isp.resume_sending()
        if isp_id in corrupt:
            credit = {k: v + corrupt[isp_id] for k, v in credit.items()}
        reports[isp_id] = credit
    return reports


def partition(n_isps: int, n_regions: int) -> list[list[int]]:
    size = n_isps // n_regions
    return [
        list(range(r * size, (r + 1) * size)) for r in range(n_regions)
    ]


def test_e14_detection_parity_with_central_bank(benchmark):
    def run():
        reports = collect_reports(n_isps=12, messages=4000, corrupt={7: 9})
        central = verify_credit_matrix(reports)
        fed = BankFederation(partition(12, 3))
        federated = fed.reconcile(reports)
        return central, federated

    central, federated = benchmark(run)
    assert sorted((p.isp_a, p.isp_b) for p in central) == sorted(
        (p.isp_a, p.isp_b) for p in federated.all_inconsistent
    )
    assert 7 in federated.suspects()
    report(
        "E14a",
        "a federation of banks detects exactly what the central bank does",
        [
            {
                "scheme": "central",
                "pairs_checked": 12 * 11 // 2,
                "inconsistent": len(central),
                "cheater_found": any(7 in (p.isp_a, p.isp_b) for p in central),
            },
            {
                "scheme": "federated(3 regions)",
                "pairs_checked": federated.total_pairs_checked,
                "inconsistent": len(federated.all_inconsistent),
                "cheater_found": 7 in federated.suspects(),
            },
        ],
    )


def test_e14_root_load_scaling(benchmark):
    def sweep():
        reports = collect_reports(n_isps=24, messages=3000, corrupt={})
        rows = []
        central_pairs = 24 * 23 // 2
        rows.append(
            {
                "regions": 1,
                "max_node_pairs": central_pairs,
                "root_pairs": central_pairs,
                "total_pairs": central_pairs,
            }
        )
        for n_regions in (2, 4, 8):
            fed = BankFederation(partition(24, n_regions))
            outcome = fed.reconcile(reports)
            max_node = max(
                [outcome.root_pairs_checked]
                + [r.local_pairs_checked for r in outcome.regions]
            )
            rows.append(
                {
                    "regions": n_regions,
                    "max_node_pairs": max_node,
                    "root_pairs": outcome.root_pairs_checked,
                    "total_pairs": outcome.total_pairs_checked,
                }
            )
        return rows

    rows = benchmark(sweep)
    # Total work is invariant; the heaviest node's share falls, then the
    # root's cross-pair share dominates again — the classic hierarchy
    # trade-off the experiment exposes.
    assert all(row["total_pairs"] == rows[0]["total_pairs"] for row in rows)
    assert rows[1]["max_node_pairs"] < rows[0]["max_node_pairs"]
    report(
        "E14b",
        "hierarchy spreads verification: per-node load drops below the "
        "central bank's O(n^2) while total coverage is unchanged",
        rows,
    )
