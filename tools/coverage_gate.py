#!/usr/bin/env python3
"""Stdlib line-coverage gate: fail CI when coverage regresses.

The container has no ``coverage`` package, so this gate measures line
coverage with ``sys.settrace`` directly: a global tracer records every
executed line in files under ``--target``, the set of *executable* lines
comes from the compiled code objects' ``co_lines()``, and the ratio is
checked against two floors:

* ``--floor PCT`` — the pinned overall floor across every measured file
  (measured once at introduction, then ratcheted: lowering it needs a
  justification in the commit);
* ``--require-100 PREFIX`` — paths (relative to the target) that must be
  *fully* covered; the observability package ships at 100% and stays
  there;
* ``--require PREFIX=PCT`` — per-subtree floors below 100 (the cluster
  runtime carries its own 90%% floor inside the wider ``src/repro``
  target). Repeatable.

Exclusions mirror coverage.py's defaults where they matter here: lines
inside ``if TYPE_CHECKING:`` blocks and statements marked
``# pragma: no cover`` are not counted as executable.

Usage (what tools/ci.sh runs)::

    python tools/coverage_gate.py --target src/repro/obs \\
        --floor 100 --require-100 . -- -x -q tests/test_obs_trace.py ...

Everything after ``--`` is passed to pytest verbatim.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import threading
import types


def find_sources(target: str) -> list[str]:
    """Every ``.py`` file under ``target`` (absolute paths, sorted)."""
    found: list[str] = []
    for root, _dirs, files in os.walk(target):
        for name in files:
            if name.endswith(".py"):
                found.append(os.path.abspath(os.path.join(root, name)))
    return sorted(found)


def excluded_lines(source: str, tree: ast.Module) -> set[int]:
    """Lines not counted as executable: TYPE_CHECKING bodies and pragmas."""
    text_lines = source.splitlines()
    excluded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = node.test
            name = getattr(test, "id", None) or getattr(test, "attr", None)
            if name == "TYPE_CHECKING":
                for child in node.body:
                    excluded.update(range(child.lineno, child.end_lineno + 1))
        lineno = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if lineno is not None and end is not None:
            if "pragma: no cover" in text_lines[lineno - 1]:
                excluded.update(range(lineno, end + 1))
    return excluded


def executable_lines(path: str) -> set[int]:
    """Line numbers carrying bytecode in ``path``, minus exclusions."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    code = compile(source, path, "exec")
    lines: set[int] = set()
    stack: list[types.CodeType] = [code]
    while stack:
        current = stack.pop()
        for _start, _end, line in current.co_lines():
            # line 0 is the synthetic module prologue (RESUME), not source
            if line:
                lines.add(line)
        for const in current.co_consts:
            if isinstance(const, types.CodeType):
                stack.append(const)
    return lines - excluded_lines(source, ast.parse(source))


def run_pytest_traced(target: str, pytest_args: list[str]) -> tuple[dict, int]:
    """Run pytest under a line tracer; returns (hits by file, exit code)."""
    prefix = os.path.abspath(target) + os.sep
    hits: dict[str, set[int]] = {}

    def tracer(frame, event, _arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        if event == "line":
            hits.setdefault(filename, set()).add(frame.f_lineno)
        return tracer

    import pytest

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return hits, int(exit_code)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--target", required=True,
        help="directory whose .py files are measured",
    )
    parser.add_argument(
        "--floor", type=float, default=0.0, metavar="PCT",
        help="minimum overall line coverage percent across the target",
    )
    parser.add_argument(
        "--require-100", action="append", default=[], metavar="PREFIX",
        help="relative path prefix (within the target) that must be 100%% "
        "covered; '.' means the whole target. Repeatable.",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="PREFIX=PCT",
        help="relative path prefix that must reach PCT%% line coverage "
        "(e.g. cluster=90). Repeatable.",
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="arguments passed to pytest (put them after a `--`)",
    )
    args = parser.parse_args(argv)

    floors: dict[str, float] = {}
    for spec in args.require:
        prefix, sep, pct = spec.partition("=")
        if not sep or not prefix:
            parser.error(f"--require expects PREFIX=PCT, got {spec!r}")
        try:
            floors[prefix] = float(pct)
        except ValueError:
            parser.error(f"--require expects a numeric PCT, got {spec!r}")

    target = os.path.abspath(args.target)
    sources = find_sources(target)
    if not sources:
        print(f"coverage gate: no .py files under {args.target}", file=sys.stderr)
        return 2

    hits, pytest_exit = run_pytest_traced(target, args.pytest_args)
    if pytest_exit != 0:
        print(f"coverage gate: pytest failed (exit {pytest_exit})", file=sys.stderr)
        return pytest_exit

    def matches(rel: str, prefix: str) -> bool:
        return (
            prefix == "."
            or rel == prefix
            or rel.startswith(prefix.rstrip("/") + "/")
        )

    total_executable = 0
    total_hit = 0
    by_prefix: dict[str, list[int]] = {prefix: [0, 0] for prefix in floors}
    failures: list[str] = []
    print(f"\ncoverage gate over {args.target}:")
    for path in sources:
        executable = executable_lines(path)
        covered = hits.get(path, set()) & executable
        missing = sorted(executable - covered)
        total_executable += len(executable)
        total_hit += len(covered)
        pct = 100.0 * len(covered) / len(executable) if executable else 100.0
        rel = os.path.relpath(path, target)
        print(f"  {rel:<28} {pct:6.1f}%  ({len(covered)}/{len(executable)})")
        for prefix, tally in by_prefix.items():
            if matches(rel, prefix):
                tally[0] += len(executable)
                tally[1] += len(covered)
        needs_full = any(matches(rel, prefix) for prefix in args.require_100)
        if needs_full and missing:
            failures.append(
                f"{rel}: must be 100% covered, missing lines {missing}"
            )

    for prefix, (executable_n, hit_n) in sorted(by_prefix.items()):
        if not executable_n:
            failures.append(f"--require {prefix}: no measured files match")
            continue
        pct = 100.0 * hit_n / executable_n
        print(
            f"  {prefix + '/ (floor ' + format(floors[prefix], '.0f') + '%)':<28}"
            f" {pct:6.1f}%  ({hit_n}/{executable_n})"
        )
        if pct < floors[prefix]:
            failures.append(
                f"{prefix}: coverage {pct:.1f}% below required "
                f"{floors[prefix]:.1f}%"
            )

    overall = 100.0 * total_hit / total_executable if total_executable else 100.0
    print(f"  {'TOTAL':<28} {overall:6.1f}%  ({total_hit}/{total_executable})")
    if overall < args.floor:
        failures.append(
            f"overall coverage {overall:.1f}% below pinned floor {args.floor:.1f}%"
        )
    for failure in failures:
        print(f"coverage gate FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("coverage gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
