#!/usr/bin/env bash
# CI gate: tier-1 tests + a macro-scale throughput smoke run.
#
# 1. Runs the full tier-1 test suite (ROADMAP.md's verify command).
# 2. Re-runs the suite under tools/coverage_gate.py: overall line
#    coverage must stay at or above the pinned floor (CI_COVERAGE_FLOOR,
#    default 94 — measured 94.9% when the gate was introduced) and the
#    observability package src/repro/obs must be 100% covered. Set
#    CI_COVERAGE=0 to skip the traced re-run on slow machines.
# 3. Runs the canonical macro scenario at smoke scale (~50k messages),
#    which also asserts cross-mode determinism, and fails the build if
#    columnar/direct/engine_stream throughput regresses more than
#    CI_BENCH_TOLERANCE (default 45%) against the committed
#    BENCH_scale.json numbers. Absolute msgs/sec varies with machine
#    load (the committed references are idle-machine numbers), so the
#    absolute floor is loose; the load-invariant guarantees are the
#    *ratio* gates — smoke columnar must hold >=2x engine_stream within
#    the same run, and the committed full-scale columnar lead must stay
#    >=3x.
# 4. Runs the built-in seeded chaos smoke campaign twice (well under 60s
#    total) and fails if any cell breaks an invariant or the two reports
#    are not byte-identical (determinism gate).
# 5. Runs the built-in seeded overload campaign twice the same way:
#    every cell must keep the overload monitors green (bounded queues,
#    no lost accounting) and the two reports must be byte-identical.
# 6. Runs the cluster determinism smoke: the same seeded scenario at 1
#    and 4 shards (real spawn workers) must produce byte-identical
#    merged run manifests (cmp), the sharding-invariance contract —
#    then again at 4 shards under the bounded-lag asynchronous drive
#    (--lag 2, streaming reconciliation): its manifest must byte-match
#    the lockstep one, the lockstep-as-oracle contract.
# 7. Runs the columnar determinism smoke: the canonical scenario driven
#    by the columnar batch executor and by the engine must produce
#    byte-identical executor-invariant manifests (cmp) — ledger event
#    multiset, protocol metrics and accounting digest all agree. The
#    throughput gate additionally requires the committed columnar run
#    to hold a >=3x lead over engine_stream at full scale.
# 8. Runs the store soak smoke: a short seeded soak with two injected
#    crash/restart cycles against the durable SQLite store must produce
#    a run manifest byte-identical to the uninterrupted in-memory
#    oracle (cmp) — the recovery-equivalence contract of repro.store.
# 9. Runs the arena determinism smoke: the same seeded mini-tournament
#    (three attacker strategies vs the static Zmail defender) twice,
#    byte-comparing the two canonical reports (cmp) and requiring every
#    cell to pass conservation/consistency. The full 100-world phase
#    diagram runs via benchmarks/bench_arena.py (see the workflow).
#
# The committed reference was measured on a developer machine; raw
# msgs/sec on other hardware differ, so the default tolerance is loose
# (it catches algorithmic regressions, not single-digit noise) and the
# knobs below let slow/shared runners relax it further:
#
#   CI_BENCH_MESSAGES=20000 CI_BENCH_TOLERANCE=0.5 tools/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

# `tools/ci.sh fuzz` runs the nightly differential fuzzing campaign
# instead of the regular gate: CI_FUZZ_COUNT generated worlds (default
# 200) through every executor, byte-comparing invariant manifests. The
# seed defaults to the UTC date so each night explores fresh worlds yet
# stays replayable (`repro fuzz --replay SEED:INDEX`); failing worlds
# (original + shrunk) land in CI_FUZZ_OUT for artifact upload.
if [ "${1:-}" = "fuzz" ]; then
    FUZZ_COUNT="${CI_FUZZ_COUNT:-200}"
    FUZZ_SEED="${CI_FUZZ_SEED:-$(date -u +%Y%m%d)}"
    FUZZ_OUT="${CI_FUZZ_OUT:-/tmp/fuzz-artifacts}"
    echo "== nightly fuzz campaign (${FUZZ_COUNT} worlds, seed ${FUZZ_SEED}) =="
    PYTHONPATH=src python -m repro fuzz \
        --count "${FUZZ_COUNT}" --seed "${FUZZ_SEED}" --out "${FUZZ_OUT}"
    echo "== fuzz campaign passed =="
    exit 0
fi

MESSAGES="${CI_BENCH_MESSAGES:-50000}"
TOLERANCE="${CI_BENCH_TOLERANCE:-0.45}"

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q

if [ "${CI_COVERAGE:-1}" != "0" ]; then
    COVERAGE_FLOOR="${CI_COVERAGE_FLOOR:-94}"
    echo "== coverage gate (floor ${COVERAGE_FLOOR}%, obs at 100%, cluster/columnar/store/scenario/arena/reconcile at 90%) =="
    PYTHONPATH=src python tools/coverage_gate.py \
        --target src/repro \
        --floor "${COVERAGE_FLOOR}" \
        --require-100 obs \
        --require cluster=90 \
        --require columnar=90 \
        --require store=90 \
        --require scenario=90 \
        --require arena=90 \
        --require core/reconcile.py=90 \
        -- -q -p no:cacheprovider
else
    echo "== coverage gate skipped (CI_COVERAGE=0) =="
fi

echo "== macro smoke benchmark (${MESSAGES} messages) =="
python benchmarks/bench_macro_scale.py \
    --messages "${MESSAGES}" \
    --verify-messages "${MESSAGES}" \
    --output /tmp/BENCH_smoke.json

echo "== throughput regression check (tolerance ${TOLERANCE}) =="
python - "$TOLERANCE" <<'EOF'
import json
import pathlib
import sys

tolerance = float(sys.argv[1])
committed = json.loads(pathlib.Path("BENCH_scale.json").read_text())
smoke = json.loads(pathlib.Path("/tmp/BENCH_smoke.json").read_text())

if not smoke.get("determinism_ok", False):
    raise SystemExit("determinism check failed in smoke benchmark")

failures = []
for mode in ("columnar", "direct", "engine_stream"):
    # Compare smoke-scale against the committed smoke-scale reference
    # (throughput is scale-dependent); fall back to the full-scale
    # number if an older BENCH_scale.json lacks the smoke section.
    reference_run = committed["current"].get(
        f"{mode}_smoke", committed["current"][mode]
    )
    reference = reference_run["messages_per_sec"]
    measured = smoke["current"][mode]["messages_per_sec"]
    floor = reference * (1.0 - tolerance)
    status = "OK" if measured >= floor else "REGRESSION"
    print(
        f"  {mode:>14}: {measured:>12,.0f} msgs/sec "
        f"(committed {reference:,.0f}, floor {floor:,.0f}) {status}"
    )
    if measured < floor:
        failures.append(mode)
if failures:
    raise SystemExit(
        f"throughput regression (> {tolerance:.0%}) in: {', '.join(failures)}"
    )
print("throughput within tolerance")

# Ratio of two modes measured in the same run is load-invariant, so it
# gets a tight floor where the absolute check above cannot: the smoke
# columnar run must hold >=2x engine_stream (3x+ when idle; the lower
# bar absorbs residual per-subprocess scheduling noise).
smoke_ratio = (
    smoke["current"]["columnar"]["messages_per_sec"]
    / smoke["current"]["engine_stream"]["messages_per_sec"]
)
print(f"smoke columnar/engine_stream ratio: {smoke_ratio:.2f}x")
if smoke_ratio < 2.0:
    raise SystemExit(f"smoke columnar ratio {smoke_ratio:.2f}x below 2x")

# The committed full-scale numbers must show the columnar executor
# holding its headline lead: >=3x engine_stream on the same scenario.
full_columnar = committed["current"].get("columnar")
full_engine = committed["current"].get("engine_stream")
if not (full_columnar and full_engine):
    raise SystemExit("BENCH_scale.json lacks full-scale columnar/engine runs")
lead = full_columnar["messages_per_sec"] / full_engine["messages_per_sec"]
print(f"committed columnar lead over engine_stream: {lead:.2f}x")
if lead < 3.0:
    raise SystemExit(f"columnar lead {lead:.2f}x below the 3x floor")
EOF

CHAOS_SEED="${CI_CHAOS_SEED:-7}"
echo "== chaos smoke campaign (seed ${CHAOS_SEED}) =="
PYTHONPATH=src python -m repro chaos --seed "${CHAOS_SEED}" \
    --out /tmp/chaos_report_1.json
PYTHONPATH=src python -m repro chaos --seed "${CHAOS_SEED}" \
    --out /tmp/chaos_report_2.json >/dev/null
cmp /tmp/chaos_report_1.json /tmp/chaos_report_2.json \
    || { echo "chaos campaign is not reproducible"; exit 1; }
echo "chaos campaign reproducible"

OVERLOAD_SEED="${CI_OVERLOAD_SEED:-11}"
echo "== overload smoke campaign (seed ${OVERLOAD_SEED}) =="
PYTHONPATH=src python -m repro overload --seed "${OVERLOAD_SEED}" \
    --out /tmp/overload_report_1.json
PYTHONPATH=src python -m repro overload --seed "${OVERLOAD_SEED}" \
    --out /tmp/overload_report_2.json >/dev/null
cmp /tmp/overload_report_1.json /tmp/overload_report_2.json \
    || { echo "overload campaign is not reproducible"; exit 1; }
echo "overload campaign reproducible"

FUZZ_SMOKE_SEED="${CI_FUZZ_SMOKE_SEED:-7}"
echo "== scenario fuzz smoke (5 worlds, seed ${FUZZ_SMOKE_SEED}) =="
# Fixed-seed differential smoke: five generated worlds through the
# direct/columnar/cluster executor matrix must byte-agree on their
# invariant manifests. The full 200-world campaign runs nightly via
# `tools/ci.sh fuzz`.
PYTHONPATH=src python -m repro fuzz --count 5 --seed "${FUZZ_SMOKE_SEED}"

CLUSTER_SEED="${CI_CLUSTER_SEED:-9}"
echo "== cluster determinism smoke (seed ${CLUSTER_SEED}, 1 vs 4 shards) =="
PYTHONPATH=src python -m repro cluster --seed "${CLUSTER_SEED}" \
    --shards 1 --isps 8 --users 16 --days 1 \
    --manifest /tmp/cluster_manifest_1.json
PYTHONPATH=src python -m repro cluster --seed "${CLUSTER_SEED}" \
    --shards 4 --isps 8 --users 16 --days 1 \
    --manifest /tmp/cluster_manifest_4.json >/dev/null
cmp /tmp/cluster_manifest_1.json /tmp/cluster_manifest_4.json \
    || { echo "cluster runtime is not shard-invariant"; exit 1; }
echo "cluster manifests byte-identical across shard counts"

echo "== bounded-lag determinism smoke (seed ${CLUSTER_SEED}, lockstep vs --lag 2) =="
PYTHONPATH=src python -m repro cluster --seed "${CLUSTER_SEED}" \
    --shards 4 --lag 2 --isps 8 --users 16 --days 1 \
    --manifest /tmp/cluster_manifest_lag.json >/dev/null
cmp /tmp/cluster_manifest_1.json /tmp/cluster_manifest_lag.json \
    || { echo "bounded-lag drive diverges from lockstep"; exit 1; }
echo "bounded-lag manifest byte-identical to lockstep"

COLUMNAR_SEED="${CI_COLUMNAR_SEED:-7}"
echo "== columnar determinism smoke (seed ${COLUMNAR_SEED}, columnar vs engine_stream) =="
PYTHONPATH=src python -m repro trace --seed "${COLUMNAR_SEED}" \
    --mode columnar \
    --invariant-manifest /tmp/invariant_columnar.json >/dev/null
PYTHONPATH=src python -m repro trace --seed "${COLUMNAR_SEED}" \
    --mode engine_stream \
    --invariant-manifest /tmp/invariant_engine.json >/dev/null
cmp /tmp/invariant_columnar.json /tmp/invariant_engine.json \
    || { echo "columnar executor diverges from the engine"; exit 1; }
echo "invariant manifests byte-identical across executors"

SOAK_SEED="${CI_SOAK_SEED:-7}"
echo "== store soak smoke (seed ${SOAK_SEED}, durable vs in-memory oracle) =="
# Recovery-equivalence gate: the same seeded crash/restart/flood soak
# run against the durable store (every restart rebuilt from disk) and
# as an uninterrupted in-memory oracle must produce byte-identical run
# manifests. Two crash/restart cycles are injected by default.
PYTHONPATH=src python -m repro soak --seed "${SOAK_SEED}" \
    --days 0.25 --crashes 2 \
    --store /tmp/soak_store.db \
    --manifest /tmp/soak_manifest_durable.json
PYTHONPATH=src python -m repro soak --seed "${SOAK_SEED}" \
    --days 0.25 --crashes 2 --oracle \
    --manifest /tmp/soak_manifest_oracle.json >/dev/null
cmp /tmp/soak_manifest_durable.json /tmp/soak_manifest_oracle.json \
    || { echo "durable soak diverges from the in-memory oracle"; exit 1; }
rm -f /tmp/soak_store.db
echo "soak manifests byte-identical (recovery equivalence holds)"

ARENA_SEED="${CI_ARENA_SEED:-13}"
echo "== arena determinism smoke (seed ${ARENA_SEED}, mini-tournament twice) =="
# Strategy-tournament reproducibility gate: the same seeded matchup
# matrix must produce a byte-identical canonical report, and the run
# itself fails (exit nonzero) if any cell breaks conservation or §4.4
# consistency. One cell is also lowered and cross-checked against the
# executor matrix (--verify 1).
PYTHONPATH=src python -m repro arena --seed "${ARENA_SEED}" \
    --worlds 2 --periods 3 --verify 1 \
    --attackers static,zombie_fleet,response_rate \
    --defenders zmail_static \
    --out /tmp/arena_report_1.json
PYTHONPATH=src python -m repro arena --seed "${ARENA_SEED}" \
    --worlds 2 --periods 3 --verify 1 \
    --attackers static,zombie_fleet,response_rate \
    --defenders zmail_static \
    --out /tmp/arena_report_2.json >/dev/null
cmp /tmp/arena_report_1.json /tmp/arena_report_2.json \
    || { echo "arena tournament is not reproducible"; exit 1; }
echo "arena reports byte-identical"

echo "== CI gate passed =="
