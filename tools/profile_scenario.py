#!/usr/bin/env python3
"""Profile the canonical macro scenario under cProfile.

The macro benchmark (``benchmarks/bench_macro_scale.py``) answers "how
fast"; this tool answers "where does the time go". It runs the same
canonical scenario under :mod:`cProfile` and prints the hottest functions,
so a performance change can be judged by its effect on the actual hot
path rather than a guess.

Usage::

    python tools/profile_scenario.py                       # 100k, direct
    python tools/profile_scenario.py --mode columnar
    python tools/profile_scenario.py --mode engine_stream
    python tools/profile_scenario.py --top 40 --sort tottime
    python tools/profile_scenario.py --output /tmp/run.pstats

(`repro --profile <command>` offers the same view for any CLI command.)
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
for entry in (ROOT / "src", ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

from bench_macro_scale import MODES, canonical_scenario  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--messages",
        type=int,
        default=100_000,
        help="scenario scale (default 100k: representative and quick)",
    )
    parser.add_argument("--mode", choices=MODES, default="direct")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="number of rows to print (default 25)",
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls", "pcalls", "filename"],
        help="pstats sort order (default cumulative)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        help="also dump raw stats here (inspect later with pstats)",
    )
    args = parser.parse_args()

    scenario = canonical_scenario(args.messages, args.seed)
    if args.mode == "engine_stream":
        scenario.engine_mode = True
    elif args.mode == "engine_events":
        scenario.engine_mode = True
        scenario.engine_streaming = False
    elif args.mode == "columnar":
        scenario.columnar = True

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = scenario.run()
    profiler.disable()
    elapsed = time.perf_counter() - start

    print(
        f"[profile_scenario] {args.mode}: {result.sends_attempted} msgs in "
        f"{elapsed:.2f}s (profiled) = "
        f"{result.sends_attempted / elapsed:,.0f} msgs/sec"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"[profile_scenario] raw stats written to {args.output}")


if __name__ == "__main__":
    main()
