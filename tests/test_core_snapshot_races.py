"""Race-condition tests for the §4.4 snapshot methods.

The paper's timeout method relies on a real-time assumption: the quiesce
window must exceed request-delivery skew plus in-flight drain time. These
tests demonstrate both sides — the marker method staying consistent under
hostile latency, and the timeout method producing false alarms when its
window is violated (the behaviour benchmark E6a sweeps).
"""

from repro.core import ZmailConfig, ZmailNetwork
from repro.sim import Engine, LinkSpec
from repro.sim.workload import Address


def busy_network(engine, *, quiesce, latency, jitter=0.0, seed=5):
    config = ZmailConfig(snapshot_quiesce_seconds=quiesce)
    net = ZmailNetwork(
        n_isps=4,
        users_per_isp=6,
        seed=seed,
        engine=engine,
        config=config,
        link=LinkSpec(base_latency=latency, jitter=jitter),
    )

    # Continuous cross-ISP chatter while the snapshot runs.
    def chatter(i=0):
        net.send(
            Address(i % 4, i % 6), Address((i + 1) % 4, (i + 2) % 6)
        )

    for k in range(400):
        engine.schedule_at(k * 0.05, lambda k=k: chatter(k))
    return net


class TestMarkerMethod:
    def test_consistent_under_heavy_latency_and_traffic(self):
        engine = Engine()
        net = busy_network(engine, quiesce=1.0, latency=2.0, jitter=1.5)
        engine.schedule_at(5.0, lambda: net.reconcile("marker"))
        engine.run()
        assert net.last_report is not None
        assert net.last_report.consistent

    def test_repeated_rounds_all_consistent(self):
        engine = Engine()
        net = busy_network(engine, quiesce=1.0, latency=0.8, jitter=0.5)
        for t in (3.0, 9.0, 15.0):
            engine.schedule_at(t, lambda: net.reconcile("marker"))
        engine.run()
        assert len(net.bank.reports) == 3
        assert all(r.consistent for r in net.bank.reports)

    def test_conservation_through_snapshot(self):
        engine = Engine()
        net = busy_network(engine, quiesce=1.0, latency=0.8)
        engine.schedule_at(4.0, lambda: net.reconcile("marker"))
        engine.run()
        assert net.total_value() == net.expected_total_value()


class TestTimeoutMethod:
    def test_generous_window_is_consistent(self):
        engine = Engine()
        net = busy_network(engine, quiesce=60.0, latency=0.5, jitter=0.3)
        engine.schedule_at(5.0, lambda: net.reconcile("timeout"))
        engine.run()
        assert net.last_report.consistent

    def test_too_short_window_false_alarms(self):
        """Quiesce far below the drain time → stale credit arrays."""
        engine = Engine()
        # Latency 30s but window only 0.2s: replies fire while mail from
        # slower-request peers is still in flight.
        net = busy_network(engine, quiesce=0.2, latency=30.0, seed=11)
        engine.schedule_at(5.0, lambda: net.reconcile("timeout"))
        engine.run()
        assert net.last_report is not None
        assert not net.last_report.consistent
        # Honest ISPs get flagged: the false-alarm cost of a bad window.
        assert net.last_report.flagged_isps()

    def test_value_conserved_even_when_inconsistent(self):
        """False alarms corrupt the *audit*, never the money."""
        engine = Engine()
        net = busy_network(engine, quiesce=0.2, latency=30.0, seed=11)
        engine.schedule_at(5.0, lambda: net.reconcile("timeout"))
        engine.run()
        assert net.total_value() == net.expected_total_value()
