"""Round-trip tests for the in-flight payload codecs the store persists."""

import pytest

from repro.chaos.snapshot import (
    ChaosSnapshotReply,
    ChaosSnapshotRequest,
    SnapshotAbort,
)
from repro.core.transfer import Letter
from repro.errors import SimulationError
from repro.sim.workload import Address, TrafficKind
from repro.store.wire import decode_send, decode_wire, encode_send, encode_wire


class TestWireRoundTrip:
    def test_letter(self):
        letter = Letter(
            sender=Address(0, 1),
            recipient=Address(2, 3),
            kind=TrafficKind.NORMAL,
            paid=True,
            content=("subject", "body"),
        )
        assert decode_wire(encode_wire(letter)) == letter

    def test_letter_without_content(self):
        letter = Letter(
            sender=Address(1, 0),
            recipient=Address(0, 2),
            kind=TrafficKind.SPAM,
            paid=False,
            content=None,
        )
        assert decode_wire(encode_wire(letter)) == letter

    def test_snapshot_request(self):
        message = ChaosSnapshotRequest(token=4, quiesce=1.5)
        assert decode_wire(encode_wire(message)) == message

    def test_snapshot_reply(self):
        message = ChaosSnapshotReply(
            token=2, isp_id=1, credit={0: 3, 2: -3}
        )
        assert decode_wire(encode_wire(message)) == message

    def test_snapshot_abort(self):
        message = SnapshotAbort(token=9)
        assert decode_wire(encode_wire(message)) == message

    def test_unsupported_payload_type_raises(self):
        with pytest.raises(SimulationError, match="cannot persist"):
            encode_wire(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(SimulationError, match="unknown wire payload"):
            decode_wire({"t": "mystery"})

    def test_malformed_blob_raises(self):
        with pytest.raises(SimulationError, match="malformed wire payload"):
            decode_wire({"t": "letter", "sender": [0]})


class TestSendRoundTrip:
    def test_deferred_send(self):
        payload = (
            Address(0, 1),
            Address(1, 2),
            TrafficKind.NORMAL,
            ("hello",),
        )
        assert decode_send(encode_send(payload)) == payload

    def test_deferred_send_without_content(self):
        payload = (Address(2, 0), Address(0, 0), TrafficKind.SPAM, None)
        assert decode_send(encode_send(payload)) == payload

    def test_not_a_tuple_raises(self):
        with pytest.raises(SimulationError, match="deferred send"):
            encode_send("not a tuple")

    def test_malformed_blob_raises(self):
        with pytest.raises(SimulationError, match="malformed deferred send"):
            decode_send({"sender": [0, 0]})
