"""Chaos under bounded lag: crashes must not perturb the async drive.

The strongest form of the lockstep-as-oracle contract: kill a shard
worker mid-run *while the drive is asynchronous*, let journal recovery
replay it, and require convergence to the **fault-free lockstep**
manifest — one oracle covering both the crash and the asynchrony. The
streaming verifier must ride through the replayed reports via dup-drop
(zero faults), the invariant monitors must stay green (conservation,
anti-symmetry, non-negative balances and pools), and the recovery must
be visible only in the restart counters. Inline kills are deterministic
and traced; one spawn test SIGKILLs a real process under lag.
"""

import pytest

from repro.cluster import ClusterConfig, run_cluster, smoke_scenario

SEED = 13


@pytest.fixture(scope="module")
def fault_free_lockstep():
    return run_cluster(
        ClusterConfig(scenario=smoke_scenario(SEED), n_shards=3,
                      mode="inline")
    )


def assert_monitors_green(result):
    """The invariant monitors the chaos campaign watches."""
    assert result.conserved and result.all_consistent
    for isp in result.accounting["isps"].values():
        assert isp["pool"] >= 0
        assert all(balance >= 0 for _, _, balance in isp["users"])
    summary = result.report["reconcile"]
    assert summary["counters"]["faults"] == 0
    assert summary["faults"] == []
    # The crash replays whole cut reports; the verifier must absorb
    # them as duplicates, not verification input.
    assert summary["windows_closed"] == len(result.rounds)


class TestInlineChaos:
    @pytest.mark.parametrize(
        "kill_shard,kill_cycle,lag",
        [(0, 0, 2), (1, 5, 3), (1, 24, 2), (2, 47, 3)],
    )
    def test_kill_under_lag_converges_to_fault_free_lockstep(
        self, fault_free_lockstep, tmp_path, kill_shard, kill_cycle, lag
    ):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(SEED),
                n_shards=3,
                mode="inline",
                journal_dir=str(tmp_path),
                kill_shard=kill_shard,
                kill_cycle=kill_cycle,
                lag=lag,
            )
        )
        assert result.report["restarts"][kill_shard] == 1
        assert result.report["shards"][str(kill_shard)]["restored"]
        assert (result.manifest.to_json()
                == fault_free_lockstep.manifest.to_json())
        assert result.rounds == fault_free_lockstep.rounds
        assert_monitors_green(result)

    def test_journaling_alone_does_not_perturb_async(
        self, fault_free_lockstep, tmp_path
    ):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(SEED), n_shards=3, mode="inline",
                journal_dir=str(tmp_path), lag=2,
            )
        )
        assert result.report["restarts"] == [0, 0, 0]
        assert (result.manifest.to_json()
                == fault_free_lockstep.manifest.to_json())
        assert_monitors_green(result)

    def test_kill_without_journal_is_fatal_under_lag(self):
        with pytest.raises(ValueError, match="journal_dir"):
            run_cluster(
                ClusterConfig(
                    scenario=smoke_scenario(SEED), n_shards=2,
                    mode="inline", kill_shard=0, kill_cycle=5, lag=2,
                )
            )


class TestSpawnChaos:
    def test_sigkill_under_lag_detected_and_recovered(
        self, fault_free_lockstep, tmp_path
    ):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(SEED),
                n_shards=3,
                mode="spawn",
                journal_dir=str(tmp_path),
                kill_shard=0,
                kill_cycle=12,
                lag=2,
            )
        )
        assert result.report["restarts"][0] >= 1
        assert (result.manifest.to_json()
                == fault_free_lockstep.manifest.to_json())
        assert_monitors_green(result)
