"""Chaos campaign tests: fault injection, differential recovery, and
bit-reproducible reports.

The headline is the differential test: the *same* workload run
fault-free and run under heavy faults plus an ISP crash/restart must end
with identical accounting state (SHA-256 digest over every balance,
credit counter, and pool). Recovery is not merely "no invariant broke" —
it converges to the exact state the failure-free execution reaches.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.chaos import (
    DEFAULT_SPEC,
    ChaosDeployment,
    CrashEvent,
    FaultSpec,
    FaultyNetwork,
    NO_FAULTS,
    format_report,
    load_spec,
    run_campaign,
)
from repro.core import ZmailConfig
from repro.errors import SimulationError
from repro.sim import Engine, LinkSpec, SeededStreams
from repro.sim.rng import derive_seed
from repro.sim.workload import NormalUserWorkload


def load_bench_digest():
    """Import accounting_digest from the macro benchmark (satellite 2
    requires reusing the benchmark's digest, not a reimplementation)."""
    path = pathlib.Path(__file__).resolve().parent.parent / (
        "benchmarks/bench_macro_scale.py"
    )
    spec = importlib.util.spec_from_file_location("bench_macro_scale", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.accounting_digest


class TestFaultyNetwork:
    def make_net(self, faults, seed=0):
        engine = Engine()
        net = FaultyNetwork(
            engine,
            SeededStreams(seed),
            default_link=LinkSpec(base_latency=0.1),
            default_faults=faults,
        )
        received = []

        class Sink:
            def on_message(self, src, payload):
                received.append(payload)

        net.register("a", Sink())
        net.register("b", Sink())
        return engine, net, received

    def test_no_faults_delivers_everything(self):
        engine, net, received = self.make_net(NO_FAULTS)
        for i in range(50):
            net.send("a", "b", i)
        engine.run()
        assert received == list(range(50))
        assert net.faults_dropped == 0
        assert net.faults_duplicated == 0
        assert net.faults_reordered == 0

    def test_drop_rate_loses_messages(self):
        engine, net, received = self.make_net(FaultSpec(drop_rate=0.5), seed=3)
        for i in range(200):
            net.send("a", "b", i)
        engine.run()
        assert net.faults_dropped > 0
        assert len(received) == 200 - net.faults_dropped
        # Survivors keep FIFO order: drops thin the stream, never shuffle it.
        assert received == sorted(received)

    def test_duplicate_rate_duplicates_messages(self):
        engine, net, received = self.make_net(
            FaultSpec(duplicate_rate=0.5), seed=4
        )
        for i in range(100):
            net.send("a", "b", i)
        engine.run()
        assert net.faults_duplicated > 0
        assert len(received) == 100 + net.faults_duplicated

    def test_reorder_rate_shuffles_delivery(self):
        engine, net, received = self.make_net(
            FaultSpec(reorder_rate=0.5, reorder_delay=5.0), seed=5
        )
        for i in range(100):
            net.send("a", "b", i)
        engine.run()
        assert net.faults_reordered > 0
        assert sorted(received) == list(range(100))
        assert received != list(range(100))

    def test_down_node_blackholes_traffic_both_directions(self):
        engine, net, received = self.make_net(NO_FAULTS)
        net.set_down("b")
        net.send("a", "b", "to-dead")
        net.send("b", "a", "from-dead")
        engine.run()
        assert received == []
        assert net.dropped_down == 2
        net.set_up("b")
        net.send("a", "b", "alive")
        engine.run()
        assert received == ["alive"]

    def test_down_node_drops_in_flight_messages(self):
        engine, net, received = self.make_net(NO_FAULTS)
        net.send("a", "b", "in-flight")  # latency 0.1: crashes at 0.05
        engine.schedule_at(0.05, lambda: net.set_down("b"))
        engine.run()
        assert received == []
        assert net.dropped_down == 1

    def test_fault_streams_are_independent_per_fault(self):
        """Changing the duplicate rate must not perturb which messages
        get dropped — each fault type draws from its own stream."""

        def dropped_set(duplicate_rate):
            engine, net, received = self.make_net(
                FaultSpec(drop_rate=0.3, duplicate_rate=duplicate_rate),
                seed=9,
            )
            for i in range(100):
                net.send("a", "b", i)
            engine.run()
            return set(range(100)) - set(received)

        assert dropped_set(0.0) == dropped_set(0.9)

    def test_fault_spec_validation(self):
        with pytest.raises(SimulationError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(SimulationError):
            FaultSpec(drop_rate=-0.1)
        with pytest.raises(SimulationError):
            FaultSpec(reorder_rate=0.5, reorder_delay=-1.0)
        assert not NO_FAULTS.active
        assert FaultSpec(drop_rate=0.1).active


class TestDifferentialRecovery:
    """Satellite 2: faults + crash/recovery converge to the exact
    accounting state of the fault-free run."""

    # Generous limits so no send is ever refused for economic reasons:
    # the letter sets of the two runs are then identical, and final
    # balances depend only on *which* letters existed, not on timing.
    CONFIG = ZmailConfig(
        default_user_balance=100_000,
        default_daily_limit=1_000_000,
        auto_topup_amount=0,
    )

    def run_workload(self, *, faults, crashes=(), seed=21, duration=200.0):
        deployment = ChaosDeployment(
            n_isps=3,
            users_per_isp=4,
            seed=seed,
            config=self.CONFIG,
            faults=faults,
            monitor_interval=5.0,
        )
        for crash in crashes:
            deployment.schedule_crash(crash)
        workload = NormalUserWorkload(
            n_isps=3,
            users_per_isp=4,
            rate_per_day=30_000.0,
            streams=SeededStreams(derive_seed(seed, "diff-workload")),
        )
        converged = deployment.run(
            workload.generate(duration), until=duration, drain_window=3_000.0
        )
        assert converged, "deployment failed to drain"
        return deployment

    def test_faults_and_crash_recovery_reach_fault_free_state(self):
        digest = load_bench_digest()
        clean = self.run_workload(faults=NO_FAULTS)
        chaotic = self.run_workload(
            faults=FaultSpec(drop_rate=0.25, duplicate_rate=0.2,
                             reorder_rate=0.25, reorder_delay=2.0),
            crashes=[
                CrashEvent(node="isp1", at=60.0, down_for=30.0),
                CrashEvent(node="bank", at=120.0, down_for=20.0),
            ],
        )
        assert chaotic.crash_controller.restarts == 2
        assert chaotic.net.faults_dropped > 0
        assert digest(clean.network) == digest(chaotic.network)
        assert clean.monitor.green and chaotic.monitor.green

    def test_digest_actually_discriminates(self):
        """Guard against a vacuous differential: different workload seeds
        must produce different digests."""
        digest = load_bench_digest()
        one = self.run_workload(faults=NO_FAULTS, seed=21, duration=100.0)
        other = self.run_workload(faults=NO_FAULTS, seed=22, duration=100.0)
        assert digest(one.network) != digest(other.network)


class TestCampaign:
    def test_default_campaign_passes_and_is_bit_reproducible(self):
        first = run_campaign(DEFAULT_SPEC, seed=7)
        second = run_campaign(DEFAULT_SPEC, seed=7)
        assert first["passed"]
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert format_report(first) == format_report(second)

    def test_different_seed_different_report(self):
        base = run_campaign(DEFAULT_SPEC, seed=7)
        other = run_campaign(DEFAULT_SPEC, seed=99)
        assert other["passed"]
        digests = {row["cell"]: row["digest"] for row in base["cells"]}
        other_digests = {row["cell"]: row["digest"] for row in other["cells"]}
        assert digests != other_digests

    def test_crashy_cell_recovers_with_monitors_green(self):
        """Acceptance criterion: ISP crash + restart + dup/reorder over
        reliable links ends with all monitors green."""
        report = run_campaign(DEFAULT_SPEC, seed=7)
        crashy = next(r for r in report["cells"] if r["cell"] == "crashy")
        assert crashy["passed"]
        assert crashy["crashes"] == 2
        assert crashy["restarts"] == 2
        assert crashy["violations"] == 0
        assert crashy["first_violation"] is None

    def test_report_table_mentions_every_cell(self):
        report = run_campaign(DEFAULT_SPEC, seed=7)
        table = format_report(report)
        for cell in DEFAULT_SPEC["cells"]:
            assert cell["name"] in table
        assert "PASS" in table

    def test_load_spec_json_and_yaml(self, tmp_path):
        spec = dict(DEFAULT_SPEC)
        json_path = tmp_path / "spec.json"
        json_path.write_text(json.dumps(spec))
        assert load_spec(json_path)["cells"] == DEFAULT_SPEC["cells"]

        yaml = pytest.importorskip("yaml")
        yaml_path = tmp_path / "spec.yaml"
        yaml_path.write_text(yaml.safe_dump(spec))
        assert load_spec(yaml_path)["cells"] == DEFAULT_SPEC["cells"]

    def test_load_spec_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json: [nor yaml")
        with pytest.raises(SimulationError):
            load_spec(bad)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"name": "x", "seed": 1}))
        with pytest.raises(SimulationError, match="cell"):
            load_spec(empty)


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_chaos_cli_stdout_is_byte_identical_across_runs(self, capsys):
        code1, out1 = self.run_cli(["chaos", "--seed", "7"], capsys)
        code2, out2 = self.run_cli(["chaos", "--seed", "7"], capsys)
        assert code1 == 0 and code2 == 0
        assert out1 == out2
        assert "PASS" in out1

    def test_chaos_cli_json_output(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code, out = self.run_cli(
            ["chaos", "--seed", "7", "--json", "--out", str(out_path)],
            capsys,
        )
        assert code == 0
        parsed = json.loads(out)
        assert parsed["passed"]
        assert json.loads(out_path.read_text()) == parsed
