"""Tests for the §2.1 legal-approach models."""

import pytest

from repro.baselines.legal import (
    SOPHOS_OFFSHORE_SHARE_2004,
    JurisdictionModel,
    RegistryModel,
)


class TestJurisdictionModel:
    def test_initial_shares_match_sophos(self):
        model = JurisdictionModel()
        assert model.offshore_share == pytest.approx(
            SOPHOS_OFFSHORE_SHARE_2004, abs=0.001
        )

    def test_enforcement_drives_offshore_migration(self):
        model = JurisdictionModel()
        model.run(10)
        assert model.offshore_share > 0.95
        assert model.onshore_volume < 0.05 * model.history[0][0]

    def test_total_volume_barely_drops(self):
        """The paper's point: laws relocate spam, they don't remove it."""
        model = JurisdictionModel()
        model.run(10)
        assert model.volume_reduction() < 0.10

    def test_full_exit_no_refill_does_reduce(self):
        """Sanity: with no relocation and no refill, enforcement works —
        the model can express both worlds."""
        model = JurisdictionModel(relocation_fraction=0.0, demand_refill=0.0)
        model.run(10)
        assert model.volume_reduction() > 0.3

    def test_history_recorded(self):
        model = JurisdictionModel()
        model.run(3)
        assert len(model.history) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            JurisdictionModel(enforcement_pressure=1.5)


class TestRegistryModel:
    def test_unleaked_registry_helps(self):
        model = RegistryModel()
        spam = model.spam_to_registered_user(baseline=100.0, leaked=False)
        assert spam < 100.0  # lawful senders suppress their share

    def test_leaked_registry_hurts(self):
        model = RegistryModel()
        spam = model.spam_to_registered_user(baseline=100.0, leaked=True)
        assert spam > 100.0  # verified-live addresses attract more spam

    def test_expected_change_positive_at_ftc_assumptions(self):
        """With realistic leak risk the registry increases expected spam —
        the FTC's 2004 conclusion."""
        model = RegistryModel()
        assert model.expected_change(baseline=100.0) > 0.0

    def test_registry_could_work_in_a_lawful_world(self):
        """If most bulk mail were lawful and leaks rare, it would help;
        the model recovers that counterfactual too."""
        model = RegistryModel(lawful_sender_share=0.9, leak_probability=0.05)
        assert model.expected_change(baseline=100.0) < 0.0
