"""Tests for zombie containment and detection (§4.1, §5)."""

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.transfer import SendStatus
from repro.core.zombie import ZombieMonitor
from repro.sim import HOUR, SeededStreams
from repro.sim.workload import Address, ZombieBurstWorkload


def make_net(limit=50):
    config = ZmailConfig(
        default_daily_limit=limit,
        default_user_balance=10_000,
        auto_topup_amount=0,
    )
    return ZmailNetwork(n_isps=2, users_per_isp=5, config=config, seed=4)


class TestContainment:
    def test_zombie_blocked_at_limit(self):
        net = make_net(limit=20)
        zombie = Address(0, 1)
        statuses = [
            net.send(zombie, Address(1, i % 5)).status for i in range(100)
        ]
        sent = sum(1 for s in statuses if s is SendStatus.SENT_PAID)
        blocked = sum(1 for s in statuses if s is SendStatus.BLOCKED_LIMIT)
        assert sent == 20
        assert blocked == 80

    def test_liability_bounded_by_limit(self):
        """§5: the user loses at most `limit` e-pennies per day."""
        net = make_net(limit=20)
        zombie = Address(0, 1)
        before = net.isps[0].ledger.user(1).balance
        for i in range(500):
            net.send(zombie, Address(1, i % 5))
        assert before - net.isps[0].ledger.user(1).balance == 20

    def test_limit_resets_next_day(self):
        net = make_net(limit=20)
        zombie = Address(0, 1)
        for i in range(30):
            net.send(zombie, Address(1, i % 5))
        net.advance_day_to(1)
        receipt = net.send(zombie, Address(1, 0))
        assert receipt.status is SendStatus.SENT_PAID

    def test_normal_users_unaffected(self):
        net = make_net(limit=50)
        for day in range(3):
            for i in range(10):
                receipt = net.send(Address(0, 2), Address(1, i % 5))
                assert receipt.status is SendStatus.SENT_PAID
            net.advance_day_to(day + 1)


class TestDetection:
    def run_outbreak(self, limit=30):
        net = make_net(limit=limit)
        monitor = ZombieMonitor(net)
        zombie = Address(0, 3)
        workload = ZombieBurstWorkload(
            zombie=zombie, n_isps=2, users_per_isp=5,
            rate_per_hour=100.0, start=0.0, end=6 * HOUR,
            streams=SeededStreams(9),
        )
        net.run_workload(workload.generate())
        return net, monitor, zombie

    def test_zombie_detected(self):
        net, monitor, zombie = self.run_outbreak()
        fresh = monitor.poll()
        assert any(d.address == zombie for d in fresh)
        assert monitor.detected(zombie)

    def test_detection_reports_limit_bound(self):
        net, monitor, zombie = self.run_outbreak(limit=30)
        monitor.poll()
        detection = next(d for d in monitor.detections if d.address == zombie)
        assert detection.liability_epennies <= 30

    def test_poll_reports_each_zombie_once(self):
        net, monitor, zombie = self.run_outbreak()
        first = monitor.poll()
        second = monitor.poll()
        assert len(first) == 1
        assert second == []

    def test_innocent_users_not_flagged(self):
        net, monitor, zombie = self.run_outbreak()
        monitor.poll()
        flagged = {d.address for d in monitor.detections}
        assert flagged == {zombie}

    def test_total_bounded_liability(self):
        net, monitor, _ = self.run_outbreak(limit=30)
        monitor.poll()
        assert monitor.total_bounded_liability() <= 30 * len(monitor.detections)


class TestWarningMessage:
    def test_warning_contents(self):
        from repro.core.zombie import ZombieDetection, warning_message

        detection = ZombieDetection(
            address=Address(2, 7), messages_before_block=40, daily_limit=40
        )
        message = warning_message(detection)
        assert message.recipient == "user7@isp2.example"
        assert message.sender == "postmaster@isp2.example"
        assert "daily limit of 40" in message.body
        assert "virus" in message.body

    def test_warning_serializes(self):
        from repro.core.zombie import ZombieDetection, warning_message
        from repro.smtp.message import MailMessage

        detection = ZombieDetection(
            address=Address(0, 1), messages_before_block=10, daily_limit=10
        )
        wire = warning_message(detection).serialize()
        parsed = MailMessage.parse(wire)
        assert parsed.subject.startswith("Warning")
