"""Tests for the NNC nonce source and replay registry."""

import pytest

from repro.crypto.nonce import NonceRegistry, NonceSource
from repro.errors import ReplayDetected


class TestNonceSource:
    def test_nonrepetition(self):
        """The paper's hard requirement: nonces never repeat."""
        source = NonceSource(seed=1)
        nonces = [source.next() for _ in range(5000)]
        assert len(set(nonces)) == len(nonces)

    def test_determinism_per_seed(self):
        a = NonceSource(seed=1)
        b = NonceSource(seed=1)
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_unpredictability_across_seeds(self):
        a = NonceSource(seed=1)
        b = NonceSource(seed=2)
        assert [a.next() for _ in range(10)] != [b.next() for _ in range(10)]

    def test_owner_separates_streams(self):
        a = NonceSource(seed=1, owner="isp0")
        b = NonceSource(seed=1, owner="isp1")
        assert a.next() != b.next()

    def test_64_bit_range(self):
        source = NonceSource(seed=3)
        for _ in range(100):
            assert 0 <= source.next() < 2**64

    def test_issued_count(self):
        source = NonceSource(seed=4)
        for _ in range(7):
            source.next()
        assert source.issued_count == 7


class TestNonceRegistry:
    def test_replay_detected(self):
        registry = NonceRegistry()
        registry.check_and_record(42)
        with pytest.raises(ReplayDetected):
            registry.check_and_record(42)

    def test_distinct_nonces_pass(self):
        registry = NonceRegistry()
        for n in range(100):
            registry.check_and_record(n)
        assert len(registry) == 100

    def test_has_seen(self):
        registry = NonceRegistry()
        registry.check_and_record(7)
        assert registry.has_seen(7)
        assert not registry.has_seen(8)

    def test_window_eviction(self):
        registry = NonceRegistry(max_remembered=3)
        for n in (1, 2, 3, 4):
            registry.check_and_record(n)
        assert not registry.has_seen(1)  # evicted
        assert registry.has_seen(4)
        registry.check_and_record(1)  # allowed again post-eviction
        assert len(registry) == 3

    def test_end_to_end_with_source(self):
        """A source's stream passes a registry; replaying any one fails."""
        source = NonceSource(seed=9)
        registry = NonceRegistry()
        nonces = [source.next() for _ in range(50)]
        for n in nonces:
            registry.check_and_record(n)
        with pytest.raises(ReplayDetected):
            registry.check_and_record(nonces[25])
