"""Randomized model-checking of the paper's §4 formal specification.

These tests run the transliterated spec under the randomized weakly-fair
scheduler with invariants checked after every step — value conservation,
non-negativity, and credit anti-symmetry at quiescent points — and verify
that the bank's §4.4 verification flags exactly the injected cheaters.
"""

import pytest

from repro.apn import (
    CheatMode,
    InvariantViolation,
    ZmailSpecConfig,
    build_zmail_protocol,
    total_value,
)

KEY_BITS = 128  # small keys keep the model checker fast


def run_protocol(config, steps=3000):
    protocol = build_zmail_protocol(config)
    executed = protocol.run(steps)
    return protocol, executed


class TestHonestExecution:
    def test_invariants_hold_over_long_run(self):
        config = ZmailSpecConfig(n=3, m=3, seed=7, key_bits=KEY_BITS)
        protocol, executed = run_protocol(config, 3000)
        assert executed == 3000  # never deadlocks

    def test_value_conservation_exact(self):
        config = ZmailSpecConfig(n=3, m=2, seed=11, key_bits=KEY_BITS)
        protocol = build_zmail_protocol(config)
        initial = total_value(protocol.state, config)
        protocol.run(2000)
        assert total_value(protocol.state, config) == initial

    def test_reconciliation_rounds_complete(self):
        config = ZmailSpecConfig(n=3, m=3, seed=7, key_bits=KEY_BITS)
        protocol, _ = run_protocol(config, 3000)
        assert protocol.completed_rounds() >= 1

    def test_honest_isps_never_flagged(self):
        config = ZmailSpecConfig(n=4, m=2, seed=13, key_bits=KEY_BITS)
        protocol, _ = run_protocol(config, 4000)
        assert protocol.completed_rounds() >= 1
        assert protocol.flagged_pairs() == []

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_many_seeds_no_violation(self, seed):
        config = ZmailSpecConfig(n=3, m=2, seed=seed, key_bits=KEY_BITS)
        run_protocol(config, 1500)

    def test_emails_actually_flow(self):
        config = ZmailSpecConfig(n=3, m=3, seed=7, key_bits=KEY_BITS)
        protocol, _ = run_protocol(config, 2000)
        delivered = sum(
            isp["delivered"] for isp in protocol.isps
        )
        assert delivered > 100

    def test_bank_exchanges_occur(self):
        """Buy/sell actions fire across a long enough run."""
        config = ZmailSpecConfig(
            n=2, m=3, seed=3, key_bits=KEY_BITS,
            initial_avail=60, minavail=50, maxavail=80,
        )
        protocol, _ = run_protocol(config, 4000)
        counts = protocol.scheduler.fire_counts()
        buys = sum(v for k, v in counts.items() if k.endswith(".buy"))
        sells = sum(v for k, v in counts.items() if k.endswith(".sell"))
        assert buys + sells > 0


class TestNonCompliantInterop:
    def test_mixed_network_runs_clean(self):
        config = ZmailSpecConfig(
            n=4, m=2, seed=21, key_bits=KEY_BITS,
            compliant=(True, True, False, True),
        )
        protocol, executed = run_protocol(config, 3000)
        assert executed == 3000
        assert protocol.flagged_pairs() == []

    def test_noncompliant_mail_delivered_without_payment(self):
        config = ZmailSpecConfig(
            n=2, m=2, seed=5, key_bits=KEY_BITS, compliant=(True, False),
        )
        protocol = build_zmail_protocol(config)
        initial = total_value(protocol.state, config)
        protocol.run(1500)
        compliant_isp = protocol.isps[0]
        assert compliant_isp["delivered"] > 0
        assert total_value(protocol.state, config) == initial


class TestCheaterDetection:
    def test_inflating_cheater_flagged(self):
        config = ZmailSpecConfig(
            n=3, m=3, seed=11, key_bits=KEY_BITS,
            cheaters={1: CheatMode.INFLATE_SENT},
        )
        protocol, _ = run_protocol(config, 6000)
        assert protocol.completed_rounds() >= 1
        flagged = {isp for pair in protocol.flagged_pairs() for isp in pair}
        assert 1 in flagged

    def test_skip_debit_cheater_flagged(self):
        config = ZmailSpecConfig(
            n=3, m=3, seed=17, key_bits=KEY_BITS,
            cheaters={2: CheatMode.SKIP_RECEIVE_DEBIT},
        )
        protocol, _ = run_protocol(config, 6000)
        flagged = {isp for pair in protocol.flagged_pairs() for isp in pair}
        assert protocol.completed_rounds() >= 1
        assert 2 in flagged

    def test_cheater_implicated_in_multiple_pairs(self):
        """A cheater shows up against several honest peers — the basis of
        the suspect-ranking inference."""
        config = ZmailSpecConfig(
            n=4, m=3, seed=23, key_bits=KEY_BITS,
            cheaters={0: CheatMode.INFLATE_SENT},
        )
        protocol, _ = run_protocol(config, 8000)
        pair_peers = {
            tuple(sorted(pair)) for pair in protocol.flagged_pairs()
        }
        implicating = [pair for pair in pair_peers if 0 in pair]
        assert len(implicating) >= 2


class TestSpecConfig:
    def test_compliance_defaults_all_true(self):
        assert ZmailSpecConfig(n=3).compliance() == (True, True, True)

    def test_compliance_length_checked(self):
        with pytest.raises(ValueError, match="length"):
            ZmailSpecConfig(n=3, compliant=(True,)).compliance()


class TestLimitInSpec:
    def test_sent_never_exceeds_limit(self):
        """The §4.1 guard in the formal spec: sent[u] <= limit[u] always."""
        config = ZmailSpecConfig(n=2, m=3, seed=31, key_bits=KEY_BITS, limit=5)
        protocol = build_zmail_protocol(config)

        def limit_invariant(state):
            for i in range(2):
                isp = state.process(f"isp[{i}]")
                if any(s > 5 for s in isp["sent"]):
                    return False
            return True

        protocol.scheduler.add_invariant("limit", limit_invariant)
        protocol.run(2000)  # raises on violation
