"""Tests for the discrete-event engine: ordering, cancellation, periodics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(3.0, lambda: fired.append(3))
        engine.run()
        assert fired == [1, 3, 5]

    def test_ties_fire_in_insertion_order(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule_at(1.0, lambda i=i: fired.append(i))
        engine.run()
        assert fired == list(range(10))

    def test_priority_breaks_ties(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("late"), priority=5)
        engine.schedule_at(1.0, lambda: fired.append("early"), priority=-5)
        engine.run()
        assert fired == ["early", "late"]

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.schedule_at(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError, match="cannot schedule"):
            engine.schedule_at(5.0, lambda: None)

    def test_schedule_after(self):
        engine = Engine()
        seen = []
        engine.schedule_at(10.0, lambda: engine.schedule_after(
            5.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15.0]

    def test_schedule_after_negative_delay_rejected(self):
        with pytest.raises(SimulationError, match="negative delay"):
            Engine().schedule_after(-1.0, lambda: None)

    def test_clock_advances_with_events(self):
        engine = Engine()
        times = []
        engine.schedule_at(2.0, lambda: times.append(engine.now))
        engine.schedule_at(7.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.0, 7.0]
        assert engine.now == 7.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None)
        handle = engine.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert engine.pending == 1


class TestRunBounds:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0  # clock tiled to the bound

    def test_run_until_includes_boundary_event(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run(until=5.0)
        assert fired == [5]

    def test_sequential_run_until_windows(self):
        engine = Engine()
        fired = []
        for t in (1.0, 4.0, 9.0):
            engine.schedule_at(t, lambda t=t: fired.append(t))
        engine.run(until=2.0)
        engine.run(until=5.0)
        engine.run()
        assert fired == [1.0, 4.0, 9.0]

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule_after(1.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)

    def test_stop_requests_early_return(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule_at(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [1]

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_events_processed_counter(self):
        engine = Engine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        engine.run()
        assert engine.events_processed == 5


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        engine = Engine()
        fired = []
        engine.schedule_every(2.0, lambda: fired.append(engine.now))
        engine.run(until=9.0)
        assert fired == [2.0, 4.0, 6.0, 8.0]

    def test_schedule_every_cancel_stops_chain(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_every(2.0, lambda: fired.append(engine.now))
        engine.schedule_at(5.0, handle.cancel)
        engine.run(until=20.0)
        assert fired == [2.0, 4.0]

    def test_schedule_every_custom_start(self):
        engine = Engine()
        fired = []
        engine.schedule_every(10.0, lambda: fired.append(engine.now), start=1.0)
        engine.run(until=25.0)
        assert fired == [1.0, 11.0, 21.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError, match="interval"):
            Engine().schedule_every(0.0, lambda: None)
