"""Tests for the alternating-bit protocol on the AP engine."""

import pytest

from repro.apn.alternating_bit import run_alternating_bit


class TestAlternatingBit:
    def test_lossless_run_delivers_everything(self):
        result = run_alternating_bit(n_items=10, max_losses=0, seed=1)
        assert result.correct
        assert result.delivered_items == list(range(10))
        assert result.retransmissions == 0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_lossy_runs_still_exactly_once_in_order(self, seed):
        result = run_alternating_bit(n_items=12, max_losses=10, seed=seed)
        assert result.correct, (
            f"seed {seed}: delivered {result.delivered_items}"
        )

    def test_losses_force_retransmissions(self):
        """Across seeds, injected losses are recovered by retransmission."""
        total_losses = total_rexmit = 0
        for seed in range(10):
            result = run_alternating_bit(n_items=8, max_losses=6, seed=seed)
            assert result.correct
            total_losses += result.losses_injected
            total_rexmit += result.retransmissions
        assert total_losses > 0
        assert total_rexmit >= total_losses  # each loss needs >= 1 resend

    def test_single_item(self):
        result = run_alternating_bit(n_items=1, max_losses=3, seed=2)
        assert result.delivered_items == [0]

    def test_zero_items(self):
        result = run_alternating_bit(n_items=0, max_losses=3, seed=2)
        assert result.delivered_items == []
        assert result.steps == 0

    def test_run_terminates_quiescent(self):
        """After completion no action is enabled (true quiescence)."""
        from repro.apn.alternating_bit import build_alternating_bit

        scheduler, sender, receiver = build_alternating_bit(
            n_items=5, max_losses=4, seed=3
        )
        scheduler.run(5000)
        assert scheduler.enabled_actions() == []
        assert receiver["delivered"] == list(range(5))
