"""Unit tests driving the snapshot coordinators directly (no network).

The integration suites exercise coordinators through ZmailNetwork; these
tests pin down coordinator-level behaviour in isolation with hand-rolled
control-message plumbing, including degenerate federations (one ISP, no
peers) and out-of-order marker arrivals.
"""

from repro.core.bank import Bank
from repro.core.isp import CompliantISP
from repro.core.snapshot import (
    DirectSnapshotCoordinator,
    MarkerSnapshotCoordinator,
    SnapshotMarker,
    SnapshotRequest,
    TimeoutSnapshotCoordinator,
)
from repro.core.transfer import Letter
from repro.sim.workload import Address, TrafficKind


def make_parties(n=3):
    bank = Bank()
    isps = {}
    directory = {i: True for i in range(n)}
    for i in range(n):
        bank.register_isp(i, initial_account=1000)
        isp = CompliantISP(i, 3)
        isp.update_compliance(directory)
        isps[i] = isp
    return bank, isps


def cross_traffic(isps, pairs):
    """Send paid mail synchronously between ISP pairs."""
    for src, dst, count in pairs:
        for k in range(count):
            receipt = isps[src].submit(0, Address(dst, k % 3), TrafficKind.NORMAL)
            assert receipt.letter is not None
            isps[dst].deliver(receipt.letter)


class TestDirectCoordinator:
    def test_round_trip(self):
        bank, isps = make_parties()
        cross_traffic(isps, [(0, 1, 4), (1, 0, 4), (2, 0, 2)])
        report = DirectSnapshotCoordinator(bank, isps).run()
        assert report.consistent
        assert report.isps_polled == 3

    def test_credits_reset_after_round(self):
        bank, isps = make_parties()
        cross_traffic(isps, [(0, 1, 4)])
        DirectSnapshotCoordinator(bank, isps).run()
        assert all(not isp.credit for isp in isps.values())

    def test_single_isp_federation(self):
        bank, isps = make_parties(n=1)
        report = DirectSnapshotCoordinator(bank, isps).run()
        assert report.consistent
        assert report.pairs_checked == 0


class _Loop:
    """Synchronous control-message plumbing between coordinator sides."""

    def __init__(self):
        self.coordinator = None
        self.deferred = []

    def send_control(self, src, dst, payload):
        if isinstance(payload, SnapshotRequest):
            self.coordinator.on_request(dst, payload)
        elif isinstance(payload, SnapshotMarker):
            self.coordinator.on_marker(dst, payload)

    def schedule_after(self, delay, callback):
        self.deferred.append((delay, callback))
        return None

    def fire_all(self):
        pending, self.deferred = self.deferred, []
        for _, callback in pending:
            callback()


class TestTimeoutCoordinatorUnit:
    def test_collects_after_windows_fire(self):
        bank, isps = make_parties()
        cross_traffic(isps, [(0, 1, 3), (1, 2, 5)])
        loop = _Loop()
        done = []
        coordinator = TimeoutSnapshotCoordinator(
            bank, isps, quiesce_seconds=10.0,
            send_control=loop.send_control,
            schedule_after=loop.schedule_after,
            on_complete=done.append,
        )
        loop.coordinator = coordinator
        coordinator.start()
        assert all(isp.snapshot_open for isp in isps.values())
        assert not done  # windows armed, nothing collected yet
        loop.fire_all()
        assert len(done) == 1
        assert done[0].consistent
        assert all(isp.cansend for isp in isps.values())

    def test_buffered_receipts_routed_on_resume(self):
        bank, isps = make_parties()
        loop = _Loop()
        routed = []
        coordinator = TimeoutSnapshotCoordinator(
            bank, isps, quiesce_seconds=10.0,
            send_control=loop.send_control,
            schedule_after=loop.schedule_after,
            route_receipts=lambda receipts: routed.extend(receipts),
        )
        loop.coordinator = coordinator
        coordinator.start()
        isps[0].submit(0, Address(1, 0), TrafficKind.NORMAL)  # buffered
        loop.fire_all()
        flushed = [r for r in routed if r.letter is not None]
        assert len(flushed) == 1


class TestMarkerCoordinatorUnit:
    def test_replies_only_after_all_markers(self):
        bank, isps = make_parties()
        loop = _Loop()
        done = []
        coordinator = MarkerSnapshotCoordinator(
            bank, isps,
            send_control=loop.send_control,
            on_complete=done.append,
        )
        loop.coordinator = coordinator
        coordinator.start()  # synchronous plumbing: full cascade completes
        assert len(done) == 1
        assert done[0].consistent

    def test_no_peers_replies_immediately(self):
        bank, isps = make_parties(n=1)
        loop = _Loop()
        done = []
        coordinator = MarkerSnapshotCoordinator(
            bank, isps,
            send_control=loop.send_control,
            on_complete=done.append,
        )
        loop.coordinator = coordinator
        coordinator.start()
        assert len(done) == 1
        assert done[0].isps_polled == 1

    def test_control_message_count(self):
        bank, isps = make_parties(n=4)
        loop = _Loop()
        coordinator = MarkerSnapshotCoordinator(
            bank, isps, send_control=loop.send_control
        )
        loop.coordinator = coordinator
        coordinator.start()
        # 4 requests + 4*3 markers + 4 replies
        assert coordinator.control_messages == 4 + 12 + 4

    def test_overtaking_mail_books_next_period(self):
        """A letter arriving after the peer's marker must not pollute the
        closing period even when delivered mid-round."""
        bank, isps = make_parties(n=2)
        # Manual run: both begin, markers exchanged, then a late letter.
        isps[0].begin_snapshot(0)
        isps[1].begin_snapshot(0)
        isps[1].note_marker(0)
        letter = Letter(Address(0, 0), Address(1, 1), TrafficKind.NORMAL, True)
        isps[1].deliver(letter)  # post-marker: next period
        reply0 = isps[0].snapshot_reply()
        reply1 = isps[1].snapshot_reply()
        isps[0].resume_sending()
        isps[1].resume_sending()
        report = bank.reconcile({0: reply0, 1: reply1})
        assert report.consistent
        assert isps[1].credit == {0: -1}
