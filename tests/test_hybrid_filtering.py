"""Integration tests: content filtering at the non-compliant boundary.

The §5 hybrid deployment — compliant ISPs filter mail from non-compliant
peers but never filter paid mail — exercised end to end with real token
content flowing through letters.
"""

import pytest

from repro.baselines.letter_filter import (
    ContentProvider,
    make_letter_predicate,
    train_default_filter,
)
from repro.core import NonCompliantMailPolicy, ZmailConfig, ZmailNetwork
from repro.core.isp import CompliantISP
from repro.sim.workload import Address, TrafficKind


def build_hybrid(extra_overlap=0.0, evasion=0.0, seed=60, threshold=0.9):
    """2 compliant ISPs with FILTER policy + 1 non-compliant ISP."""
    config = ZmailConfig(noncompliant_policy=NonCompliantMailPolicy.FILTER)
    net = ZmailNetwork(
        n_isps=3, users_per_isp=6, compliant=[True, True, False],
        config=config, seed=seed,
    )
    filt = train_default_filter(
        extra_overlap=extra_overlap, seed=seed, threshold=threshold
    )
    predicate = make_letter_predicate(filt)
    for isp in net.compliant_isps().values():
        isp._spam_filter = predicate
    provider = ContentProvider(
        extra_overlap=extra_overlap, evasion_rate=evasion, seed=seed
    )
    return net, provider


class TestHybridFiltering:
    def test_noncompliant_spam_filtered_out(self):
        net, provider = build_hybrid()
        for i in range(60):
            net.send(
                Address(2, 0), Address(0, i % 6), TrafficKind.SPAM,
                content=provider.spam(),
            )
        isp = net.isps[0]
        assert isp.stats.filtered_out > 50  # nearly all spam caught

    def test_noncompliant_ham_mostly_survives(self):
        net, provider = build_hybrid()
        for i in range(60):
            net.send(
                Address(2, 0), Address(0, i % 6), TrafficKind.NORMAL,
                content=provider.ham(),
            )
        isp = net.isps[0]
        assert isp.stats.received_unpaid > 55

    def test_paid_mail_never_filtered(self):
        """The asymmetry: compliant mail bypasses the filter entirely —
        even if its content looks exactly like spam."""
        net, provider = build_hybrid()
        spammy_content = provider.spam()
        for i in range(20):
            receipt = net.send(
                Address(1, 0), Address(0, i % 6), TrafficKind.NORMAL,
                content=spammy_content,
            )
        isp = net.isps[0]
        assert isp.stats.received_paid == 20
        assert isp.stats.filtered_out == 0

    def test_evasive_spam_leaks_through_filter(self):
        net, provider = build_hybrid(evasion=1.0)
        for i in range(60):
            net.send(
                Address(2, 0), Address(0, i % 6), TrafficKind.SPAM,
                content=provider.spam(),
            )
        isp = net.isps[0]
        leaked = isp.stats.received_unpaid
        assert leaked > 5  # misspelling evasion defeats the boundary filter

    def test_overlapping_vocab_costs_ham(self):
        """False positives appear on hard corpora — the §2.2 cost that
        paid mail never bears."""
        # An aggressive boundary filter (threshold 0.5) on a hard corpus.
        net, provider = build_hybrid(extra_overlap=0.8, seed=61, threshold=0.5)
        lost = 0
        for i in range(400):
            before = net.isps[0].stats.filtered_out
            net.send(
                Address(2, 0), Address(0, i % 6), TrafficKind.NORMAL,
                content=provider.ham(),
            )
            lost += net.isps[0].stats.filtered_out - before
        assert lost >= 1

    def test_contentless_letters_pass(self):
        net, _ = build_hybrid()
        receipt = net.send(Address(2, 0), Address(0, 1), TrafficKind.NORMAL)
        assert net.isps[0].stats.received_unpaid == 1

    def test_conservation_with_content(self):
        net, provider = build_hybrid()
        for i in range(100):
            net.send(
                Address(i % 2, i % 6), Address((i + 1) % 3, (i + 2) % 6),
                TrafficKind.NORMAL, content=provider.ham(),
            )
        assert net.total_value() == net.expected_total_value()

    def test_buffered_content_survives_snapshot(self):
        net, provider = build_hybrid()
        isp = net.isps[0]
        assert isinstance(isp, CompliantISP)
        isp.begin_snapshot(0)
        content = provider.ham()
        receipt = isp.submit(0, Address(1, 1), TrafficKind.NORMAL, content)
        isp.snapshot_reply()
        flushed = isp.resume_sending()
        assert flushed[0].letter.content == content
