"""Tests for checkpoint/restore of deployments."""

import random

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.persistence import FORMAT_VERSION, checkpoint, dumps, loads, restore
from repro.errors import SimulationError
from repro.sim import Address, Engine, LinkSpec, TrafficKind


def busy_network(seed=33, messages=500):
    config = ZmailConfig(default_user_balance=40, auto_topup_amount=10)
    net = ZmailNetwork(
        n_isps=3, users_per_isp=6, compliant=[True, True, True],
        config=config, seed=seed,
    )
    net.fund_user(Address(0, 0), pennies=200, epennies=50)
    rng = random.Random(seed)
    for _ in range(messages):
        net.send(
            Address(rng.randrange(3), rng.randrange(6)),
            Address(rng.randrange(3), rng.randrange(6)),
            TrafficKind.NORMAL,
        )
    return net


class TestRoundTrip:
    def test_total_value_preserved(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        assert restored.total_value() == net.total_value()
        assert restored.expected_total_value() == net.expected_total_value()

    def test_user_purses_preserved(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        for isp_id, isp in net.compliant_isps().items():
            twin = restored.isps[isp_id]
            for user in isp.ledger.users():
                other = twin.ledger.user(user.user_id)
                assert other.balance == user.balance
                assert other.account == user.account
                assert other.lifetime_sent == user.lifetime_sent
                assert other.sent_today == user.sent_today

    def test_credit_arrays_preserved(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        for isp_id, isp in net.compliant_isps().items():
            assert restored.isps[isp_id].credit == isp.credit

    def test_reconciliation_still_consistent_after_restore(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        assert restored.reconcile("direct").consistent

    def test_restored_network_keeps_working(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        for i in range(50):
            restored.send(Address(0, i % 6), Address(1, (i + 1) % 6))
        assert restored.total_value() == restored.expected_total_value()

    def test_bank_seq_preserved(self):
        net = busy_network()
        net.reconcile("direct")
        net.reconcile("direct")
        restored = restore(checkpoint(net))
        assert restored.bank.next_seq == net.bank.next_seq

    def test_json_string_round_trip(self):
        net = busy_network()
        payload = dumps(net, indent=2)
        restored = loads(payload)
        assert restored.total_value() == net.total_value()

    def test_noncompliant_subset_preserved(self):
        net = ZmailNetwork(
            n_isps=3, users_per_isp=4, compliant=[True, False, True], seed=1
        )
        net.send(Address(0, 0), Address(2, 1))
        restored = restore(checkpoint(net))
        assert sorted(restored.compliant_isps()) == [0, 2]
        assert restored.total_value() == net.total_value()


class TestGuards:
    def test_refuses_with_letters_in_flight(self):
        engine = Engine()
        net = ZmailNetwork(
            n_isps=2, users_per_isp=3, seed=2, engine=engine,
            link=LinkSpec(base_latency=10.0),
        )
        net.send(Address(0, 0), Address(1, 0))
        with pytest.raises(SimulationError, match="in flight"):
            checkpoint(net)
        engine.run()
        checkpoint(net)  # fine once drained

    def test_version_checked(self):
        net = busy_network(messages=10)
        state = checkpoint(net)
        state["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(SimulationError, match="version"):
            restore(state)
