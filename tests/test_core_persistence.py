"""Tests for checkpoint/restore of deployments."""

import random

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.persistence import FORMAT_VERSION, checkpoint, dumps, loads, restore
from repro.errors import SimulationError
from repro.sim import Address, Engine, LinkSpec, TrafficKind


def busy_network(seed=33, messages=500):
    config = ZmailConfig(default_user_balance=40, auto_topup_amount=10)
    net = ZmailNetwork(
        n_isps=3, users_per_isp=6, compliant=[True, True, True],
        config=config, seed=seed,
    )
    net.fund_user(Address(0, 0), pennies=200, epennies=50)
    rng = random.Random(seed)
    for _ in range(messages):
        net.send(
            Address(rng.randrange(3), rng.randrange(6)),
            Address(rng.randrange(3), rng.randrange(6)),
            TrafficKind.NORMAL,
        )
    return net


class TestRoundTrip:
    def test_total_value_preserved(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        assert restored.total_value() == net.total_value()
        assert restored.expected_total_value() == net.expected_total_value()

    def test_user_purses_preserved(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        for isp_id, isp in net.compliant_isps().items():
            twin = restored.isps[isp_id]
            for user in isp.ledger.users():
                other = twin.ledger.user(user.user_id)
                assert other.balance == user.balance
                assert other.account == user.account
                assert other.lifetime_sent == user.lifetime_sent
                assert other.sent_today == user.sent_today

    def test_credit_arrays_preserved(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        for isp_id, isp in net.compliant_isps().items():
            assert restored.isps[isp_id].credit == isp.credit

    def test_reconciliation_still_consistent_after_restore(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        assert restored.reconcile("direct").consistent

    def test_restored_network_keeps_working(self):
        net = busy_network()
        restored = restore(checkpoint(net))
        for i in range(50):
            restored.send(Address(0, i % 6), Address(1, (i + 1) % 6))
        assert restored.total_value() == restored.expected_total_value()

    def test_bank_seq_preserved(self):
        net = busy_network()
        net.reconcile("direct")
        net.reconcile("direct")
        restored = restore(checkpoint(net))
        assert restored.bank.next_seq == net.bank.next_seq

    def test_json_string_round_trip(self):
        net = busy_network()
        payload = dumps(net, indent=2)
        restored = loads(payload)
        assert restored.total_value() == net.total_value()

    def test_noncompliant_subset_preserved(self):
        net = ZmailNetwork(
            n_isps=3, users_per_isp=4, compliant=[True, False, True], seed=1
        )
        net.send(Address(0, 0), Address(2, 1))
        restored = restore(checkpoint(net))
        assert sorted(restored.compliant_isps()) == [0, 2]
        assert restored.total_value() == net.total_value()


class TestGuards:
    def test_refuses_with_letters_in_flight(self):
        engine = Engine()
        net = ZmailNetwork(
            n_isps=2, users_per_isp=3, seed=2, engine=engine,
            link=LinkSpec(base_latency=10.0),
        )
        net.send(Address(0, 0), Address(1, 0))
        with pytest.raises(SimulationError, match="in flight"):
            checkpoint(net)
        engine.run()
        checkpoint(net)  # fine once drained

    def test_version_checked(self):
        net = busy_network(messages=10)
        state = checkpoint(net)
        state["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(SimulationError, match="version"):
            restore(state)


class TestMalformedState:
    """A truncated or corrupted blob must fail loudly and descriptively."""

    def test_truncated_json_raises_simulation_error(self):
        net = busy_network(messages=10)
        payload = dumps(net)
        with pytest.raises(SimulationError, match="corrupted checkpoint JSON"):
            loads(payload[: len(payload) // 2])

    def test_garbage_text_raises_simulation_error(self):
        with pytest.raises(SimulationError, match="corrupted checkpoint JSON"):
            loads("{not json at all")

    def test_missing_key_raises_simulation_error_not_keyerror(self):
        net = busy_network(messages=10)
        state = checkpoint(net)
        del state["isps"]
        with pytest.raises(SimulationError, match="malformed checkpoint"):
            restore(state)

    def test_missing_config_field_raises_simulation_error(self):
        net = busy_network(messages=10)
        state = checkpoint(net)
        del state["config"]["minavail"]
        with pytest.raises(SimulationError, match="malformed checkpoint"):
            restore(state)

    def test_wrong_type_raises_simulation_error(self):
        net = busy_network(messages=10)
        state = checkpoint(net)
        state["isps"] = 17
        with pytest.raises(SimulationError, match="malformed checkpoint"):
            restore(state)

    def test_non_dict_state_raises_simulation_error(self):
        with pytest.raises(SimulationError, match="must be a dict"):
            restore(["not", "a", "dict"])

    def test_version_error_stays_specific(self):
        # The version check must not be swallowed into "malformed".
        net = busy_network(messages=5)
        state = checkpoint(net)
        state["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(SimulationError, match="version"):
            restore(state)


class TestRestoreResumeEquivalence:
    """Restoring a checkpoint then resuming equals never having stopped."""

    def test_same_digest_after_identical_continuation(self):
        from repro.chaos import accounting_digest

        def continuation(net, seed=77):
            rng = random.Random(seed)
            for _ in range(300):
                net.send(
                    Address(rng.randrange(3), rng.randrange(6)),
                    Address(rng.randrange(3), rng.randrange(6)),
                )

        straight = busy_network(seed=5)
        snapshotted = restore(checkpoint(busy_network(seed=5)))
        continuation(straight)
        continuation(snapshotted)
        assert accounting_digest(straight) == accounting_digest(snapshotted)


class TestPerNodeJournals:
    """isp_state/bank_state: the crash/restart write-ahead journals."""

    def test_isp_journal_round_trip(self):
        import json

        from repro.core.isp import CompliantISP
        from repro.core.persistence import isp_state, load_isp_state

        net = busy_network(seed=9)
        original = net.isps[1]
        journal = json.loads(json.dumps(isp_state(original), sort_keys=True))
        fresh = CompliantISP(1, net.users_per_isp, net.config)
        load_isp_state(fresh, journal)
        assert fresh.credit == original.credit
        assert fresh.ledger.pool == original.ledger.pool
        assert fresh.ledger.cash == original.ledger.cash
        assert fresh.stats == original.stats
        assert fresh.limit_hits == original.limit_hits
        assert fresh.zombie_suspects() == original.zombie_suspects()
        for user in original.ledger.users():
            twin = fresh.ledger.user(user.user_id)
            assert twin.balance == user.balance
            assert twin.account == user.account
            assert twin.sent_today == user.sent_today

    def test_isp_journal_malformed_raises_simulation_error(self):
        from repro.core.isp import CompliantISP
        from repro.core.persistence import isp_state, load_isp_state

        net = busy_network(messages=10)
        journal = isp_state(net.isps[0])
        del journal["credit"]
        fresh = CompliantISP(0, net.users_per_isp, net.config)
        with pytest.raises(SimulationError, match="malformed ISP journal"):
            load_isp_state(fresh, journal)

    def test_bank_journal_round_trip_keeps_replay_protection(self):
        import json

        from repro.core.persistence import bank_state, load_bank_state
        from repro.errors import ReplayDetected

        net = busy_network(messages=10)
        net.bank.buy_epennies(0, value=10, nonce=12345)
        net.reconcile("direct")
        journal = json.loads(json.dumps(bank_state(net.bank), sort_keys=True))
        accounts_before = {i: net.bank.account_balance(i) for i in (0, 1, 2)}
        seq_before = net.bank.next_seq

        load_bank_state(net.bank, journal)
        assert net.bank.next_seq == seq_before
        for isp_id, balance in accounts_before.items():
            assert net.bank.account_balance(isp_id) == balance
        # The nonce sets survived: a replayed purchase is still rejected.
        with pytest.raises(ReplayDetected):
            net.bank.buy_epennies(0, value=10, nonce=12345)

    def test_bank_journal_malformed_raises_simulation_error(self):
        from repro.core.persistence import bank_state, load_bank_state

        net = busy_network(messages=5)
        journal = bank_state(net.bank)
        del journal["nonces"]
        with pytest.raises(SimulationError, match="malformed bank journal"):
            load_bank_state(net.bank, journal)
