"""Tests for the incremental-deployment adoption model (§1.3, §5)."""

import pytest

from repro.core.config import NonCompliantMailPolicy
from repro.core.deployment import AdoptionParams, AdoptionSimulation


def run_sim(**kwargs):
    defaults = dict(n_isps=60, seed=1)
    defaults.update(kwargs)
    sim = AdoptionSimulation(AdoptionParams(**defaults))
    sim.run(max_rounds=200)
    return sim


class TestParams:
    def test_defaults_valid(self):
        AdoptionParams()

    def test_initial_compliant_bounds(self):
        with pytest.raises(ValueError):
            AdoptionParams(n_isps=10, initial_compliant=1)
        with pytest.raises(ValueError):
            AdoptionParams(n_isps=10, initial_compliant=11)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            AdoptionParams(spam_fraction=1.5)
        with pytest.raises(ValueError):
            AdoptionParams(base_switch_propensity=-0.1)


class TestDynamics:
    def test_starts_with_two_compliant(self):
        sim = AdoptionSimulation(AdoptionParams(n_isps=50, seed=0))
        assert sim.rounds[0].compliant_count == 2

    def test_monotone_nondecreasing_adoption(self):
        sim = run_sim()
        counts = [r.compliant_count for r in sim.rounds]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_reaches_full_adoption(self):
        sim = run_sim()
        assert sim.rounds[-1].compliant_fraction == 1.0

    def test_positive_feedback_from_two_isps(self):
        """The paper's §5 claim: growth from 2 ISPs accelerates."""
        sim = run_sim(n_isps=200, base_switch_propensity=0.1)
        assert sim.has_positive_feedback()

    def test_compliant_users_see_less_spam(self):
        sim = run_sim()
        for record in sim.rounds:
            assert (
                record.spam_seen_by_compliant_user
                <= record.spam_seen_by_noncompliant_user
            )

    def test_compliant_spam_exposure_falls_with_adoption(self):
        sim = run_sim()
        exposures = [r.spam_seen_by_compliant_user for r in sim.rounds]
        assert exposures[-1] < exposures[0]
        assert exposures[-1] == 0.0  # full adoption: spam priced out

    def test_stricter_policy_adopts_faster(self):
        slow = run_sim(policy=NonCompliantMailPolicy.DELIVER, seed=3)
        fast = run_sim(policy=NonCompliantMailPolicy.DISCARD, seed=3)
        assert (fast.rounds_to_fraction(0.9) or 999) <= (
            slow.rounds_to_fraction(0.9) or 999
        )

    def test_rounds_to_fraction(self):
        sim = run_sim()
        half = sim.rounds_to_fraction(0.5)
        ninety = sim.rounds_to_fraction(0.9)
        assert half is not None and ninety is not None
        assert half <= ninety
        assert sim.rounds_to_fraction(2.0) is None

    def test_deterministic_given_seed(self):
        a = run_sim(seed=7)
        b = run_sim(seed=7)
        assert [r.compliant_count for r in a.rounds] == [
            r.compliant_count for r in b.rounds
        ]

    def test_zero_propensity_never_adopts(self):
        sim = run_sim(base_switch_propensity=0.0)
        assert sim.rounds[-1].compliant_count == 2
