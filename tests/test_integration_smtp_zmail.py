"""Integration: Zmail accounting driven by real SMTP over localhost TCP.

Demonstrates the paper's §1.3 claim end to end: unmodified SMTP carries
the mail; the Zmail semantics live in the receiving ISP's handler and the
``X-Zmail-*`` headers. Two ISP domains run real asyncio SMTP servers; a
client submits mail; the handlers drive a :class:`ZmailNetwork`.
"""

import asyncio

from repro.core import ZmailNetwork
from repro.sim.workload import Address, TrafficKind
from repro.smtp import (
    Envelope,
    MailMessage,
    SMTPClient,
    SMTPServer,
    ZmailStamp,
    from_sim_address,
    read_stamp,
    stamp_message,
    to_sim_address,
)


class ZmailSMTPGateway:
    """Glue object: one ISP's SMTP face over the shared ZmailNetwork."""

    def __init__(self, network: ZmailNetwork, isp_id: int) -> None:
        self.network = network
        self.isp_id = isp_id
        self.server = SMTPServer(
            self.handle, hostname=f"isp{isp_id}.example"
        )
        self.delivered: list[Envelope] = []

    async def handle(self, envelope: Envelope) -> None:
        """Receiving side: trust the transport identity, run Zmail."""
        sender = to_sim_address(envelope.mail_from)
        recipient = to_sim_address(envelope.rcpt_to)
        # The stamp must agree with the claimed origin ISP.
        stamp = read_stamp(envelope.message)
        assert stamp is not None and stamp.sender_isp == f"isp{sender.isp}"
        self.network.send(sender, recipient, TrafficKind.NORMAL)
        self.delivered.append(envelope)


def submit_via_smtp(host, port, sender: Address, recipient: Address, body):
    message = MailMessage.compose(
        sender=str(from_sim_address(sender)),
        recipient=str(from_sim_address(recipient)),
        subject="over real smtp",
        body=body,
    )
    stamped = stamp_message(message, ZmailStamp(sender_isp=f"isp{sender.isp}"))
    envelope = Envelope(
        str(from_sim_address(sender)), str(from_sim_address(recipient)), stamped
    )

    async def _send():
        client = SMTPClient(host, port)
        await client.connect()
        await client.send(envelope)
        await client.quit()

    return _send()


class TestSMTPZmailIntegration:
    def test_epennies_move_over_real_smtp(self):
        network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=40)
        gateway = ZmailSMTPGateway(network, isp_id=1)

        async def scenario():
            host, port = await gateway.server.start()
            for i in range(5):
                await submit_via_smtp(
                    host, port, Address(0, 1), Address(1, 2), f"msg {i}"
                )
            await gateway.server.stop()

        asyncio.run(scenario())

        sender = network.isps[0].ledger.user(1)
        receiver = network.isps[1].ledger.user(2)
        assert sender.balance == network.config.default_user_balance - 5
        assert receiver.balance == network.config.default_user_balance + 5
        assert len(gateway.delivered) == 5

    def test_credit_arrays_match_smtp_traffic(self):
        network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=41)
        gateway = ZmailSMTPGateway(network, isp_id=1)

        async def scenario():
            host, port = await gateway.server.start()
            for i in range(7):
                await submit_via_smtp(
                    host, port, Address(0, i % 4), Address(1, (i + 1) % 4), "x"
                )
            await gateway.server.stop()

        asyncio.run(scenario())
        assert network.isps[0].credit[1] == 7
        assert network.isps[1].credit[0] == -7
        assert network.reconcile("direct").consistent

    def test_headers_survive_the_wire(self):
        network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=42)
        gateway = ZmailSMTPGateway(network, isp_id=1)

        async def scenario():
            host, port = await gateway.server.start()
            await submit_via_smtp(host, port, Address(0, 0), Address(1, 0), "x")
            await gateway.server.stop()

        asyncio.run(scenario())
        stamp = read_stamp(gateway.delivered[0].message)
        assert stamp.sender_isp == "isp0"
