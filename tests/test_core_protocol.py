"""Tests for the ZmailNetwork deployment glue (direct and engine modes)."""

import pytest

from repro.core import NonCompliantMailPolicy, SendStatus, ZmailConfig, ZmailNetwork
from repro.errors import SimulationError
from repro.sim import DAY, Address, Engine, LinkSpec, SeededStreams, TrafficKind
from repro.sim.workload import NormalUserWorkload, SpamCampaignWorkload, merge_workloads


def make_net(**kwargs):
    defaults = dict(n_isps=3, users_per_isp=5, seed=1)
    defaults.update(kwargs)
    return ZmailNetwork(**defaults)


class TestDirectMode:
    def test_zero_sum_transfer(self):
        net = make_net()
        before = net.total_value()
        net.send(Address(0, 1), Address(1, 2))
        assert net.total_value() == before
        sender = net.isps[0].ledger.user(1)
        receiver = net.isps[1].ledger.user(2)
        assert sender.balance == net.config.default_user_balance - 1
        assert receiver.balance == net.config.default_user_balance + 1

    def test_credit_antisymmetry_after_traffic(self):
        net = make_net()
        for i in range(40):
            net.send(Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5))
        report = net.reconcile("direct")
        assert report.consistent

    def test_conservation_over_mixed_traffic(self):
        net = make_net(compliant=[True, True, False])
        for i in range(100):
            net.send(Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5))
        assert net.total_value() == net.expected_total_value()

    def test_auto_topup_keeps_user_sending(self):
        config = ZmailConfig(default_user_balance=1, auto_topup_amount=10)
        net = make_net(config=config)
        for _ in range(5):
            receipt = net.send(Address(0, 0), Address(1, 0))
            assert receipt.status is SendStatus.SENT_PAID
        assert net.metrics.counter("topup.count").value >= 1

    def test_topup_disabled_blocks(self):
        config = ZmailConfig(default_user_balance=1, auto_topup_amount=0)
        net = make_net(config=config)
        net.send(Address(0, 0), Address(1, 0))
        receipt = net.send(Address(0, 0), Address(1, 0))
        assert receipt.status is SendStatus.BLOCKED_BALANCE

    def test_fund_user_tracked_in_expected_value(self):
        net = make_net()
        net.fund_user(Address(0, 0), pennies=5000, epennies=300)
        assert net.total_value() == net.expected_total_value()
        assert net.isps[0].ledger.user(0).balance == (
            net.config.default_user_balance + 300
        )

    def test_out_of_range_addresses_rejected(self):
        net = make_net()
        with pytest.raises(SimulationError):
            net.send(Address(9, 0), Address(0, 0))

    def test_make_compliant_updates_directory(self):
        net = make_net(compliant=[True, True, False])
        receipt = net.send(Address(0, 0), Address(2, 0))
        assert receipt.status is SendStatus.SENT_UNPAID
        net.make_compliant(2)
        receipt = net.send(Address(0, 0), Address(2, 0))
        assert receipt.status is SendStatus.SENT_PAID

    def test_run_workload_direct(self):
        net = make_net()
        streams = SeededStreams(3)
        workload = NormalUserWorkload(
            n_isps=3, users_per_isp=5, rate_per_day=20.0, streams=streams
        )
        net.run_workload(workload.generate(2 * DAY))
        sent = net.metrics.counter("send.sent_paid").value
        local = net.metrics.counter("send.delivered_local").value
        assert sent + local > 50
        assert net.total_value() == net.expected_total_value()

    def test_midnight_resets_happen_in_workload(self):
        config = ZmailConfig(default_daily_limit=3)
        net = make_net(config=config)
        streams = SeededStreams(3)
        workload = NormalUserWorkload(
            n_isps=3, users_per_isp=5, rate_per_day=30.0, streams=streams
        )
        net.run_workload(workload.generate(3 * DAY))
        # With resets, users keep sending across days despite the tiny limit.
        delivered = (
            net.metrics.counter("send.sent_paid").value
            + net.metrics.counter("send.delivered_local").value
        )
        assert delivered > 3 * 15  # more than one day's quota for everyone


class TestPoolRebalancing:
    def test_deficit_triggers_buy(self):
        config = ZmailConfig(initial_pool=100, minavail=200, maxavail=1000)
        net = make_net(config=config)
        net.rebalance_pools()
        for isp in net.compliant_isps().values():
            assert isp.ledger.pool == 600  # midpoint
        assert net.metrics.counter("bank.buys").value == 3
        assert net.total_value() == net.expected_total_value()

    def test_surplus_triggers_sell(self):
        config = ZmailConfig(initial_pool=5000, minavail=200, maxavail=1000)
        net = make_net(config=config)
        net.rebalance_pools()
        for isp in net.compliant_isps().values():
            assert isp.ledger.pool == 600
        assert net.metrics.counter("bank.sells").value == 3
        assert net.total_value() == net.expected_total_value()

    def test_partial_rebalance_touches_only_subset(self):
        config = ZmailConfig(initial_pool=100, minavail=200, maxavail=1000)
        net = make_net(config=config)
        net.rebalance_pools(isp_ids=[0, 2])
        assert net.isps[0].ledger.pool == 600
        assert net.isps[1].ledger.pool == 100  # untouched
        assert net.isps[2].ledger.pool == 600
        assert net.metrics.counter("bank.buys").value == 2
        assert net.total_value() == net.expected_total_value()

    def test_partial_rebalance_skips_flagged_isp_without_aborting(self):
        """Regression: a bank-flagged ISP in the subset used to abort the
        round (NotCompliant mid-iteration), and on the sell path the pool
        was debited before the bank raised — destroying the surplus."""
        config = ZmailConfig(initial_pool=5000, minavail=200, maxavail=1000)
        net = make_net(config=config)
        net.bank.set_compliant(1, False)
        net.rebalance_pools(isp_ids=[0, 1, 2])
        assert net.isps[0].ledger.pool == 600
        assert net.isps[1].ledger.pool == 5000  # skipped, value intact
        assert net.isps[2].ledger.pool == 600
        assert net.metrics.counter("bank.sells").value == 2
        assert net.total_value() == net.expected_total_value()

    def test_partial_rebalance_ignores_unknown_and_noncompliant_ids(self):
        config = ZmailConfig(initial_pool=100, minavail=200, maxavail=1000)
        net = make_net(config=config, compliant=[True, True, False])
        net.rebalance_pools(isp_ids=[1, 2, 99])
        assert net.isps[1].ledger.pool == 600
        assert net.metrics.counter("bank.buys").value == 1
        assert net.total_value() == net.expected_total_value()


class TestEngineMode:
    def run_traffic(self, net, engine, n=60):
        for i in range(n):
            net.send(Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5))
        engine.run()

    def test_letters_travel_with_latency(self):
        engine = Engine()
        net = make_net(engine=engine, link=LinkSpec(base_latency=1.0))
        net.send(Address(0, 0), Address(1, 0))
        assert net.paid_letters_in_flight == 1
        engine.run()
        assert net.paid_letters_in_flight == 0
        assert net.isps[1].ledger.user(0).balance == (
            net.config.default_user_balance + 1
        )

    def test_conservation_with_letters_in_flight(self):
        engine = Engine()
        net = make_net(engine=engine, link=LinkSpec(base_latency=5.0))
        for i in range(10):
            net.send(Address(0, i % 5), Address(1, i % 5))
        assert net.total_value() == net.expected_total_value()  # counts flight
        engine.run()
        assert net.total_value() == net.expected_total_value()

    def test_marker_snapshot_consistent_under_traffic(self):
        engine = Engine()
        net = make_net(engine=engine, link=LinkSpec(base_latency=0.5, jitter=0.4))
        for i in range(50):
            engine.schedule_at(
                i * 0.1,
                lambda i=i: net.send(
                    Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5)
                ),
            )
        engine.schedule_at(2.0, lambda: net.reconcile("marker"))
        engine.run()
        assert net.last_report is not None
        assert net.last_report.consistent

    def test_timeout_snapshot_consistent_with_generous_window(self):
        engine = Engine()
        config = ZmailConfig(snapshot_quiesce_seconds=30.0)
        net = make_net(
            engine=engine, config=config, link=LinkSpec(base_latency=0.5)
        )
        for i in range(50):
            engine.schedule_at(
                i * 0.1,
                lambda i=i: net.send(
                    Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5)
                ),
            )
        engine.schedule_at(2.0, lambda: net.reconcile("timeout"))
        engine.run()
        assert net.last_report is not None
        assert net.last_report.consistent

    def test_buffered_sends_flushed_after_snapshot(self):
        engine = Engine()
        net = make_net(engine=engine, link=LinkSpec(base_latency=0.1))
        net.reconcile("marker")
        # While requests are in flight, schedule sends that hit the pause.
        engine.schedule_at(
            0.05, lambda: None
        )  # let requests arrive first at t=0.1
        engine.schedule_at(
            0.15, lambda: net.send(Address(0, 0), Address(1, 0))
        )
        engine.run()
        assert net.last_report is not None
        assert net.isps[1].ledger.user(0).balance == (
            net.config.default_user_balance + 1
        )

    def test_direct_reconcile_rejected_with_mail_in_flight(self):
        engine = Engine()
        net = make_net(engine=engine, link=LinkSpec(base_latency=10.0))
        net.send(Address(0, 0), Address(1, 0))
        with pytest.raises(SimulationError, match="in flight"):
            net.reconcile("direct")

    def test_unknown_method_rejected(self):
        engine = Engine()
        net = make_net(engine=engine)
        with pytest.raises(ValueError, match="unknown snapshot method"):
            net.reconcile("quantum")

    def test_engine_methods_require_engine(self):
        net = make_net()
        with pytest.raises(SimulationError, match="engine mode"):
            net.reconcile("marker")

    def test_run_workload_engine_mode(self):
        engine = Engine()
        net = make_net(engine=engine, link=LinkSpec(base_latency=0.2))
        streams = SeededStreams(5)
        normal = NormalUserWorkload(
            n_isps=3, users_per_isp=5, rate_per_day=40.0, streams=streams
        )
        spam = SpamCampaignWorkload(
            spammer=Address(0, 0), n_isps=3, users_per_isp=5,
            volume=50, start=0.0, duration=DAY, streams=streams,
        )
        net.fund_user(Address(0, 0), epennies=100)
        net.run_workload(merge_workloads(normal.generate(DAY), spam.generate()))
        engine.run(until=1.5 * DAY)
        assert net.total_value() == net.expected_total_value()
        assert net.metrics.counter("send.kind.spam").value == 50
