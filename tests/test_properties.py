"""Property-based tests (hypothesis) on the core invariants.

The invariants the paper's correctness rests on, exercised over arbitrary
operation sequences rather than hand-picked ones:

* e-penny conservation across arbitrary traffic;
* credit anti-symmetry on every quiescent reconciliation;
* the ledger's local conservation law under arbitrary exchanges;
* RSA round-trips for arbitrary payloads;
* nonce nonrepetition;
* FIFO channel ordering;
* daily-limit liability bound.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SendStatus, ZmailConfig, ZmailNetwork
from repro.core.ledger import Ledger
from repro.crypto import NonceSource, dcr, generate_keypair, ncr
from repro.errors import InsufficientBalance, InsufficientFunds
from repro.sim.workload import Address, TrafficKind

KEYS = generate_keypair(192, seed=1234)

# A small universe keeps runs fast while still covering inter/intra-ISP
# and compliant/non-compliant combinations.
N_ISPS, USERS = 3, 4

addresses = st.builds(
    Address,
    isp=st.integers(min_value=0, max_value=N_ISPS - 1),
    user=st.integers(min_value=0, max_value=USERS - 1),
)

send_ops = st.tuples(addresses, addresses)


def build_network(compliant=(True, True, False)):
    return ZmailNetwork(
        n_isps=N_ISPS,
        users_per_isp=USERS,
        compliant=list(compliant),
        config=ZmailConfig(default_user_balance=30, auto_topup_amount=5),
        seed=0,
    )


class TestConservationProperties:
    @given(ops=st.lists(send_ops, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_total_value_invariant_under_arbitrary_traffic(self, ops):
        net = build_network()
        for sender, recipient in ops:
            net.send(sender, recipient)
        assert net.total_value() == net.expected_total_value()

    @given(ops=st.lists(send_ops, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_reconciliation_always_consistent(self, ops):
        net = build_network()
        for sender, recipient in ops:
            net.send(sender, recipient)
        report = net.reconcile("direct")
        assert report.consistent

    @given(ops=st.lists(send_ops, max_size=120), rounds=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_multiple_reconciliation_rounds(self, ops, rounds):
        net = build_network()
        chunk = max(1, len(ops) // rounds)
        for i in range(0, len(ops), chunk):
            for sender, recipient in ops[i : i + chunk]:
                net.send(sender, recipient)
            assert net.reconcile("direct").consistent

    @given(ops=st.lists(send_ops, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_no_negative_balances_ever(self, ops):
        net = build_network()
        for sender, recipient in ops:
            net.send(sender, recipient)
        for isp in net.compliant_isps().values():
            assert isp.ledger.pool >= 0
            for user in isp.ledger.users():
                assert user.balance >= 0
                assert user.account >= 0

    @given(ops=st.lists(send_ops, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_zero_sum_per_message(self, ops):
        """Sum of all user net flows is zero when only compliant ISPs
        exchange mail (every debit has exactly one matching credit)."""
        net = build_network(compliant=(True, True, True))
        for sender, recipient in ops:
            net.send(sender, recipient)
        flows = [
            user.net_epenny_flow
            for isp in net.compliant_isps().values()
            for user in isp.ledger.users()
        ]
        assert sum(flows) == 0


class TestLedgerProperties:
    exchange_ops = st.lists(
        st.tuples(
            st.sampled_from(["buy", "sell"]),
            st.integers(min_value=0, max_value=USERS - 1),
            st.integers(min_value=1, max_value=60),
        ),
        max_size=80,
    )

    @given(ops=exchange_ops)
    @settings(max_examples=50, deadline=None)
    def test_exchange_conserves_total(self, ops):
        ledger = Ledger(initial_pool=200)
        for i in range(USERS):
            ledger.add_user(i, account=100, balance=50, daily_limit=10)
        before = ledger.totals().total_value
        for op, user, amount in ops:
            try:
                if op == "buy":
                    ledger.user_buys_epennies(user, amount)
                else:
                    ledger.user_sells_epennies(user, amount)
            except (InsufficientBalance, InsufficientFunds):
                pass  # refusals must leave state untouched
        assert ledger.totals().total_value == before

    @given(ops=exchange_ops)
    @settings(max_examples=50, deadline=None)
    def test_refused_exchange_leaves_purses_consistent(self, ops):
        ledger = Ledger(initial_pool=100)
        ledger.add_user(0, account=50, balance=20, daily_limit=10)
        for op, _, amount in ops:
            snapshot = (
                ledger.user(0).account,
                ledger.user(0).balance,
                ledger.pool,
                ledger.cash,
            )
            try:
                if op == "buy":
                    ledger.user_buys_epennies(0, amount)
                else:
                    ledger.user_sells_epennies(0, amount)
            except (InsufficientBalance, InsufficientFunds):
                assert (
                    ledger.user(0).account,
                    ledger.user(0).balance,
                    ledger.pool,
                    ledger.cash,
                ) == snapshot


class TestCryptoProperties:
    @given(payload=st.binary(max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_rsa_round_trip_arbitrary_bytes(self, payload):
        assert dcr(KEYS.private, ncr(KEYS.public, payload)) == payload

    @given(payload=st.binary(min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_rsa_signature_direction(self, payload):
        assert dcr(KEYS.public, ncr(KEYS.private, payload)) == payload

    @given(seed=st.integers(min_value=0, max_value=2**32), n=st.integers(1, 300))
    @settings(max_examples=25, deadline=None)
    def test_nonce_nonrepetition(self, seed, n):
        source = NonceSource(seed)
        nonces = [source.next() for _ in range(n)]
        assert len(set(nonces)) == n


class TestChannelProperties:
    @given(payloads=st.lists(st.integers(), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_fifo_any_sequence(self, payloads):
        from repro.apn.channel import Channel, Message

        chan = Channel("p", "q")
        for p in payloads:
            chan.send(Message("m", (p,)))
        out = [chan.receive().fields[0] for _ in range(len(payloads))]
        assert out == payloads


class TestLimitProperties:
    @given(
        limit=st.integers(min_value=0, max_value=30),
        attempts=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=50, deadline=None)
    def test_daily_liability_never_exceeds_limit(self, limit, attempts):
        """§5: a zombie burns at most `limit` e-pennies per day."""
        config = ZmailConfig(
            default_daily_limit=limit,
            default_user_balance=1000,
            auto_topup_amount=0,
        )
        net = ZmailNetwork(n_isps=2, users_per_isp=2, config=config, seed=0)
        zombie = Address(0, 0)
        before = net.isps[0].ledger.user(0).balance
        for i in range(attempts):
            net.send(zombie, Address(1, i % 2))
        spent = before - net.isps[0].ledger.user(0).balance
        assert spent <= limit
        assert spent == min(limit, attempts)


class TestDailyLimitRollover:
    """§4.1 day-boundary resets, alone and against the overload layer."""

    @given(
        day_times=st.lists(
            st.floats(min_value=0.0, max_value=2.99, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        limit=st.integers(min_value=1, max_value=8),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_rollover_resets_and_keeps_invariants(self, day_times, limit):
        """Arbitrary send schedules across day boundaries: sent_today
        never exceeds the limit, resets at each midnight, deferred-queue
        retries drain without losing accounting, and value is conserved
        throughout."""
        from repro.core.overload import OverloadConfig
        from repro.sim.clock import DAY

        config = ZmailConfig(
            default_daily_limit=limit,
            default_user_balance=1000,
            auto_topup_amount=0,
        )
        net = ZmailNetwork(
            n_isps=2,
            users_per_isp=2,
            config=config,
            seed=0,
            overload=OverloadConfig(
                admit_rate=0.02,
                admit_burst=2,
                queue_capacity=4,
                retry_base=30.0,
                retry_backoff=2.0,
                retry_max_interval=3600.0,
                max_retries=3,
            ),
        )
        sender = Address(0, 0)
        user = net.isps[0].ledger.user(0)
        for t in sorted(day * DAY for day in day_times):
            net.note_time(t)
            net.send(sender, Address(1, 0))
            assert user.sent_today <= limit
        assert net.drain_overload()

        for controller in net.overload_controllers().values():
            assert controller.accounting_delta() == 0
        assert net.total_value() == net.expected_total_value()
        # limit_hits is bounded per user, never an unbounded event log.
        assert set(net.isps[0].limit_hits) <= {0, 1}
        # The next midnight resets every daily counter.
        net.note_time(10 * DAY)
        for isp in net.compliant_isps().values():
            for account in isp.ledger.users():
                assert account.sent_today == 0

    def test_retry_crossing_midnight_counts_against_new_day(self):
        """A send deferred just before midnight whose retry fires after
        it consumes the *new* day's quota: the day rollover applies
        before the retry pump at the same note_time instant."""
        from repro.core.overload import OverloadConfig
        from repro.sim.clock import DAY

        config = ZmailConfig(
            default_daily_limit=2, default_user_balance=100,
            auto_topup_amount=0,
        )
        net = ZmailNetwork(
            n_isps=2, users_per_isp=2, config=config, seed=0,
            overload=OverloadConfig(
                # 0.02/s: the burst of 2 is gone at `late`, and the first
                # retry 120s later (2.4 tokens refilled) succeeds.
                admit_rate=0.02, admit_burst=2, queue_capacity=2,
                retry_base=120.0, retry_backoff=1.0,
                retry_max_interval=120.0, max_retries=5,
            ),
        )
        sender = Address(0, 0)
        user = net.isps[0].ledger.user(0)
        late = DAY - 10.0
        net.note_time(late)
        statuses = [net.send(sender, Address(1, 0)).status for _ in range(3)]
        assert [s.value for s in statuses] == [
            "sent_paid", "sent_paid", "deferred",
        ]
        assert user.sent_today == 2  # day-0 quota fully used

        # The deferred retry is due at late+120s, after midnight. Pumping
        # past the boundary must reset the counter *first*, so the retry
        # is charged to day 1, not blocked by day 0's exhausted quota.
        assert net.drain_overload()
        assert user.sent_today == 1
        stats = net.overload_stats()
        assert stats["overload_accepted"] == 3
        assert stats["overload_bounced"] == 0
        assert net.total_value() == net.expected_total_value()
