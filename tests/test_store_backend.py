"""Unit tests for the durable store backend and the sealed-record codec."""

import json
import os
import sqlite3

import pytest

from repro.errors import SimulationError
from repro.store import DurableStore, record_checksum, seal, unseal
from repro.store.codec import STORE_FORMAT_VERSION, decode_payload, encode_payload


@pytest.fixture
def store(tmp_path):
    s = DurableStore.create(str(tmp_path / "test.db"))
    yield s
    s.close()


class TestCodec:
    def test_encode_payload_canonical(self):
        assert encode_payload({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_decode_payload_roundtrip(self):
        value = {"nested": [1, 2, {"x": None}], "s": "text"}
        assert decode_payload(encode_payload(value)) == value

    def test_decode_payload_garbage_raises(self):
        with pytest.raises(SimulationError, match="corrupted store payload"):
            decode_payload("{not json")

    def test_checksum_binds_identity(self):
        payload = encode_payload({"v": 1})
        base = record_checksum("user", "0:1", payload)
        assert record_checksum("user", "0:2", payload) != base
        assert record_checksum("isp", "0:1", payload) != base
        assert record_checksum("user", "0:1", payload + " ") != base

    def test_seal_unseal_roundtrip(self):
        value = {"pool": 500, "users": [1, 2, 3]}
        assert unseal(seal(value)) == value

    def test_seal_with_identity(self):
        text = seal({"x": 1}, kind="crash-journal", key="isp0")
        assert unseal(text, kind="crash-journal", key="isp0") == {"x": 1}

    def test_unseal_wrong_identity_raises(self):
        text = seal({"x": 1}, kind="crash-journal", key="isp0")
        with pytest.raises(SimulationError, match="identity mismatch"):
            unseal(text, kind="crash-journal", key="isp1")

    def test_unseal_tampered_payload_raises(self):
        text = seal({"balance": 100}, kind="j", key="n")
        tampered = text.replace("100", "900")
        with pytest.raises(SimulationError, match="checksum mismatch"):
            unseal(tampered, kind="j", key="n")

    def test_unseal_garbage_raises(self):
        with pytest.raises(SimulationError, match="corrupted sealed record"):
            unseal("not json at all")

    def test_unseal_missing_fields_raises(self):
        with pytest.raises(SimulationError, match="envelope malformed"):
            unseal(json.dumps({"kind": "j", "key": ""}))

    def test_unseal_non_dict_envelope_raises(self):
        with pytest.raises(SimulationError, match="envelope malformed"):
            unseal(json.dumps([1, 2, 3]))

    def test_unseal_non_string_payload_raises(self):
        text = seal({"x": 1}, kind="j", key="n")
        envelope = json.loads(text)
        envelope["payload"] = {"x": 1}
        with pytest.raises(SimulationError, match="checksum mismatch"):
            unseal(json.dumps(envelope), kind="j", key="n")


class TestLifecycle:
    def test_create_pins_format_version(self, store):
        assert store.meta_get("store_format_version") == str(STORE_FORMAT_VERSION)

    def test_open_existing(self, tmp_path):
        path = str(tmp_path / "s.db")
        with DurableStore.create(path) as s:
            s.commit([("k", "a", 1)], barrier=1)
        with DurableStore.open(path) as s:
            assert s.get("k", "a") == 1
            assert s.barrier == 1

    def test_open_wrong_format_raises(self, tmp_path):
        path = str(tmp_path / "s.db")
        with DurableStore.create(path) as s:
            s._meta_put_now("store_format_version", "999")
        with pytest.raises(SimulationError, match="format version"):
            DurableStore.open(path)

    def test_open_non_store_file_raises(self, tmp_path):
        path = str(tmp_path / "s.db")
        with open(path, "w") as handle:
            handle.write("this is not sqlite")
        with pytest.raises(SimulationError):
            DurableStore.open(path)

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "s.db")
        with DurableStore.create(path) as s:
            pass
        with pytest.raises(SimulationError):
            s.commit([("k", "a", 1)], barrier=1)

    def test_wal_mode_active(self, store):
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestCommitAndRead:
    def test_commit_returns_written_count(self, store):
        assert store.commit([("k", "a", 1), ("k", "b", 2)], barrier=1) == 2

    def test_get_missing_returns_none(self, store):
        assert store.get("k", "nope") is None

    def test_upsert_replaces(self, store):
        store.commit([("k", "a", {"v": 1})], barrier=1)
        store.commit([("k", "a", {"v": 2})], barrier=2)
        assert store.get("k", "a") == {"v": 2}
        assert store.count("k") == 1

    def test_deletes(self, store):
        store.commit([("k", "a", 1), ("k", "b", 2)], barrier=1)
        store.commit([], barrier=2, deletes=[("k", "a")])
        assert store.get("k", "a") is None
        assert store.get("k", "b") == 2

    def test_meta_lands_in_same_commit(self, store):
        store.commit([("k", "a", 1)], barrier=3, meta={"extra": "value"})
        assert store.meta_get("extra") == "value"
        assert store.barrier == 3

    def test_meta_require_missing_raises(self, store):
        with pytest.raises(SimulationError, match="missing meta key"):
            store.meta_require("absent")

    def test_iter_kind_sorted_and_filtered(self, store):
        store.commit(
            [("k", "b", 2), ("k", "a", 1), ("other", "z", 9)], barrier=1
        )
        assert list(store.iter_kind("k")) == [("a", 1), ("b", 2)]

    def test_count(self, store):
        store.commit([("k", "a", 1), ("j", "b", 2)], barrier=1)
        assert store.count() == 2
        assert store.count("k") == 1
        assert store.count("missing") == 0

    def test_barrier_default_zero(self, store):
        assert store.barrier == 0

    def test_commit_atomic_on_failure(self, store):
        # An unserialisable value fails mid-batch; nothing may land.
        with pytest.raises((SimulationError, TypeError)):
            store.commit([("k", "good", 1), ("k", "bad", object())], barrier=1)
        assert store.count() == 0
        assert store.barrier == 0

    def test_verify_clean_store(self, store):
        store.commit([("k", "a", 1), ("k", "b", {"x": [1, 2]})], barrier=1)
        assert store.verify() == 2


class TestCorruptionDetection:
    def test_tampered_payload_fails_get(self, store):
        store.commit([("bank", "bank", {"cash": 100})], barrier=1)
        store._conn.execute(
            "UPDATE records SET payload=? WHERE kind='bank'",
            (encode_payload({"cash": 9999}),),
        )
        with pytest.raises(SimulationError, match="failed its checksum"):
            store.get("bank", "bank")

    def test_row_swap_fails(self, store):
        # Copying one row's payload+checksum onto another slot must fail:
        # the checksum binds (kind, key), not just the payload bytes.
        store.commit([("user", "0:1", {"b": 10}), ("user", "0:2", {"b": 99})], barrier=1)
        row = store._conn.execute(
            "SELECT payload, checksum FROM records WHERE key='0:2'"
        ).fetchone()
        store._conn.execute(
            "UPDATE records SET payload=?, checksum=? WHERE key='0:1'", row
        )
        with pytest.raises(SimulationError, match="failed its checksum"):
            store.get("user", "0:1")

    def test_verify_catches_any_bad_record(self, store):
        store.commit([("k", str(i), i) for i in range(10)], barrier=1)
        store._conn.execute(
            "UPDATE records SET payload='[7]' WHERE key='3'"
        )
        with pytest.raises(SimulationError, match="failed its checksum"):
            store.verify()

    def test_verify_reports_page_corruption(self, tmp_path):
        path = str(tmp_path / "s.db")
        with DurableStore.create(path) as s:
            s.commit([("k", str(i), {"pad": "x" * 512}) for i in range(64)],
                     barrier=1)
        # Flip bytes inside a record's padding payload, wherever SQLite
        # put it on disk — guaranteed to hit live cell content.
        with open(path, "rb") as handle:
            blob = handle.read()
        offset = blob.index(b"x" * 256)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            handle.write(b"\xff" * 64)
        with pytest.raises(SimulationError):
            with DurableStore.open(path) as s:
                s.verify()
