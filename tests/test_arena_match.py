"""Arena match engine and strategy mechanics.

The contracts under test: strategy registries implement exactly the
schema's strategy vocabulary; a match is a pure function of
``(document, seed)``; every period keeps the ledger conserved and §4.4
consistent; and the dollar accounting has no free money — endowed hub
purses are charged at spend, washed pennies were bought via account
acquisition, zombie pennies cost rent.
"""

import random

import pytest

from repro.arena import (
    ATTACKERS,
    DEFENDERS,
    AttackOutcome,
    DefenseSignals,
    Knobs,
    Market,
    Salvo,
    generate_arena_doc,
    make_attacker,
    make_defender,
    run_match,
)
from repro.arena.attackers import best_route
from repro.arena.interface import ROUTE_BULK, ROUTE_PAID, ROUTE_POW
from repro.arena.match import HUB_DAILY_LIMIT
from repro.arena.tournament import cell_doc
from repro.errors import SimulationError
from repro.scenario.schema import (
    ATTACKER_STRATEGIES,
    DEFENDER_STRATEGIES,
    validate,
)
from repro.sim.clock import DAY, HOUR
from repro.sim.workload import Address


def arena_doc(attacker="static", defender="zmail_static", *, periods=3,
              seed=11, n_isps=2, users_per_isp=4, **market):
    """A small hand-built strategies world (2 ISPs x 4 users)."""
    doc = {
        "schema_version": 2,
        "name": "arena-unit",
        "seed": seed,
        "topology": {"n_isps": n_isps, "users_per_isp": users_per_isp},
        "economics": {
            "default_daily_limit": 50,
            "default_user_balance": 50 * (periods + 2),
            "auto_topup_amount": 0,
        },
        "traffic": {
            "duration": float(periods) * DAY,
            "normal_rate_per_day": 4.0,
        },
        "cluster": {"shards": 2, "epoch": HOUR},
        "strategies": {
            "periods": periods,
            "attacker": {"name": attacker, "isp": 0, "user": 0},
            "defender": {"name": defender},
            "market": dict(market),
        },
    }
    return validate(doc)


class TestRegistryParity:
    """The schema owns the vocabulary; the registries implement it."""

    def test_attacker_registry_matches_schema_vocabulary(self):
        assert set(ATTACKERS) == set(ATTACKER_STRATEGIES)

    def test_defender_registry_matches_schema_vocabulary(self):
        assert set(DEFENDERS) == set(DEFENDER_STRATEGIES)

    def test_unknown_attacker_is_loud(self):
        with pytest.raises(SimulationError, match="unknown attacker"):
            make_attacker("nope", {}, random.Random(0))

    def test_unknown_defender_is_loud(self):
        with pytest.raises(SimulationError, match="unknown defender"):
            make_defender("nope", {}, random.Random(0))


class TestMatchBasics:
    def test_match_is_pure_function_of_doc_and_seed(self):
        doc = arena_doc()
        a = run_match(doc, seed=99)
        b = run_match(doc, seed=99)
        assert a.to_row() == b.to_row()
        assert [p.to_row() for p in a.periods] == [
            p.to_row() for p in b.periods
        ]
        assert a.schedule == b.schedule

    def test_seed_defaults_to_document_seed(self):
        doc = arena_doc(seed=123)
        assert run_match(doc).seed == 123

    def test_every_period_conserves_and_reconciles(self):
        for attacker in sorted(ATTACKERS):
            for defender in sorted(DEFENDERS):
                result = run_match(cell_doc(arena_doc(), attacker, defender))
                assert result.conserved, (attacker, defender)
                assert result.consistent, (attacker, defender)
                assert len(result.periods) == 3

    def test_match_without_strategies_term_is_rejected(self):
        doc = dict(arena_doc())
        doc["strategies"] = None
        with pytest.raises(SimulationError, match="strategies term"):
            run_match(doc)

    def test_generated_worlds_run_all_strategy_pairs(self):
        world = generate_arena_doc(31, periods=2)
        for attacker in sorted(ATTACKERS):
            result = run_match(cell_doc(world, attacker, "price_tuner"))
            assert result.conserved and result.consistent


class TestEconomics:
    """No free money: the acceptance criterion rests on this."""

    def test_static_blaster_pays_for_every_penny_spent(self):
        # conversion_rate=0 isolates cost: profit == -cost, and cost
        # must include every penny the hub spent from its endowed purse.
        doc = arena_doc("static", conversion_rate=0.0)
        result = run_match(doc, seed=5)
        delivered = sum(p.delivered_paid for p in result.periods)
        attempted = sum(p.attempted for p in result.periods)
        market = doc["strategies"]["market"]
        floor = delivered * market["epenny_dollars"]
        assert result.profit <= -floor
        assert attempted > 0

    def test_low_ev_market_is_unprofitable_in_expectation_for_all(self):
        # ev/message far below the paid break-even and the zombie rent
        # floor: every strategy must lose money in expectation.
        for attacker in sorted(ATTACKERS):
            doc = arena_doc(
                attacker,
                conversion_rate=1e-5,
                revenue_per_response=2.0,
            )
            result = run_match(doc, seed=7)
            assert result.expected_profit < 0, attacker

    def test_high_ev_market_is_profitable_for_the_null_adversary(self):
        # ev/message = 0.05 ≫ the 0.0101 paid-route cost: even the
        # static blaster profits — spam survives where it pays (§1.2).
        doc = arena_doc(
            "static", conversion_rate=0.002, revenue_per_response=25.0
        )
        result = run_match(doc, seed=7)
        assert result.expected_profit > 0

    def test_zombie_fleet_cost_is_rent_not_pennies(self):
        doc = arena_doc(
            "zombie_fleet", conversion_rate=0.0, n_isps=3, users_per_isp=8
        )
        result = run_match(doc, seed=3)
        market = doc["strategies"]["market"]
        # Rent is charged after renting, before detection losses remove
        # machines; the record's fleet_size is post-loss.
        machine_days = sum(
            p.fleet_size + p.machines_lost for p in result.periods
        )
        attempted = sum(p.attempted for p in result.periods)
        assert sum(p.delivered_paid for p in result.periods) > 0
        expected_cost = (
            machine_days * market["rent_per_machine_day"]
            + attempted * market["infra_cost_per_message"]
        )
        assert sum(p.cost for p in result.periods) == pytest.approx(
            expected_cost
        )

    def test_wash_charges_acquisition_not_market_price(self):
        doc = arena_doc("epenny_wash", conversion_rate=0.0)
        result = run_match(doc, seed=3)
        market = doc["strategies"]["market"]
        accounts = sum(p.accounts_enlisted for p in result.periods)
        attempted = sum(p.attempted for p in result.periods)
        washed = sum(p.delivered_wash for p in result.periods)
        assert accounts > 0 and washed > 0
        # Total cost: acquisitions + infra only — no per-penny charge
        # for washed pennies (hub blasts covered by wash credit).
        expected_cost = (
            accounts * market["compromised_account_dollars"]
            + attempted * market["infra_cost_per_message"]
        )
        assert sum(p.cost for p in result.periods) == pytest.approx(
            expected_cost
        )


class TestDefenderMechanics:
    def test_price_tuner_escalates_under_spam(self):
        doc = arena_doc("static", "price_tuner", periods=4,
                        conversion_rate=0.0)
        result = run_match(doc, seed=5)
        assert result.periods[-1].price_multiplier > 1.0
        assert result.periods[-1].daily_limit < 50
        # Escalation makes the same blast strictly more expensive than
        # it is against the static defender.
        static = run_match(
            cell_doc(doc, "static", "zmail_static"), seed=5
        )
        assert sum(p.cost for p in result.periods) > sum(
            p.cost for p in static.periods
        )

    def test_pow_exchange_offers_and_escalates(self):
        doc = arena_doc("response_rate", "pow_exchange", periods=4)
        result = run_match(doc, seed=5)
        offered = [p.pow_seconds for p in result.periods]
        assert offered[0] == 1.0
        assert all(s is not None for s in offered)
        # The rational learner takes the cheaper CPU route.
        assert sum(p.delivered_pow for p in result.periods) > 0

    def test_priority_classes_cap_shrinks_when_saturated(self):
        doc = arena_doc("response_rate", "priority_classes", periods=5,
                        conversion_rate=0.01)
        result = run_match(doc, seed=5)
        caps = [p.bulk_cap for p in result.periods]
        assert caps[0] == 2000
        assert all(
            p.bulk_price_dollars == 0.002 for p in result.periods
        )

    def test_hub_keeps_commercial_quota_under_limit_tuning(self):
        doc = arena_doc("static", "price_tuner", periods=4,
                        conversion_rate=0.0)
        result = run_match(doc, seed=5)
        # The hub's blast volume (200/day default via schema) exceeds
        # every ordinary daily limit, yet deliveries keep flowing at
        # full volume: the hub quota is HUB_DAILY_LIMIT, not the knob.
        assert HUB_DAILY_LIMIT > 10**8
        for p in result.periods:
            # Far above any tuned ordinary limit; a couple of pennies
            # may go to background legit sends from the hub's address.
            assert p.delivered_paid >= p.volume_planned - 5
            assert p.delivered_paid > p.daily_limit


class TestRouteArbitrage:
    def make_view(self, knobs, **market):
        base = dict(
            conversion_rate=0.001,
            revenue_per_response=25.0,
            infra_cost_per_message=0.0001,
            epenny_dollars=0.01,
            cpu_second_dollars=2e-05,
            bulk_conversion_factor=0.2,
            rent_per_machine_day=0.05,
            compromised_account_dollars=1.0,
        )
        base.update(market)
        from repro.arena.interface import AttackerView

        return AttackerView(
            period=0, market=Market(**base), knobs=knobs, n_isps=2,
            users_per_isp=4, fleet=(), pool_remaining=0, last=None,
            balance=lambda a: 0,
        )

    def test_paid_wins_when_nothing_else_is_offered(self):
        route, _ = best_route(self.make_view(Knobs(daily_limit=50)))
        assert route == ROUTE_PAID

    def test_cheap_pow_route_wins(self):
        view = self.make_view(Knobs(daily_limit=50, pow_seconds=1.0))
        route, cost = best_route(view)
        assert route == ROUTE_POW
        assert cost < 0.0101 / 0.001

    def test_expensive_pow_route_loses_to_paid(self):
        view = self.make_view(
            Knobs(daily_limit=50, pow_seconds=1000.0),
            cpu_second_dollars=0.001,
        )
        assert best_route(view)[0] == ROUTE_PAID

    def test_bulk_route_discounts_conversions(self):
        view = self.make_view(
            Knobs(daily_limit=50, bulk_price_dollars=0.0001, bulk_cap=100)
        )
        assert best_route(view)[0] == ROUTE_BULK

    def test_bulk_route_needs_positive_cap(self):
        view = self.make_view(
            Knobs(daily_limit=50, bulk_price_dollars=0.0001, bulk_cap=0)
        )
        assert best_route(view)[0] == ROUTE_PAID


class TestInterfaceShapes:
    def test_outcome_profit_and_victims(self):
        outcome = AttackOutcome(
            attempted=10, delivered_paid=4, delivered_pow=2,
            delivered_bulk=1, delivered_wash=3, blocked=0,
            conversions=1, revenue=25.0, cost=5.0,
        )
        assert outcome.profit == 20.0
        assert outcome.delivered_victims == 7

    def test_signals_goodput_and_spam_share_edges(self):
        clean = DefenseSignals(
            spam_inbox=0, bulk_folder=0, legit_attempted=0,
            legit_delivered=0, detections=0,
        )
        assert clean.goodput == 1.0
        assert clean.spam_share == 0.0
        dirty = DefenseSignals(
            spam_inbox=30, bulk_folder=0, legit_attempted=20,
            legit_delivered=10, detections=1,
        )
        assert dirty.goodput == 0.5
        assert dirty.spam_share == 0.75

    def test_pow_salvo_without_offer_is_loud(self):
        from repro.arena.interface import Attacker, register_attacker

        @register_attacker
        class RoguePow(Attacker):
            name = "_test_rogue_pow"

            def plan(self, view):
                from repro.arena.interface import AttackAction

                return AttackAction(
                    salvos=(
                        Salvo(
                            sender=Address(0, 0), volume=5, route=ROUTE_POW
                        ),
                    )
                )

        try:
            doc = arena_doc()
            doc["strategies"]["attacker"]["name"] = "static"
            with pytest.raises(SimulationError, match="POW"):
                engine_doc = dict(doc)
                import copy

                engine_doc = copy.deepcopy(doc)
                engine_doc["strategies"]["attacker"]["name"] = (
                    "_test_rogue_pow"
                )
                run_match(engine_doc)
        finally:
            del ATTACKERS["_test_rogue_pow"]

    def test_unknown_route_is_loud(self):
        from repro.arena.interface import (
            AttackAction,
            Attacker,
            register_attacker,
        )

        @register_attacker
        class RogueRoute(Attacker):
            name = "_test_rogue_route"

            def plan(self, view):
                return AttackAction(
                    salvos=(
                        Salvo(
                            sender=Address(0, 0), volume=5, route="pigeon"
                        ),
                    )
                )

        try:
            import copy

            doc = copy.deepcopy(arena_doc())
            doc["strategies"]["attacker"]["name"] = "_test_rogue_route"
            with pytest.raises(SimulationError, match="route"):
                run_match(doc)
        finally:
            del ATTACKERS["_test_rogue_route"]


class TestTraceEvents:
    def test_match_emits_one_arena_period_event_per_period(self):
        from repro.obs import ListSink, TraceRecorder

        sink = ListSink()
        recorder = TraceRecorder(sink=sink)
        run_match(arena_doc(periods=3), seed=4, tracer=recorder)
        events = [
            e for e in sink.events() if e["type"] == "arena.period"
        ]
        assert [e["period"] for e in events] == [0, 1, 2]
        assert all(e["attacker"] == "static" for e in events)
        assert all(e["conserved"] for e in events)
