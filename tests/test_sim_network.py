"""Tests for the FIFO latency/loss network model."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.network import LinkSpec, Network
from repro.sim.rng import SeededStreams


class Sink:
    def __init__(self):
        self.received = []

    def on_message(self, src, payload):
        self.received.append((src, payload))


def make_net(link=None, seed=0):
    engine = Engine()
    net = Network(engine, SeededStreams(seed), default_link=link or LinkSpec())
    return engine, net


class TestDelivery:
    def test_basic_delivery(self):
        engine, net = make_net()
        sink = Sink()
        net.register("a", Sink())
        net.register("b", sink)
        net.send("a", "b", "hello")
        engine.run()
        assert sink.received == [("a", "hello")]
        assert net.messages_delivered == 1

    def test_latency_applied(self):
        engine, net = make_net(LinkSpec(base_latency=2.5))
        sink = Sink()
        net.register("a", Sink())
        net.register("b", sink)
        arrival = []
        sink.on_message = lambda src, p: arrival.append(engine.now)
        net.send("a", "b", "x")
        engine.run()
        assert arrival == [2.5]

    def test_unknown_endpoints_rejected(self):
        _, net = make_net()
        net.register("a", Sink())
        with pytest.raises(SimulationError, match="destination"):
            net.send("a", "nope", "x")
        with pytest.raises(SimulationError, match="source"):
            net.send("nope", "a", "x")

    def test_duplicate_registration_rejected(self):
        _, net = make_net()
        net.register("a", Sink())
        with pytest.raises(SimulationError, match="already registered"):
            net.register("a", Sink())


class TestFIFO:
    def test_fifo_under_jitter(self):
        """Even with random jitter, per-link order must be preserved."""
        engine, net = make_net(LinkSpec(base_latency=0.1, jitter=5.0), seed=3)
        sink = Sink()
        net.register("a", Sink())
        net.register("b", sink)
        for i in range(50):
            net.send("a", "b", i)
        engine.run()
        payloads = [p for _, p in sink.received]
        assert payloads == list(range(50))

    def test_fifo_interleaved_with_time(self):
        engine, net = make_net(LinkSpec(base_latency=1.0, jitter=3.0), seed=9)
        sink = Sink()
        net.register("a", Sink())
        net.register("b", sink)

        def send_batch(start):
            for i in range(start, start + 5):
                net.send("a", "b", i)

        engine.schedule_at(0.0, lambda: send_batch(0))
        engine.schedule_at(0.5, lambda: send_batch(5))
        engine.run()
        payloads = [p for _, p in sink.received]
        assert payloads == list(range(10))

    def test_independent_links_not_ordered(self):
        """FIFO holds per link; cross-link order may interleave freely."""
        engine, net = make_net(LinkSpec(base_latency=0.1))
        sink = Sink()
        net.register("a", Sink())
        net.register("c", Sink())
        net.register("b", sink)
        net.send("a", "b", "from-a")
        net.send("c", "b", "from-c")
        engine.run()
        assert {p for _, p in sink.received} == {"from-a", "from-c"}


class TestLoss:
    def test_lossy_link_drops(self):
        engine, net = make_net(LinkSpec(loss_rate=1.0))
        sink = Sink()
        net.register("a", Sink())
        net.register("b", sink)
        net.send("a", "b", "x")
        engine.run()
        assert sink.received == []
        assert net.messages_dropped == 1

    def test_partial_loss_statistics(self):
        engine, net = make_net(LinkSpec(loss_rate=0.5), seed=11)
        sink = Sink()
        net.register("a", Sink())
        net.register("b", sink)
        for i in range(1000):
            net.send("a", "b", i)
        engine.run()
        assert 350 < net.messages_dropped < 650
        assert net.messages_dropped + net.messages_delivered == 1000

    def test_invalid_loss_rate(self):
        with pytest.raises(SimulationError):
            LinkSpec(loss_rate=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            LinkSpec(base_latency=-1.0)


class TestAccounting:
    def test_bytes_counted(self):
        engine, net = make_net()
        net.register("a", Sink())
        net.register("b", Sink())
        net.send("a", "b", "x", size=100)
        net.send("a", "b", "y", size=200)
        assert net.bytes_sent == 300

    def test_per_link_override(self):
        engine, net = make_net(LinkSpec(base_latency=1.0))
        net.register("a", Sink())
        net.register("b", Sink())
        net.set_link("a", "b", LinkSpec(base_latency=9.0))
        assert net.link("a", "b").base_latency == 9.0
        assert net.link("b", "a").base_latency == 1.0

    def test_tap_sees_all_sends(self):
        engine, net = make_net(LinkSpec(loss_rate=1.0))
        net.register("a", Sink())
        net.register("b", Sink())
        seen = []
        net.add_tap(lambda s, d, p: seen.append((s, d, p)))
        net.send("a", "b", "x")
        assert seen == [("a", "b", "x")]  # taps fire even for dropped msgs
