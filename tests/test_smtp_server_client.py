"""End-to-end tests of the asyncio SMTP server/client over localhost TCP."""

import asyncio

import pytest

from repro.errors import SMTPPermanentError
from repro.smtp.client import SMTPClient, send_message
from repro.smtp.message import MailMessage
from repro.smtp.server import SMTPServer
from repro.smtp.transport import Envelope


def run(coro):
    return asyncio.run(coro)


def make_message(body="hello world", subject="Test"):
    return MailMessage.compose(
        sender="alice@isp0.example",
        recipient="bob@isp1.example",
        subject=subject,
        body=body,
    )


class TestRoundTrip:
    def test_single_message(self):
        received = []

        async def scenario():
            server = SMTPServer(received.append, hostname="isp1.example")
            host, port = await server.start()
            client = SMTPClient(host, port)
            await client.connect()
            await client.send(
                Envelope("alice@isp0.example", "bob@isp1.example", make_message())
            )
            await client.quit()
            await server.stop()

        run(scenario())
        assert len(received) == 1
        envelope = received[0]
        assert envelope.mail_from == "alice@isp0.example"
        assert envelope.rcpt_to == "bob@isp1.example"
        assert envelope.message.subject == "Test"
        assert envelope.message.body.strip() == "hello world"

    def test_multiple_messages_one_session(self):
        received = []

        async def scenario():
            server = SMTPServer(received.append)
            host, port = await server.start()
            client = SMTPClient(host, port)
            await client.connect()
            for i in range(5):
                await client.send(
                    Envelope(
                        "a@x.example", "b@y.example", make_message(body=f"msg {i}")
                    )
                )
            await client.quit()
            await server.stop()

        run(scenario())
        assert [e.message.body.strip() for e in received] == [
            f"msg {i}" for i in range(5)
        ]

    def test_dot_stuffing_round_trip(self):
        """Lines starting with '.' must survive the DATA transparency rules."""
        received = []
        tricky = ".hidden leading dot\n..double\nnormal"

        async def scenario():
            server = SMTPServer(received.append)
            host, port = await server.start()
            client = SMTPClient(host, port)
            await client.connect()
            await client.send(
                Envelope("a@x.example", "b@y.example", make_message(body=tricky))
            )
            await client.quit()
            await server.stop()

        run(scenario())
        body = received[0].message.body.replace("\r\n", "\n").rstrip("\n")
        assert body == tricky

    def test_sync_send_message_helper(self):
        received = []

        async def scenario():
            server = SMTPServer(received.append)
            host, port = await server.start()
            await asyncio.to_thread(
                send_message, host, port, "a@x.example", "b@y.example",
                make_message(),
            )
            await server.stop()

        run(scenario())
        assert len(received) == 1

    def test_async_handler_supported(self):
        received = []

        async def handler(envelope):
            await asyncio.sleep(0)
            received.append(envelope)

        async def scenario():
            server = SMTPServer(handler)
            host, port = await server.start()
            client = SMTPClient(host, port)
            await client.connect()
            await client.send(
                Envelope("a@x.example", "b@y.example", make_message())
            )
            await client.quit()
            await server.stop()

        run(scenario())
        assert len(received) == 1


class TestProtocolErrors:
    @staticmethod
    async def raw_session(server, *lines):
        """Drive the server with raw command lines; return reply codes."""
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        replies = [await reader.readline()]  # greeting
        for line in lines:
            writer.write(line.encode() + b"\r\n")
            await writer.drain()
            replies.append(await reader.readline())
        writer.close()
        await server.stop()
        return [int(r[:3]) for r in replies]

    def test_mail_before_helo_rejected(self):
        server = SMTPServer(lambda e: None)
        codes = run(self.raw_session(server, "MAIL FROM:<a@x.example>"))
        assert codes == [220, 503]

    def test_rcpt_before_mail_rejected(self):
        server = SMTPServer(lambda e: None)
        codes = run(self.raw_session(server, "EHLO me", "RCPT TO:<b@y.example>"))
        assert codes == [220, 250, 503]

    def test_data_without_rcpt_rejected(self):
        server = SMTPServer(lambda e: None)
        codes = run(
            self.raw_session(server, "EHLO me", "MAIL FROM:<a@x.example>", "DATA")
        )
        assert codes == [220, 250, 250, 503]

    def test_unknown_command(self):
        server = SMTPServer(lambda e: None)
        codes = run(self.raw_session(server, "FROBNICATE now"))
        assert codes == [220, 500]

    def test_malformed_address_rejected(self):
        server = SMTPServer(lambda e: None)
        codes = run(self.raw_session(server, "EHLO me", "MAIL FROM:<not-an-addr>"))
        assert codes == [220, 250, 553]

    def test_rset_clears_transaction(self):
        server = SMTPServer(lambda e: None)
        codes = run(
            self.raw_session(
                server, "EHLO me", "MAIL FROM:<a@x.example>", "RSET",
                "MAIL FROM:<c@z.example>",
            )
        )
        assert codes == [220, 250, 250, 250, 250]

    def test_noop_and_vrfy(self):
        server = SMTPServer(lambda e: None)
        codes = run(self.raw_session(server, "NOOP", "VRFY someone"))
        assert codes == [220, 250, 252]

    def test_rcpt_checker_rejects(self):
        server = SMTPServer(
            lambda e: None, rcpt_checker=lambda addr: addr.startswith("ok")
        )
        codes = run(
            self.raw_session(
                server, "EHLO me", "MAIL FROM:<a@x.example>",
                "RCPT TO:<bad@y.example>", "RCPT TO:<ok@y.example>",
            )
        )
        assert codes == [220, 250, 250, 550, 250]

    def test_client_raises_on_rejected_rcpt(self):
        async def scenario():
            server = SMTPServer(lambda e: None, rcpt_checker=lambda a: False)
            host, port = await server.start()
            client = SMTPClient(host, port)
            await client.connect()
            with pytest.raises(SMTPPermanentError):
                await client.send(
                    Envelope("a@x.example", "b@y.example", make_message())
                )
            await client.quit()
            await server.stop()

        run(scenario())
