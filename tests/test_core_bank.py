"""Tests for the central bank: accounts, buy/sell, replay, reconciliation."""

import pytest

from repro.core.bank import Bank
from repro.core.misbehavior import infer_suspects, verify_credit_matrix
from repro.errors import NotCompliant, ReplayDetected, UnknownISP


def make_bank(n=3, account=1000):
    bank = Bank()
    for i in range(n):
        bank.register_isp(i, initial_account=account)
    return bank


class TestRegistry:
    def test_register_and_balance(self):
        bank = make_bank()
        assert bank.account_balance(0) == 1000
        assert bank.is_compliant(0)

    def test_duplicate_registration_rejected(self):
        bank = make_bank()
        with pytest.raises(ValueError, match="registered"):
            bank.register_isp(0, initial_account=1)

    def test_unknown_isp(self):
        with pytest.raises(UnknownISP):
            make_bank().account_balance(9)

    def test_compliance_directory(self):
        bank = make_bank()
        bank.set_compliant(1, False)
        directory = bank.compliance_directory()
        assert directory == {0: True, 1: False, 2: True}

    def test_unregistered_not_compliant(self):
        assert not make_bank().is_compliant(42)

    def test_total_deposits(self):
        assert make_bank(3, 500).total_deposits() == 1500


class TestBuySell:
    def test_buy_accepted_debits_account(self):
        bank = make_bank()
        result = bank.buy_epennies(0, value=300, nonce=1)
        assert result.accepted
        assert bank.account_balance(0) == 700

    def test_buy_rejected_when_underfunded(self):
        bank = make_bank(account=100)
        result = bank.buy_epennies(0, value=300, nonce=1)
        assert not result.accepted
        assert bank.account_balance(0) == 100  # untouched

    def test_sell_credits_account(self):
        bank = make_bank()
        echoed = bank.sell_epennies(0, value=200, nonce=2)
        assert echoed == 2
        assert bank.account_balance(0) == 1200

    def test_replay_rejected(self):
        bank = make_bank()
        bank.buy_epennies(0, value=10, nonce=7)
        with pytest.raises(ReplayDetected):
            bank.buy_epennies(0, value=10, nonce=7)
        with pytest.raises(ReplayDetected):
            bank.sell_epennies(0, value=10, nonce=7)  # shared registry

    def test_nonce_registries_per_isp(self):
        bank = make_bank()
        bank.buy_epennies(0, value=10, nonce=7)
        bank.buy_epennies(1, value=10, nonce=7)  # same nonce, other ISP: fine

    def test_noncompliant_blocked(self):
        bank = make_bank()
        bank.set_compliant(0, False)
        with pytest.raises(NotCompliant):
            bank.buy_epennies(0, value=10, nonce=1)

    def test_nonpositive_values_rejected(self):
        bank = make_bank()
        with pytest.raises(ValueError):
            bank.buy_epennies(0, value=0, nonce=1)
        with pytest.raises(ValueError):
            bank.sell_epennies(0, value=-5, nonce=2)


class TestEncryptedForms:
    def test_buy_message_round_trip(self):
        from repro.crypto import dcr_object, ncr_object

        bank = make_bank()
        request = ncr_object(bank.keys.public, [250, 12345])
        reply = bank.handle_buy_message(0, request)
        nonce, accepted = dcr_object(bank.keys.public, reply)
        assert nonce == 12345 and accepted is True
        assert bank.account_balance(0) == 750

    def test_sell_message_round_trip(self):
        from repro.crypto import dcr_object, ncr_object

        bank = make_bank()
        request = ncr_object(bank.keys.public, [100, 777])
        reply = bank.handle_sell_message(0, request)
        assert dcr_object(bank.keys.public, reply) == 777
        assert bank.account_balance(0) == 1100

    def test_replayed_ciphertext_rejected(self):
        from repro.crypto import ncr_object

        bank = make_bank()
        request = ncr_object(bank.keys.public, [250, 999])
        bank.handle_buy_message(0, request)
        with pytest.raises(ReplayDetected):
            bank.handle_buy_message(0, request)


class TestReconciliation:
    def test_consistent_round(self):
        bank = make_bank()
        reports = {
            0: {1: 5, 2: -3},
            1: {0: -5, 2: 2},
            2: {0: 3, 1: -2},
        }
        report = bank.reconcile(reports)
        assert report.consistent
        assert report.pairs_checked == 3
        assert report.suspects == []
        assert bank.reports == [report]

    def test_inconsistent_pair_flagged(self):
        bank = make_bank()
        reports = {
            0: {1: 5},
            1: {0: -4},  # off by one
            2: {},
        }
        report = bank.reconcile(reports)
        assert not report.consistent
        assert report.flagged_isps() == {0, 1}
        assert report.inconsistent[0].discrepancy == 1

    def test_seq_advances(self):
        bank = make_bank()
        assert bank.next_seq == 0
        bank.reconcile({0: {}, 1: {}, 2: {}})
        assert bank.next_seq == 1

    def test_settlement_cost_fields(self):
        bank = make_bank()
        report = bank.reconcile({0: {1: 1}, 1: {0: -1}, 2: {}})
        n = 3
        assert report.settlement_operations == 2 * n + n * (n - 1) // 2
        assert report.settlement_bytes > 0

    def test_missing_entries_default_zero(self):
        bad = verify_credit_matrix({0: {1: 4}, 1: {}})
        assert len(bad) == 1
        assert bad[0].credit_ab == 4 and bad[0].credit_ba == 0


class TestSuspectInference:
    def test_cheater_in_many_pairs_ranked_first(self):
        reports = {
            0: {1: 10, 2: 10, 3: 10},
            1: {0: -9},  # 0 inflated against everyone
            2: {0: -9},
            3: {0: -9},
        }
        bad = verify_credit_matrix(reports)
        suspects = infer_suspects(bad)
        assert suspects[0] == 0
        assert len(bad) == 3

    def test_single_pair_is_ambiguous(self):
        bad = verify_credit_matrix({0: {1: 3}, 1: {0: -2}})
        assert infer_suspects(bad) == [0, 1]

    def test_no_inconsistency_no_suspects(self):
        assert infer_suspects([]) == []


class TestKnownLimitations:
    def test_collusive_pair_can_hide_mutual_traffic(self):
        """A *pair* of ISPs misreporting consistently with each other
        (both claiming zero mutual traffic) passes anti-symmetry — a
        structural limitation of pairwise checking. Crucially it gains
        them nothing: hiding mutual traffic moves no money, and minting
        is caught by the solvency audit (see E18), so the collusion is
        pointless rather than profitable."""
        bank = make_bank()
        reports = {
            0: {2: 4},          # truth: 0 and 1 exchanged mail too,
            1: {2: -1},         # but both report nothing about it
            2: {0: -4, 1: 1},
        }
        report = bank.reconcile(reports)
        assert report.consistent  # the hidden pair sails through

    def test_one_sided_hiding_is_caught(self):
        """Hiding requires *both* parties: if only one suppresses the
        mutual traffic, the honest peer's report exposes it."""
        bank = make_bank()
        reports = {
            0: {},              # hides its traffic with 1
            1: {0: -7},         # honest
            2: {},
        }
        report = bank.reconcile(reports)
        assert not report.consistent
        assert report.flagged_isps() == {0, 1}
