"""Overload layer tests: admission control, shedding, breakers, floods.

Covers the building blocks in :mod:`repro.core.overload`, their wiring
into :class:`ZmailNetwork` (direct and engine drive modes), the priority
shedding policy (paid compliant mail sheds last), the SMTP gateway's
backpressure face, and byte-level determinism of the built-in overload
campaign.
"""

import pytest

from repro.chaos import DEFAULT_OVERLOAD_SPEC, run_campaign
from repro.chaos.deployment import ChaosDeployment
from repro.chaos.faults import FaultSpec, FloodSpec, flood_requests
from repro.core.overload import (
    AdmissionController,
    CircuitBreaker,
    DeferredItem,
    DeferredQueue,
    OverloadConfig,
    ShedAudit,
    ShedClass,
    TokenBucket,
    shed_class_for,
)
from repro.core.protocol import ZmailNetwork
from repro.core.transfer import SendStatus
from repro.errors import ConfigError, SimulationError
from repro.sim.rng import SeededStreams, derive_seed
from repro.sim.workload import Address, TrafficKind


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, capacity=3)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)
        # 1 second at 2/s refills 2 tokens.
        assert bucket.try_acquire(1.0)
        assert bucket.try_acquire(1.0)
        assert not bucket.try_acquire(1.0)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=100.0, capacity=5)
        assert bucket.available(1000.0) == 5.0

    def test_failed_acquire_leaves_tokens(self):
        bucket = TokenBucket(rate=1.0, capacity=2)
        bucket.try_acquire(0.0, 2)
        assert not bucket.try_acquire(0.5)  # only 0.5 tokens refilled
        assert bucket.available(0.5) == pytest.approx(0.5)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, capacity=10)
        bucket.try_acquire(5.0)
        before = bucket.available(5.0)
        assert bucket.available(1.0) == before  # stale now is a no-op


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            OverloadConfig(admit_rate=0.0)
        with pytest.raises(ConfigError):
            OverloadConfig(retry_backoff=0.5)
        with pytest.raises(ConfigError):
            OverloadConfig(retry_max_interval=1.0, retry_base=2.0)
        with pytest.raises(ConfigError):
            OverloadConfig(breaker_failure_threshold=0)

    def test_retry_delay_backs_off_and_caps(self):
        config = OverloadConfig(
            retry_base=2.0, retry_backoff=2.0, retry_max_interval=10.0
        )
        assert [config.retry_delay(i) for i in range(4)] == [
            2.0, 4.0, 8.0, 10.0,
        ]

    def test_shed_class_policy(self):
        assert shed_class_for(TrafficKind.SPAM, paid=True) is ShedClass.BULK
        assert shed_class_for(TrafficKind.ZOMBIE, paid=False) is ShedClass.BULK
        assert shed_class_for(TrafficKind.NORMAL, paid=True) is ShedClass.PAID
        assert (
            shed_class_for(TrafficKind.NORMAL, paid=False) is ShedClass.UNPAID
        )
        assert (
            shed_class_for(TrafficKind.MAILING_LIST, paid=True)
            is ShedClass.PAID
        )


class TestDeferredQueue:
    def _item(self, due, shed_class=ShedClass.UNPAID):
        return DeferredItem(payload=None, shed_class=shed_class, due=due, seq=0)

    def test_pop_due_in_time_order(self):
        queue = DeferredQueue(capacity=8)
        for due in (5.0, 1.0, 3.0):
            queue.push(self._item(due))
        assert [i.due for i in queue.pop_due(4.0)] == [1.0, 3.0]
        assert len(queue) == 1

    def test_evict_lowest_prefers_lowest_class_oldest_first(self):
        queue = DeferredQueue(capacity=8)
        queue.push(self._item(1.0, ShedClass.UNPAID))
        queue.push(self._item(2.0, ShedClass.BULK))  # oldest BULK
        queue.push(self._item(3.0, ShedClass.BULK))
        victim = queue.evict_lowest(ShedClass.PAID)
        assert victim is not None
        assert victim.shed_class is ShedClass.BULK and victim.due == 2.0
        assert len(queue) == 2

    def test_evict_lowest_never_evicts_equal_or_higher(self):
        queue = DeferredQueue(capacity=2)
        queue.push(self._item(1.0, ShedClass.PAID))
        assert queue.evict_lowest(ShedClass.PAID) is None
        assert queue.evict_lowest(ShedClass.BULK) is None

    def test_tombstones_skipped_by_pop_and_next_due(self):
        queue = DeferredQueue(capacity=4)
        queue.push(self._item(1.0, ShedClass.BULK))
        queue.push(self._item(2.0, ShedClass.PAID))
        queue.evict_lowest(ShedClass.PAID)
        assert queue.next_due() == 2.0
        assert [i.due for i in queue.pop_due(10.0)] == [2.0]

    def test_peak_size_high_water(self):
        queue = DeferredQueue(capacity=8)
        for due in (1.0, 2.0, 3.0):
            queue.push(self._item(due))
        list(queue.pop_due(10.0))
        queue.push(self._item(4.0))
        assert queue.peak_size == 3


class TestShedAudit:
    def test_ring_bounded_totals_exact(self):
        audit = ShedAudit(cap=3)
        for i in range(10):
            audit.record(float(i), "shed", ShedClass.BULK, f"r{i}")
        audit.record(10.0, "bounce", ShedClass.PAID, "last")
        assert len(audit.records) == 3
        assert audit.records[-1].action == "bounce"
        assert audit.total == 11
        assert audit.totals_by_action == {"shed": 10, "bounce": 1}


class TestAdmissionController:
    def _controller(self, **overrides):
        defaults = dict(
            admit_rate=1.0, admit_burst=2, queue_capacity=2,
            retry_base=1.0, retry_backoff=2.0, retry_max_interval=8.0,
            max_retries=2,
        )
        defaults.update(overrides)
        return AdmissionController("test", OverloadConfig(**defaults))

    def test_accept_defer_shed_progression(self):
        ctl = self._controller()
        verdicts = []
        for _ in range(5):
            verdict = ctl.admit(0.0, ShedClass.UNPAID)
            verdicts.append(verdict)
            if verdict == "defer":
                ctl.defer(0.0, "m", ShedClass.UNPAID)
        assert verdicts == ["accept", "accept", "defer", "defer", "shed"]
        assert ctl.pending == 2
        assert ctl.accounting_delta() == 0

    def test_higher_class_evicts_lower(self):
        ctl = self._controller()
        ctl.admit(0.0, ShedClass.BULK)
        ctl.admit(0.0, ShedClass.BULK)
        for _ in range(2):
            assert ctl.admit(0.0, ShedClass.BULK) == "defer"
            ctl.defer(0.0, "bulk", ShedClass.BULK)
        assert ctl.admit(0.0, ShedClass.PAID) == "defer"  # evicted a BULK
        ctl.defer(0.0, "paid", ShedClass.PAID)
        assert ctl.evicted == 1
        assert ctl.bounced == 1  # the victim is a terminal bounce
        assert ctl.audit.totals_by_action["evict"] == 1
        assert ctl.accounting_delta() == 0

    def test_pump_retries_then_bounces(self):
        ctl = self._controller(admit_rate=0.001, admit_burst=1)
        ctl.admit(0.0, ShedClass.UNPAID)  # drains the only token
        assert ctl.admit(0.0, ShedClass.UNPAID) == "defer"
        ctl.defer(0.0, "m", ShedClass.UNPAID)
        outcomes = []
        t = 0.0
        while ctl.pending and t < 100.0:
            t += 1.0
            outcomes.extend(kind for kind, _ in ctl.pump(t))
        assert outcomes == ["bounce"]
        assert ctl.bounced == 1
        assert ctl.accounting_delta() == 0

    def test_pump_accepts_when_tokens_return(self):
        ctl = self._controller(admit_rate=1.0, admit_burst=1)
        ctl.admit(0.0, ShedClass.PAID)
        ctl.admit(0.0, ShedClass.PAID)
        ctl.defer(0.0, "m", ShedClass.PAID)
        results = list(ctl.pump(5.0))
        assert [kind for kind, _ in results] == ["accept"]
        assert results[0][1].payload == "m"
        assert ctl.accepted_after_defer == 1

    def test_on_bounce_hook_sees_eviction_victims(self):
        seen = []
        ctl = self._controller(queue_capacity=1)
        ctl.on_bounce = lambda now, item, reason: seen.append(item.payload)
        ctl.admit(0.0, ShedClass.BULK)
        ctl.admit(0.0, ShedClass.BULK)
        ctl.admit(0.0, ShedClass.BULK)
        ctl.defer(0.0, "victim", ShedClass.BULK)
        assert ctl.admit(0.0, ShedClass.PAID) == "defer"
        assert seen == ["victim"]


class TestCircuitBreaker:
    def test_opens_after_threshold_and_shorts(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0)
        assert breaker.allow(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(5.0)
        assert breaker.calls_shorted == 1
        assert breaker.times_opened == 1

    def test_half_open_trial_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # the half-open trial
        assert not breaker.allow(10.0)  # only one trial at a time
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_trial_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(15.0)  # timeout restarted at 10.0
        assert breaker.allow(20.0)
        assert breaker.times_opened == 2


def overload_network(**overrides):
    defaults = dict(
        admit_rate=1.0, admit_burst=2, queue_capacity=3,
        retry_base=1.0, retry_backoff=2.0, retry_max_interval=8.0,
        max_retries=2,
    )
    defaults.update(overrides)
    return ZmailNetwork(
        n_isps=2, users_per_isp=4, overload=OverloadConfig(**defaults)
    )


class TestNetworkAdmission:
    def test_statuses_and_identity_direct_mode(self):
        net = overload_network()
        statuses = [
            net.send(Address(0, 0), Address(1, 0), TrafficKind.NORMAL).status
            for _ in range(7)
        ]
        assert statuses[:2] == [SendStatus.SENT_PAID, SendStatus.SENT_PAID]
        assert statuses[2:5] == [SendStatus.DEFERRED] * 3
        assert statuses[5:] == [SendStatus.SHED] * 2
        assert net.overload_pending() == 3
        assert net.drain_overload()
        stats = net.overload_stats()
        assert stats["overload_attempts"] == 7
        assert stats["overload_accepted"] == 5
        assert stats["overload_shed"] == 2
        assert stats["overload_pending"] == 0
        for controller in net.overload_controllers().values():
            assert controller.accounting_delta() == 0
        assert net.total_value() == net.expected_total_value()

    def test_shed_and_deferred_never_touch_ledger(self):
        net = overload_network(admit_rate=0.001, admit_burst=1)
        sender = net.compliant_isps()[0].ledger.user(0)
        balance_before = sender.balance
        net.send(Address(0, 0), Address(1, 0), TrafficKind.NORMAL)  # accept
        spent_one = sender.balance
        for _ in range(5):
            net.send(Address(0, 0), Address(1, 0), TrafficKind.NORMAL)
        assert sender.balance == spent_one == balance_before - 1
        assert net.total_value() == net.expected_total_value()

    def test_paid_mail_sheds_last(self):
        net = overload_network(admit_rate=0.001, admit_burst=1,
                               queue_capacity=2)
        net.send(Address(0, 0), Address(1, 0), TrafficKind.ZOMBIE)  # token
        # Fill the deferred queue with bulk traffic.
        z1 = net.send(Address(0, 1), Address(1, 0), TrafficKind.ZOMBIE).status
        z2 = net.send(Address(0, 2), Address(1, 0), TrafficKind.ZOMBIE).status
        assert (z1, z2) == (SendStatus.DEFERRED, SendStatus.DEFERRED)
        # More bulk sheds; a paid arrival evicts a queued bulk instead.
        assert (
            net.send(Address(0, 3), Address(1, 0), TrafficKind.ZOMBIE).status
            is SendStatus.SHED
        )
        paid = net.send(Address(0, 0), Address(1, 1), TrafficKind.NORMAL)
        assert paid.status is SendStatus.DEFERRED
        controller = net.overload_controllers()[0]
        assert controller.evicted == 1
        assert controller.shed == 1
        queued = [
            item.shed_class
            for _, _, item in controller.queue._heap
            if not item.cancelled
        ]
        assert ShedClass.PAID in queued

    def test_engine_mode_retries_via_timers(self):
        deployment = ChaosDeployment(
            seed=3,
            faults=FaultSpec(),
            n_isps=2,
            users_per_isp=4,
            reconcile_every=500.0,
            overload=OverloadConfig(
                admit_rate=1.0, admit_burst=2, queue_capacity=8,
                retry_base=1.0, retry_backoff=2.0, retry_max_interval=8.0,
                max_retries=4,
            ),
        )
        flood = FloodSpec(
            attacker_isp=0, target_isp=1, rate_per_sec=5.0,
            start=0.0, duration=10.0, kind="normal",
        )
        requests = flood_requests(
            flood, n_isps=2, users_per_isp=4, streams=SeededStreams(5)
        )
        assert deployment.run(requests, until=10.0, drain_window=200.0)
        stats = deployment.stats()
        assert stats["overload_retries"] > 0
        assert stats["overload_violations"] == 0
        assert stats["overload_pending"] == 0
        network = deployment.network
        assert network.total_value() == network.expected_total_value()


class TestFloodSpec:
    def test_validation(self):
        with pytest.raises(SimulationError):
            FloodSpec(rate_per_sec=0.0)
        with pytest.raises(SimulationError):
            FloodSpec(kind="nonsense")
        with pytest.raises(SimulationError):
            list(
                flood_requests(
                    FloodSpec(target_isp=9),
                    n_isps=3, users_per_isp=4, streams=SeededStreams(1),
                )
            )

    def test_deterministic_and_in_window(self):
        spec = FloodSpec(rate_per_sec=20.0, start=5.0, duration=10.0)

        def generate():
            return list(
                flood_requests(
                    spec, n_isps=3, users_per_isp=4,
                    streams=SeededStreams(derive_seed(9, "flood")),
                )
            )

        first, second = generate(), generate()
        assert first == second
        assert first, "a 20/s flood over 10s must produce requests"
        assert all(5.0 <= r.time < 15.0 for r in first)
        assert all(r.sender.isp == 0 and r.recipient.isp == 1 for r in first)


class TestOverloadCampaign:
    def test_builtin_campaign_passes_and_is_deterministic(self):
        first = run_campaign(DEFAULT_OVERLOAD_SPEC)
        second = run_campaign(DEFAULT_OVERLOAD_SPEC)
        assert first == second
        assert first["passed"], [
            (row["cell"], row["first_violation"],
             row["first_overload_violation"])
            for row in first["cells"]
        ]
        flood_row = next(
            row for row in first["cells"] if row["cell"] == "flood-10x"
        )
        assert flood_row["overload_shed"] > 0
        assert flood_row["overload_peak_pending"] <= 64
