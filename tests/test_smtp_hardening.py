"""SMTP server hardening tests: size limits, multi-recipient, pipelining."""

import asyncio

from repro.smtp.message import MailMessage
from repro.smtp.server import SMTPServer


async def raw_exchange(server, script):
    """Drive raw lines; returns all reply codes (greeting first)."""
    host, port = await server.start()
    reader, writer = await asyncio.open_connection(host, port)
    codes = [int((await reader.readline())[:3])]
    for line in script:
        writer.write(line.encode() + b"\r\n")
        await writer.drain()
        codes.append(int((await reader.readline())[:3]))
    writer.close()
    await server.stop()
    return codes


def run(coro):
    return asyncio.run(coro)


class TestMultiRecipient:
    def test_one_envelope_per_recipient(self):
        received = []
        server = SMTPServer(received.append)

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()
            for line in (
                "EHLO me",
                "MAIL FROM:<a@x.example>",
                "RCPT TO:<b@y.example>",
                "RCPT TO:<c@y.example>",
                "RCPT TO:<d@y.example>",
                "DATA",
            ):
                writer.write(line.encode() + b"\r\n")
                await writer.drain()
                await reader.readline()
            writer.write(b"Subject: multi\r\n\r\nbody\r\n.\r\n")
            await writer.drain()
            await reader.readline()
            writer.close()
            await server.stop()

        run(scenario())
        assert [e.rcpt_to for e in received] == [
            "b@y.example", "c@y.example", "d@y.example",
        ]
        assert all(e.message.subject == "multi" for e in received)


class TestOversizeMessage:
    def test_oversize_data_rejected_with_552(self):
        received = []
        server = SMTPServer(received.append)

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()
            for line in (
                "EHLO me",
                "MAIL FROM:<a@x.example>",
                "RCPT TO:<b@y.example>",
                "DATA",
            ):
                writer.write(line.encode() + b"\r\n")
                await writer.drain()
                await reader.readline()
            # Stream > 1 MiB of body without the terminator appearing early.
            chunk = ("x" * 1000 + "\r\n").encode()
            for _ in range(1100):
                writer.write(chunk)
            writer.write(b".\r\n")
            await writer.drain()
            reply = await reader.readline()
            writer.close()
            await server.stop()
            return int(reply[:3])

        code = run(scenario())
        assert code == 552
        assert received == []

    def test_session_usable_after_oversize_rejection(self):
        received = []
        server = SMTPServer(received.append)

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()

            async def command(line):
                writer.write(line.encode() + b"\r\n")
                await writer.drain()
                return int((await reader.readline())[:3])

            await command("EHLO me")
            await command("MAIL FROM:<a@x.example>")
            await command("RCPT TO:<b@y.example>")
            await command("DATA")
            chunk = ("y" * 1000 + "\r\n").encode()
            for _ in range(1100):
                writer.write(chunk)
            writer.write(b".\r\n")
            await writer.drain()
            big = int((await reader.readline())[:3])
            # Retry with a small message on the same session.
            await command("MAIL FROM:<a@x.example>")
            await command("RCPT TO:<b@y.example>")
            await command("DATA")
            writer.write(b"Subject: ok\r\n\r\nsmall\r\n.\r\n")
            await writer.drain()
            small = int((await reader.readline())[:3])
            writer.close()
            await server.stop()
            return big, small

        big, small = run(scenario())
        assert big == 552 and small == 250
        assert len(received) == 1


class TestSessionRobustness:
    def test_commands_after_quit_not_required(self):
        server = SMTPServer(lambda e: None)
        codes = run(raw_exchange(server, ["EHLO me", "QUIT"]))
        assert codes == [220, 250, 221]

    def test_helo_resets_transaction(self):
        server = SMTPServer(lambda e: None)
        codes = run(
            raw_exchange(
                server,
                [
                    "EHLO me",
                    "MAIL FROM:<a@x.example>",
                    "EHLO again",  # implicit RSET per RFC
                    "MAIL FROM:<b@y.example>",
                ],
            )
        )
        assert codes == [220, 250, 250, 250, 250]

    def test_lowercase_commands_accepted(self):
        server = SMTPServer(lambda e: None)
        codes = run(
            raw_exchange(
                server, ["ehlo me", "mail FROM:<a@x.example>", "noop"]
            )
        )
        assert codes == [220, 250, 250, 250]

    def test_sessions_served_counter(self):
        server = SMTPServer(lambda e: None)

        async def scenario():
            host, port = await server.start()
            for _ in range(3):
                reader, writer = await asyncio.open_connection(host, port)
                await reader.readline()
                writer.write(b"QUIT\r\n")
                await writer.drain()
                await reader.readline()
                writer.close()
            await server.stop()

        run(scenario())
        assert server.sessions_served == 3


class TestOverloadHardening:
    def test_connection_cap_replies_421(self):
        server = SMTPServer(lambda e: None, max_connections=2)

        async def scenario():
            host, port = await server.start()
            # Two sessions fill the cap; keep them open.
            held = []
            for _ in range(2):
                reader, writer = await asyncio.open_connection(host, port)
                await reader.readline()
                held.append((reader, writer))
            # The third is greeted with 421 and closed.
            reader, writer = await asyncio.open_connection(host, port)
            over_cap = int((await reader.readline())[:3])
            eof = await reader.readline()
            writer.close()
            # Release a slot; a new connection is welcome again.
            held[0][1].write(b"QUIT\r\n")
            await held[0][1].drain()
            await held[0][0].readline()
            held[0][1].close()
            await held[0][1].wait_closed()
            reader, writer = await asyncio.open_connection(host, port)
            after_release = int((await reader.readline())[:3])
            writer.close()
            held[1][1].close()
            await server.stop()
            return over_cap, eof, after_release

        over_cap, eof, after_release = run(scenario())
        assert over_cap == 421
        assert eof == b""  # server hung up after the 421
        assert after_release == 220
        assert server.connections_rejected == 1
        assert server.sessions_served == 3

    def test_command_budget_closes_with_421(self):
        server = SMTPServer(lambda e: None, max_session_commands=3)
        codes = run(
            raw_exchange(server, ["NOOP", "NOOP", "NOOP", "NOOP"])
        )
        assert codes == [220, 250, 250, 250, 421]
        assert server.sessions_capped == 1

    def test_error_budget_closes_with_421(self):
        server = SMTPServer(lambda e: None, max_session_errors=2)
        codes = run(
            raw_exchange(server, ["BOGUS", "WAT", "HUH"])
        )
        # Two 500s exhaust the budget; the next command gets 421.
        assert codes == [220, 500, 500, 421]
        assert server.sessions_capped == 1

    def test_well_behaved_session_untouched_by_budgets(self):
        server = SMTPServer(
            lambda e: None, max_session_commands=10, max_session_errors=1
        )
        codes = run(
            raw_exchange(
                server,
                [
                    "EHLO me",
                    "MAIL FROM:<a@x.example>",
                    "RCPT TO:<b@y.example>",
                    "RSET",
                    "QUIT",
                ],
            )
        )
        assert codes == [220, 250, 250, 250, 250, 221]
        assert server.sessions_capped == 0

    def test_admission_gate_tempfails_mail_with_451(self):
        received = []
        overloaded = [True]
        server = SMTPServer(
            received.append, admission=lambda: not overloaded[0]
        )

        async def scenario():
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()

            async def command(line):
                writer.write(line.encode() + b"\r\n")
                await writer.drain()
                return int((await reader.readline())[:3])

            await command("EHLO me")
            saturated = await command("MAIL FROM:<a@x.example>")
            overloaded[0] = False  # pressure relieved; same session retries
            retried = await command("MAIL FROM:<a@x.example>")
            await command("RCPT TO:<b@y.example>")
            await command("DATA")
            writer.write(b"Subject: later\r\n\r\nbody\r\n.\r\n")
            await writer.drain()
            accepted = int((await reader.readline())[:3])
            writer.close()
            await server.stop()
            return saturated, retried, accepted

        saturated, retried, accepted = run(scenario())
        assert saturated == 451
        assert retried == 250
        assert accepted == 250
        assert server.mail_tempfailed == 1
        assert len(received) == 1

    def test_budget_validation(self):
        import pytest

        with pytest.raises(ValueError):
            SMTPServer(lambda e: None, max_connections=0)
        with pytest.raises(ValueError):
            SMTPServer(lambda e: None, max_session_errors=0)
