"""Schema property tests: canonical form is a fixed point, errors are loud.

The scenario schema's contract: ``validate`` normalizes any accepted
document into canonical fully-defaulted form (idempotent, and identical
after a dump/parse round trip), and rejects everything else with a
:class:`SimulationError` naming the offending path. The generator's
contract: every seed maps to one valid world, deterministically.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.scenario import (
    SCHEMA_VERSION,
    canonical_dump,
    generate_doc,
    parse,
    scenario_digest,
    validate,
)
from repro.sim.clock import DAY, HOUR

SCHEMA_SETTINGS = settings(max_examples=30, deadline=None, derandomize=True)


def base_doc(**overrides):
    """A small valid document; keyword overrides replace whole sections."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "name": "unit",
        "seed": 3,
        "topology": {"n_isps": 3, "users_per_isp": 4},
        "traffic": {"duration": 6 * HOUR, "normal_rate_per_day": 4.0},
    }
    doc.update(overrides)
    return doc


# -- canonical form ----------------------------------------------------------


@given(seed=st.integers(0, 2**32 - 1))
@SCHEMA_SETTINGS
def test_generated_worlds_round_trip_identically(seed):
    doc = generate_doc(seed)
    assert validate(doc) == doc, "validate must be idempotent"
    assert parse(canonical_dump(doc)) == doc, "dump/parse must round-trip"
    assert scenario_digest(doc) == scenario_digest(parse(canonical_dump(doc)))


@given(seed=st.integers(0, 2**32 - 1))
@SCHEMA_SETTINGS
def test_generator_is_deterministic(seed):
    assert generate_doc(seed) == generate_doc(seed)


def test_defaults_are_materialized():
    doc = validate(base_doc())
    assert doc["economics"]["default_daily_limit"] == 200
    assert doc["economics"]["reconciliation_period"] == 30 * DAY
    assert doc["traffic"]["spammers"] == []
    assert doc["reconcile"]["every"] == 0.0
    assert doc["faults"]["drop_rate"] == 0.0
    assert doc["overload"]["enabled"] is False
    assert doc["chaos"]["drain_window"] == 900.0
    assert doc["cluster"] == {"shards": 1, "epoch": HOUR, "lag": 0}
    assert doc["crashes"] == []


def test_yaml_and_json_parse_to_the_same_document():
    yaml_text = (
        "schema_version: 1\n"
        "name: unit\n"
        "seed: 3\n"
        "topology:\n  n_isps: 3\n  users_per_isp: 4\n"
        "traffic:\n  duration: 21600.0\n  normal_rate_per_day: 4.0\n"
    )
    assert parse(yaml_text) == validate(base_doc(schema_version=1))


def test_digest_tracks_content_not_key_order():
    doc = base_doc()
    reordered = dict(reversed(list(doc.items())))
    assert scenario_digest(doc) == scenario_digest(reordered)
    other = base_doc(seed=4)
    assert scenario_digest(doc) != scenario_digest(other)


# -- loud rejection ----------------------------------------------------------


@pytest.mark.parametrize(
    "mutate, pattern",
    [
        (lambda d: d.pop("schema_version"), "no schema_version"),
        (lambda d: d.update(schema_version=99), "not supported"),
        (lambda d: d.pop("name"), "name: required"),
        (lambda d: d.update(name=""), "name: required"),
        (lambda d: d.update(wat=1), "unknown keys.*wat"),
        (lambda d: d["topology"].update(wat=1), "topology: unknown keys"),
        (lambda d: d["topology"].update(n_isps="three"),
         "topology.n_isps: expected an integer"),
        (lambda d: d["topology"].update(n_isps=0), "must be >= 1"),
        (lambda d: d["topology"].update(noncompliant=[7]),
         "noncompliant: ISP 7 outside"),
        (lambda d: d["topology"].update(noncompliant=[1, 1]),
         "duplicate ISP ids"),
        (lambda d: d.update(economics={"minavail": 9, "maxavail": 1}),
         "minavail exceeds maxavail"),
        (lambda d: d.update(
            economics={"noncompliant_policy": "vaporize"}),
         "noncompliant_policy: must be one of"),
        (lambda d: d["traffic"].update(duration=0), "must be > 0"),
        (lambda d: d["traffic"].update(spammers={}), "expected a list"),
        (lambda d: d["traffic"].update(spammers=[{"user": 0, "volume": 5}]),
         r"spammers\[0\].isp: required"),
        (lambda d: d["traffic"].update(
            spammers=[{"isp": 9, "volume": 5}]),
         r"spammers\[0\].isp: ISP 9 outside"),
        (lambda d: d["traffic"].update(
            zombies=[{"isp": 0, "user": 9, "rate_per_hour": 5.0,
                      "start": 0.0, "end": 60.0}]),
         r"zombies\[0\].user: user 9 outside"),
        (lambda d: d["traffic"].update(
            zombies=[{"isp": 0, "rate_per_hour": 5.0,
                      "start": 60.0, "end": 60.0}]),
         "end must exceed start"),
        (lambda d: d["traffic"].update(
            floods=[{"attacker_isp": 1, "target_isp": 1,
                     "rate_per_sec": 2.0}]),
         "attacker and target"),
        (lambda d: d["traffic"].update(
            floods=[{"attacker_isp": 1, "target_isp": 5,
                     "rate_per_sec": 2.0}]),
         r"floods\[0\].target_isp: ISP 5 outside"),
        (lambda d: d["traffic"].update(
            floods=[{"attacker_isp": 0, "target_isp": 1,
                     "rate_per_sec": 2.0, "kind": "friendly"}]),
         "kind: must be one of"),
        (lambda d: d.update(
            faults={"drop_rate": 1.5}), "probability"),
        (lambda d: d.update(
            overload={"enabled": "yes"}), "expected a boolean"),
        (lambda d: d.update(
            crashes=[{"node": "isp9", "at": 1.0, "down_for": 1.0}]),
         "neither 'bank' nor"),
        (lambda d: d.update(
            crashes=[{"node": "router", "at": 1.0, "down_for": 1.0}]),
         "neither 'bank' nor"),
        (lambda d: d.update(cluster={"shards": 5}), "cannot partition"),
        (lambda d: d.update(cluster={"shards": 2, "epoch": 7 * HOUR}),
         "does not tile"),
        (lambda d: d.update(chaos={"cell": ""}), "chaos.cell"),
    ],
)
def test_invalid_documents_are_rejected_loudly(mutate, pattern):
    doc = base_doc()
    mutate(doc)
    with pytest.raises(SimulationError, match=pattern):
        validate(doc)


def test_non_mapping_inputs_are_rejected():
    with pytest.raises(SimulationError, match="must be a mapping"):
        validate([1, 2, 3])
    with pytest.raises(SimulationError, match="must be a mapping"):
        parse("[1, 2, 3]")
    with pytest.raises(SimulationError, match="parses as neither JSON"):
        parse("{unparseable: [")


def test_epoch_must_tile_reconcile_when_sharded():
    doc = base_doc(
        reconcile={"every": 90 * 60.0},  # 1.5h
        cluster={"shards": 2, "epoch": HOUR},
    )
    with pytest.raises(SimulationError, match="reconcile.every"):
        validate(doc)


# -- the v2 ``strategies`` term ----------------------------------------------


def strategies_doc(**strategy_overrides):
    """A valid v2 document with a strategies term (6h of background)."""
    strategies = {
        "periods": 1,
        "attacker": {"name": "static", "isp": 0, "user": 0},
        "defender": {"name": "zmail_static"},
    }
    strategies.update(strategy_overrides)
    return base_doc(
        schema_version=2,
        traffic={"duration": float(DAY), "normal_rate_per_day": 4.0},
        strategies=strategies,
    )


def test_v1_canonical_form_has_no_strategies_key():
    # The bump to SCHEMA_VERSION 2 must not disturb v1 worlds: their
    # canonical bytes (and so every pinned digest) are version-stable.
    doc = validate(base_doc(schema_version=1))
    assert doc["schema_version"] == 1
    assert "strategies" not in doc
    assert "strategies" not in canonical_dump(doc)


def test_v2_materializes_strategy_defaults():
    doc = validate(strategies_doc())
    strategies = doc["strategies"]
    assert strategies["attacker"]["params"]["volume"] == 200
    assert strategies["defender"]["params"] == {}
    assert strategies["market"]["epenny_dollars"] == 0.01
    assert strategies["market"]["conversion_rate"] == 0.0005
    # Canonical-form contract extends to the new term.
    assert validate(doc) == doc
    assert parse(canonical_dump(doc)) == doc
    assert scenario_digest(doc) == scenario_digest(parse(canonical_dump(doc)))


def test_v2_without_strategies_materializes_null():
    doc = base_doc(schema_version=2)
    assert validate(doc)["strategies"] is None


def test_strategies_digest_tracks_strategy_content():
    a = validate(strategies_doc())
    b = strategies_doc()
    b["strategies"]["attacker"]["params"] = {"volume": 999}
    assert scenario_digest(a) != scenario_digest(validate(b))


@pytest.mark.parametrize(
    "mutate, pattern",
    [
        (lambda s: s.update(attacker={"name": "nope"}),
         "not a known strategy"),
        (lambda s: s.update(defender={"name": "nope"}),
         "not a known strategy"),
        (lambda s: s.pop("attacker"), "strategies.attacker: required"),
        (lambda s: s.pop("defender"), "strategies.defender: required"),
        (lambda s: s.update(wat=1), "strategies: unknown keys"),
        (lambda s: s["attacker"].update(wat=1),
         "strategies.attacker: unknown keys"),
        (lambda s: s["attacker"].update(params={"wat": 1}),
         "strategies.attacker.params: unknown keys"),
        (lambda s: s["attacker"].update(params={"volume": 0}),
         "must be >= 1"),
        (lambda s: s.update(periods=0), "strategies.periods"),
        (lambda s: s.update(periods=99), "do not fit traffic.duration"),
        (lambda s: s["attacker"].update(isp=7),
         "strategies.attacker.isp: ISP 7 outside"),
        (lambda s: s.update(market={"epenny_dollars": "cheap"}),
         "strategies.market.epenny_dollars"),
    ],
)
def test_invalid_strategies_are_rejected_loudly(mutate, pattern):
    doc = strategies_doc()
    mutate(doc["strategies"])
    with pytest.raises(SimulationError, match=pattern):
        validate(doc)


def test_strategies_key_is_loudly_v2_only():
    doc = strategies_doc()
    doc["schema_version"] = 1
    with pytest.raises(SimulationError, match="requires schema_version 2"):
        validate(doc)


def test_colluding_isp_resolution_and_bounds():
    doc = strategies_doc(
        attacker={
            "name": "epenny_wash",
            "isp": 0,
            "user": 0,
            "params": {"colluding_isp": -1},
        }
    )
    out = validate(doc)
    # -1 is preserved in canonical form (resolution happens at match
    # time) but must resolve to a compliant ISP in range.
    assert out["strategies"]["attacker"]["params"]["colluding_isp"] == -1
    bad = strategies_doc(
        attacker={
            "name": "epenny_wash",
            "isp": 0,
            "user": 0,
            "params": {"colluding_isp": 9},
        }
    )
    with pytest.raises(SimulationError, match="ISP 9 outside"):
        validate(bad)


def test_colluding_isp_must_be_compliant():
    doc = strategies_doc(
        attacker={
            "name": "epenny_wash",
            "isp": 0,
            "user": 0,
            "params": {"colluding_isp": 2},
        }
    )
    doc["topology"]["noncompliant"] = [2]
    with pytest.raises(SimulationError, match="compliant"):
        validate(doc)
