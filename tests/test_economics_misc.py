"""Tests for user flows, ISP costs, market projection and adoption sweeps."""

import pytest

from repro.core import ZmailNetwork
from repro.economics.adoption import sweep_policies, sweep_propensity
from repro.economics.isp_costs import (
    SPAM_SHARE_2001,
    SPAM_SHARE_2004,
    ISPCostModel,
)
from repro.economics.market import project_market
from repro.economics.spammer import CampaignModel
from repro.economics.user_flows import (
    analyze_user_flows,
    required_buffer,
)
from repro.sim import DAY, Address, SeededStreams
from repro.sim.workload import NormalUserWorkload


class TestUserFlows:
    def drive_balanced_network(self, days=5):
        net = ZmailNetwork(n_isps=3, users_per_isp=10, seed=6)
        workload = NormalUserWorkload(
            n_isps=3, users_per_isp=10, rate_per_day=8.0,
            streams=SeededStreams(6),
        )
        net.run_workload(workload.generate(days * DAY))
        return net

    def test_mean_net_flow_near_zero(self):
        """§1.2 claim 2: balanced users neither pay nor profit."""
        net = self.drive_balanced_network()
        summary = analyze_user_flows(net)
        assert summary.users == 30
        assert abs(summary.mean_net_flow) < 0.5
        # Mean flow over all users is exactly zero iff all mail is internal:
        assert summary.mean_sent == pytest.approx(summary.mean_received)

    def test_exclusion_removes_outliers(self):
        net = self.drive_balanced_network()
        spammer = Address(0, 0)
        for i in range(200):
            net.send(spammer, Address(1, i % 10))
        with_spammer = analyze_user_flows(net)
        without = analyze_user_flows(net, exclude={spammer})
        assert without.min_net_flow > with_spammer.min_net_flow

    def test_fraction_within_tolerance(self):
        net = self.drive_balanced_network()
        summary = analyze_user_flows(net, tolerance=10_000)
        assert summary.fraction_within == 1.0

    def test_empty_network(self):
        net = ZmailNetwork(n_isps=1, users_per_isp=1)
        summary = analyze_user_flows(
            net, exclude={Address(0, 0)}
        )
        assert summary.users == 0
        assert summary.mean_net_flow == 0.0


class TestRequiredBuffer:
    def test_scales_with_sqrt_time(self):
        b30 = required_buffer(10, 30)
        b120 = required_buffer(10, 120)
        assert b120 == pytest.approx(2 * b30, rel=0.05)

    def test_higher_confidence_needs_more(self):
        assert required_buffer(10, 30, confidence=0.999) > required_buffer(
            10, 30, confidence=0.9
        )

    def test_zero_rate_needs_nothing(self):
        assert required_buffer(0, 30) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_buffer(-1, 30)
        with pytest.raises(ValueError):
            required_buffer(10, 30, confidence=0.3)

    def test_paper_scale_buffer_is_small_dollars(self):
        """A normal user's float is pocket change — the paper's point that
        initial balances are a non-issue for normal users."""
        epennies = required_buffer(20, 30, confidence=0.99)
        assert epennies < 200  # under $2.00


class TestISPCosts:
    def test_spam_shares_cited(self):
        assert SPAM_SHARE_2001 == 0.08
        assert SPAM_SHARE_2004 == 0.60

    def test_cost_grows_with_spam_share(self):
        model = ISPCostModel()
        assert (
            model.annual_cost(SPAM_SHARE_2004).total
            > model.annual_cost(SPAM_SHARE_2001).total
        )

    def test_message_volume_inflation(self):
        model = ISPCostModel(legitimate_messages_per_year=1e6)
        assert model.message_volume(0.6) == pytest.approx(2.5e6)

    def test_spam_attributable_cost_positive(self):
        assert ISPCostModel().spam_attributable_cost(0.6) > 0

    def test_saving_from_reduction(self):
        model = ISPCostModel()
        saving = model.saving_from_reduction(0.6, 0.05)
        assert saving > 0
        # Retiring the filter saves more than keeping it.
        keep = model.saving_from_reduction(0.6, 0.05, filter_retired=False)
        assert saving > keep

    def test_invalid_share(self):
        with pytest.raises(ValueError):
            ISPCostModel().message_volume(1.0)


class TestMarketProjection:
    def test_spam_share_collapses(self):
        campaigns = [
            CampaignModel(1_000_000, 0.00003, 25.0),
            CampaignModel(1_000_000, 0.002, 30.0),
        ]
        before, after = project_market(campaigns=campaigns)
        assert before.spam_share == pytest.approx(0.6, abs=0.01)
        assert after.spam_share < 0.35
        assert after.spam_volume < before.spam_volume

    def test_isp_cost_falls(self):
        campaigns = [CampaignModel(1_000_000, 0.00003, 25.0)]
        before, after = project_market(campaigns=campaigns)
        assert after.isp_annual_cost < before.isp_annual_cost

    def test_empty_campaigns_rejected(self):
        with pytest.raises(ValueError):
            project_market(campaigns=[])


class TestAdoptionSweeps:
    def test_policy_sweep_covers_all_policies(self):
        outcomes = sweep_policies(n_isps=40, seed=2)
        assert len(outcomes) == 4
        assert all(o.final_fraction > 0.9 for o in outcomes)

    def test_propensity_sweep_ordering(self):
        outcomes = sweep_propensity([0.05, 0.5], n_isps=40, seed=2)
        slow, fast = outcomes
        assert (fast.rounds_to_90pct or 999) <= (slow.rounds_to_90pct or 999)


class TestProductivityLoss:
    def test_gartner_figure_reproduced(self):
        """The paper's Gartner citation: ~$300k/yr for 1,000 employees."""
        from repro.economics import productivity_loss_annual

        loss = productivity_loss_annual(employees=1000, seconds_per_spam=10.0)
        assert 250_000 < loss < 400_000

    def test_scales_linearly_with_employees(self):
        from repro.economics import productivity_loss_annual

        one = productivity_loss_annual(employees=100)
        ten = productivity_loss_annual(employees=1000)
        assert ten == pytest.approx(10 * one)

    def test_zero_employees_zero_loss(self):
        from repro.economics import productivity_loss_annual

        assert productivity_loss_annual(employees=0) == 0.0

    def test_negative_rejected(self):
        from repro.economics import productivity_loss_annual

        with pytest.raises(ValueError):
            productivity_loss_annual(employees=-1)


class TestSpamShareTimeline:
    def make(self):
        from repro.economics.timeline import SpamShareTimeline

        return SpamShareTimeline.fit()

    def test_fits_cited_points_exactly(self):
        timeline = self.make()
        assert timeline.share(2001.0) == pytest.approx(0.08, abs=1e-9)
        assert timeline.share(2004.25) == pytest.approx(0.60, abs=1e-9)

    def test_trend_keeps_growing_unchecked(self):
        timeline = self.make()
        assert timeline.share(2006.0) > 0.8
        assert timeline.share(2010.0) > 0.95

    def test_year_reaching_inverts_share(self):
        timeline = self.make()
        year = timeline.year_reaching(0.9)
        assert timeline.share(year) == pytest.approx(0.9, abs=1e-9)

    def test_zmail_bends_the_curve(self):
        timeline = self.make()
        unchecked = timeline.share(2007.0)
        with_zmail = timeline.with_zmail(2007.0, adopted_at=2005.0)
        assert with_zmail < unchecked
        # Long-run: only the surviving targeted volume remains.
        assert timeline.with_zmail(2015.0, adopted_at=2005.0) == pytest.approx(
            0.1, abs=0.01
        )

    def test_before_adoption_matches_trend(self):
        timeline = self.make()
        assert timeline.with_zmail(2003.0, adopted_at=2005.0) == pytest.approx(
            timeline.share(2003.0)
        )

    def test_validation(self):
        from repro.economics.timeline import SpamShareTimeline

        with pytest.raises(ValueError):
            SpamShareTimeline.fit(share_a=0.0)
        with pytest.raises(ValueError):
            SpamShareTimeline.fit(year_b=2000.0)
        with pytest.raises(ValueError):
            self.make().year_reaching(1.5)
