"""Tests for the virtual clock and time helpers."""

import pytest

from repro.sim.clock import DAY, HOUR, MINUTE, MONTH, SECOND, WEEK, Clock, format_time


class TestConstants:
    def test_units_compose(self):
        assert MINUTE == 60 * SECOND
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert MONTH == 30 * DAY


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_ok(self):
        clock = Clock()
        clock.advance_to(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_backwards_rejected(self):
        clock = Clock()
        clock.advance_to(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.0)

    def test_advance_by(self):
        clock = Clock()
        clock.advance_by(3.5)
        clock.advance_by(1.5)
        assert clock.now == 5.0

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Clock().advance_by(-1.0)

    def test_day_index(self):
        clock = Clock()
        assert clock.day == 0
        clock.advance_to(DAY * 2 + HOUR)
        assert clock.day == 2

    def test_seconds_into_day(self):
        clock = Clock()
        clock.advance_to(DAY + 90.0)
        assert clock.seconds_into_day == pytest.approx(90.0)


class TestFormatTime:
    def test_zero(self):
        assert format_time(0.0) == "0d00:00:00.000"

    def test_composite(self):
        t = 2 * DAY + 3 * HOUR + 4 * MINUTE + 5.25
        assert format_time(t) == "2d03:04:05.250"

    def test_subsecond(self):
        assert format_time(0.5) == "0d00:00:00.500"
