"""Tests for the synthetic corpus generator."""

import random

import pytest

from repro.spamcorpus.datasets import make_dataset
from repro.spamcorpus.generator import CorpusGenerator
from repro.spamcorpus.vocabulary import SPAM_WORDS, Vocabulary, misspell


class TestVocabulary:
    def test_pools_nonempty_and_disjointish(self):
        vocab = Vocabulary()
        assert vocab.ham and vocab.spam and vocab.common
        assert not set(vocab.ham) & set(vocab.spam)

    def test_extra_overlap_grows_common_pool(self):
        plain = Vocabulary()
        overlapped = Vocabulary(extra_overlap=0.5, seed=1)
        assert len(overlapped.common) > len(plain.common)

    def test_overlap_bounds(self):
        with pytest.raises(ValueError):
            Vocabulary(extra_overlap=1.5)


class TestMisspell:
    def test_never_identity(self):
        rng = random.Random(0)
        for word in SPAM_WORDS:
            assert misspell(word, rng) != word

    def test_deterministic_with_seed(self):
        assert misspell("viagra", random.Random(3)) == misspell(
            "viagra", random.Random(3)
        )

    def test_short_word(self):
        assert misspell("x", random.Random(0)) == "x."


class TestGenerator:
    def test_labels(self):
        gen = CorpusGenerator(seed=1)
        assert gen.spam().is_spam
        assert not gen.ham().is_spam

    def test_min_length(self):
        gen = CorpusGenerator(seed=1, mean_length=5)
        for _ in range(50):
            assert len(gen.spam().tokens) >= 5

    def test_spam_contains_spam_words(self):
        gen = CorpusGenerator(seed=2)
        spam_vocab = set(gen.vocabulary.spam)
        hits = sum(
            1 for _ in range(20) if set(gen.spam().tokens) & spam_vocab
        )
        assert hits >= 18

    def test_ham_avoids_spam_words(self):
        gen = CorpusGenerator(seed=2)
        spam_vocab = set(gen.vocabulary.spam)
        for _ in range(20):
            assert not set(gen.ham().tokens) & spam_vocab

    def test_evasion_marks_message(self):
        gen = CorpusGenerator(seed=3)
        evaded = [gen.spam(evasion_rate=1.0) for _ in range(10)]
        assert all(m.evasive for m in evaded)
        clean = [gen.spam(evasion_rate=0.0) for _ in range(10)]
        assert not any(m.evasive for m in clean)

    def test_evasion_removes_known_tokens(self):
        gen = CorpusGenerator(seed=4)
        spam_vocab = set(gen.vocabulary.spam)
        evaded = gen.spam(evasion_rate=1.0)
        assert not set(evaded.tokens) & spam_vocab

    def test_corpus_counts(self):
        gen = CorpusGenerator(seed=5)
        corpus = gen.corpus(n_ham=30, n_spam=20)
        assert len(corpus) == 50
        assert sum(m.is_spam for m in corpus) == 20

    def test_reproducible(self):
        a = CorpusGenerator(seed=6).corpus(n_ham=10, n_spam=10)
        b = CorpusGenerator(seed=6).corpus(n_ham=10, n_spam=10)
        assert [m.tokens for m in a] == [m.tokens for m in b]

    def test_to_mail(self):
        message = CorpusGenerator(seed=7).spam()
        mail = message.to_mail(sender="s@x.example", recipient="r@y.example")
        assert mail.sender == "s@x.example"
        assert mail.body == message.text


class TestDatasets:
    def test_split_sizes_and_shares(self):
        dataset = make_dataset(n_train=100, n_test=50, spam_fraction=0.6, seed=1)
        assert len(dataset.train) == 100
        assert len(dataset.test) == 50
        assert dataset.train_spam_fraction == pytest.approx(0.6, abs=0.01)

    def test_train_test_independent(self):
        dataset = make_dataset(n_train=50, n_test=50, seed=2)
        train_tokens = {m.tokens for m in dataset.train}
        test_tokens = {m.tokens for m in dataset.test}
        assert train_tokens != test_tokens

    def test_test_only_evasion(self):
        dataset = make_dataset(
            n_train=40, n_test=40, evasion_rate=0.0, test_evasion_rate=1.0,
            seed=3,
        )
        assert not any(m.evasive for m in dataset.train)
        assert any(m.evasive for m in dataset.test if m.is_spam)
