"""Smoke-run every example script and the library's doctest examples.

Examples are user-facing entry points; if one bit-rots the README lies.
Each runs in-process (imported as a module and ``main()`` invoked) so
assertions inside the examples execute under pytest too.
"""

import doctest
import importlib
import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLE_SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

DOCTEST_MODULES = [
    "repro.sim.engine",
    "repro.sim.network",
    "repro.sim.rng",
    "repro.sim.reliable",
    "repro.apn.scheduler",
    "repro.core.bank",
    "repro.core.protocol",
    "repro.core.multibank",
    "repro.baselines.bayes_filter",
    "repro.baselines.shred",
    "repro.smtp.transport",
]


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        assert len(EXAMPLE_SCRIPTS) >= 3  # the deliverable minimum
        assert "quickstart.py" in EXAMPLE_SCRIPTS

    @pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
    def test_example_runs_clean(self, script, capsys):
        module = load_example(script)
        module.main()
        out = capsys.readouterr().out
        assert out.strip()  # every example narrates something


class TestDoctests:
    @pytest.mark.parametrize("module_name", DOCTEST_MODULES)
    def test_module_doctests(self, module_name):
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module_name}: {results.failed} failed"

    def test_doctests_actually_present(self):
        """Guard against the list silently testing nothing."""
        total = 0
        for module_name in DOCTEST_MODULES:
            module = importlib.import_module(module_name)
            finder = doctest.DocTestFinder()
            total += sum(
                len(test.examples) for test in finder.find(module)
            )
        assert total >= 10
