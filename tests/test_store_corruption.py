"""Corruption fuzzing: every mutation must fail loudly, never mis-load.

The contract under test is the one that matters for money: a corrupted
journal or store may only ever produce a ``SimulationError`` — loading a
*wrong* ledger silently is the single unacceptable outcome. Each fuzz
case mutates a sealed ISP journal, bank journal, or the SQLite store
file (truncation, bit flips, extra bytes) and asserts the load either
raises or — for store-file mutations that happen to hit dead space —
yields a ledger identical to the pristine one.
"""

import json
import random

import pytest

from repro.core import ZmailNetwork
from repro.core.persistence import (
    bank_state,
    isp_state,
    load_bank_state,
    load_isp_state,
)
from repro.errors import SimulationError
from repro.sim import Address
from repro.store import (
    DurableStore,
    attach_tracker,
    commit_network,
    durable_digest,
    init_store,
    restore_network,
    seal,
    unseal,
)

N_MUTATIONS = 60


def _traffic(network):
    tracker = attach_tracker(network)
    for i in range(30):
        network.send(Address(i % 3, i % 4), Address((i + 1) % 3, (i + 2) % 4))
    return tracker


def _mutations(rng, blob: bytes):
    """Yield corrupted variants: truncations, bit flips, insertions."""
    for _ in range(N_MUTATIONS // 3):
        cut = rng.randrange(len(blob))
        yield blob[:cut]
    for _ in range(N_MUTATIONS // 3):
        pos = rng.randrange(len(blob))
        flipped = blob[pos] ^ (1 << rng.randrange(8))
        yield blob[:pos] + bytes([flipped]) + blob[pos + 1 :]
    for _ in range(N_MUTATIONS // 3):
        pos = rng.randrange(len(blob) + 1)
        junk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
        yield blob[:pos] + junk + blob[pos:]


class TestSealedJournalFuzz:
    """Mutating a sealed journal must raise, never rebuild wrong state."""

    def _fuzz_sealed(self, state, load, fresh):
        rng = random.Random(1234)
        sealed = seal(state, kind="crash-journal", key="node").encode("utf-8")
        raised = 0
        for mutant in _mutations(rng, sealed):
            try:
                text = mutant.decode("utf-8")
            except UnicodeDecodeError:
                raised += 1  # unreadable is as loud as it gets
                continue
            try:
                value = unseal(text, kind="crash-journal", key="node")
                load(fresh(), value)
            except SimulationError:
                raised += 1
            else:
                # A mutation may cancel out only by reproducing the
                # original bytes; anything else must have raised.
                assert mutant == sealed, (
                    f"corrupted journal loaded silently: {mutant[:80]!r}"
                )
        assert raised >= N_MUTATIONS * 0.9

    def test_isp_journal(self):
        network = ZmailNetwork(n_isps=3, users_per_isp=4, seed=77)
        _traffic(network)
        state = isp_state(network.isps[0])

        def load(net, value):
            load_isp_state(net.isps[0], value)

        self._fuzz_sealed(
            state,
            load,
            lambda: ZmailNetwork(n_isps=3, users_per_isp=4, seed=77),
        )

    def test_bank_journal(self):
        network = ZmailNetwork(n_isps=3, users_per_isp=4, seed=78)
        _traffic(network)
        state = bank_state(network.bank)

        def load(net, value):
            load_bank_state(net.bank, value)

        self._fuzz_sealed(
            state,
            load,
            lambda: ZmailNetwork(n_isps=3, users_per_isp=4, seed=78),
        )

    def test_payload_digit_flip_caught(self):
        # The classic checksumless failure: one digit changed in a value
        # that still parses as valid JSON. The record checksum must catch
        # what a parser cannot.
        network = ZmailNetwork(n_isps=3, users_per_isp=4, seed=5)
        _traffic(network)
        sealed = seal(bank_state(network.bank), kind="crash-journal", key="bank")
        payload = json.loads(sealed)["payload"]
        digits = [i for i, ch in enumerate(payload) if ch.isdigit()]
        flips = 0
        for index in digits:
            new_digit = "3" if payload[index] != "3" else "4"
            tampered_payload = payload[:index] + new_digit + payload[index + 1 :]
            envelope = json.loads(sealed)
            envelope["payload"] = tampered_payload
            with pytest.raises(SimulationError):
                unseal(
                    json.dumps(envelope), kind="crash-journal", key="bank"
                )
            flips += 1
        assert flips > 10


class TestStoreFileFuzz:
    """Mutating the SQLite file: raise, or load the *identical* ledger.

    SQLite files contain free pages and slack space, so a mutation can
    land somewhere harmless; the assertion is therefore two-sided —
    either the load fails loudly or the restored network is
    digest-identical to the pristine one. A wrong ledger fails the test.
    """

    @pytest.fixture
    def populated(self, tmp_path):
        path = str(tmp_path / "fuzz.db")
        network = ZmailNetwork(n_isps=3, users_per_isp=4, seed=99)
        store = DurableStore.create(path)
        init_store(store, network)
        tracker = _traffic(network)
        commit_network(store, network, tracker, barrier=1)
        store.close()
        return path, durable_digest(network)

    def test_fuzzed_store_never_wrong(self, tmp_path, populated):
        path, pristine = populated
        with open(path, "rb") as handle:
            blob = handle.read()
        rng = random.Random(4321)
        raised = clean = 0
        for index, mutant in enumerate(_mutations(rng, blob)):
            target = str(tmp_path / f"mutant{index}.db")
            with open(target, "wb") as handle:
                handle.write(mutant)
            try:
                with DurableStore.open(target) as store:
                    store.verify()
                    digest = durable_digest(restore_network(store))
            except SimulationError:
                raised += 1
            else:
                assert digest == pristine, (
                    f"mutation {index} silently produced a wrong ledger"
                )
                clean += 1
        assert raised + clean == N_MUTATIONS
        assert raised > 0, "no mutation was even detected — fuzz too weak"

    def test_truncated_store_raises(self, populated):
        path, _ = populated
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(SimulationError):
            with DurableStore.open(path) as store:
                store.verify()
                restore_network(store)
