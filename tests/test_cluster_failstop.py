"""Worker fail-stop: crash detection, journal restart, convergence.

The acceptance oracle: killing a shard worker mid-run is detected at
the barrier, the worker restarts from its journaled state via the
persistence machinery, and the run converges to the *fault-free*
digests — crash recovery is invisible in the results, visible only in
the restart counters. Inline kills are deterministic and traced (the
coverage tracer sees the whole recovery path); one spawn-mode test
SIGKILLs a real process to prove detection works across a real pipe.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterError, run_cluster, smoke_scenario


@pytest.fixture(scope="module")
def fault_free():
    return run_cluster(
        ClusterConfig(scenario=smoke_scenario(13), n_shards=3, mode="inline")
    )


class TestInlineFailStop:
    @pytest.mark.parametrize("kill_shard,kill_cycle", [(0, 1), (1, 20), (2, 47)])
    def test_kill_converges_to_fault_free_digest(
        self, fault_free, tmp_path, kill_shard, kill_cycle
    ):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(13),
                n_shards=3,
                mode="inline",
                journal_dir=str(tmp_path),
                kill_shard=kill_shard,
                kill_cycle=kill_cycle,
            )
        )
        assert result.report["restarts"][kill_shard] == 1
        assert result.report["shards"][str(kill_shard)]["restored"]
        assert result.manifest.to_json() == fault_free.manifest.to_json()
        assert result.conserved and result.all_consistent

    def test_kill_without_journal_is_fatal(self, tmp_path):
        # The parent refuses the config outright: fail-stop recovery
        # without journaled state cannot converge, so it is an error
        # before the run starts rather than a hang inside it.
        with pytest.raises(ValueError, match="journal_dir"):
            run_cluster(
                ClusterConfig(
                    scenario=smoke_scenario(13),
                    n_shards=2,
                    mode="inline",
                    kill_shard=0,
                    kill_cycle=5,
                )
            )

    def test_journaling_alone_does_not_perturb(self, fault_free, tmp_path):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(13),
                n_shards=3,
                mode="inline",
                journal_dir=str(tmp_path),
            )
        )
        assert result.report["restarts"] == [0, 0, 0]
        assert result.manifest.to_json() == fault_free.manifest.to_json()


class TestSpawnFailStop:
    def test_sigkill_detected_and_recovered(self, fault_free, tmp_path):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(13),
                n_shards=3,
                mode="spawn",
                journal_dir=str(tmp_path),
                kill_shard=1,
                kill_cycle=30,
            )
        )
        assert result.report["restarts"][1] >= 1
        assert result.manifest.to_json() == fault_free.manifest.to_json()

    def test_spawn_matches_inline(self, fault_free):
        result = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(13), n_shards=2, mode="spawn"
            )
        )
        assert result.manifest.to_json() == fault_free.manifest.to_json()
        assert isinstance(ClusterError("x"), Exception)
