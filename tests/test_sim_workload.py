"""Tests for the email workload generators."""

import pytest

from repro.sim.clock import DAY, HOUR
from repro.sim.rng import SeededStreams
from repro.sim.workload import (
    Address,
    NormalUserWorkload,
    SpamCampaignWorkload,
    TrafficKind,
    ZombieBurstWorkload,
    merge_workloads,
)


class TestAddress:
    def test_string_form(self):
        assert str(Address(2, 7)) == "user7@isp2"

    def test_equality_and_hash(self):
        assert Address(1, 2) == Address(1, 2)
        assert len({Address(1, 2), Address(1, 2), Address(2, 1)}) == 2

    def test_ordering(self):
        assert Address(0, 5) < Address(1, 0)


class TestNormalUserWorkload:
    def make(self, rate=10.0, seed=0):
        return NormalUserWorkload(
            n_isps=3,
            users_per_isp=4,
            rate_per_day=rate,
            streams=SeededStreams(seed),
        )

    def test_requests_time_ordered(self):
        requests = list(self.make().generate(DAY))
        times = [r.time for r in requests]
        assert times == sorted(times)
        assert all(0 <= t < DAY for t in times)

    def test_volume_matches_rate(self):
        requests = list(self.make(rate=10.0).generate(DAY))
        expected = 10.0 * 12  # rate * population
        assert 0.6 * expected < len(requests) < 1.4 * expected

    def test_no_self_sends(self):
        assert all(
            r.sender != r.recipient for r in self.make().generate(DAY)
        )

    def test_kind_is_normal(self):
        requests = list(self.make().generate(HOUR))
        assert all(r.kind is TrafficKind.NORMAL for r in requests)

    def test_recipients_from_fixed_contacts(self):
        workload = self.make()
        requests = list(workload.generate(10 * DAY))
        by_sender = {}
        for r in requests:
            by_sender.setdefault(r.sender, set()).add(r.recipient)
        for recipients in by_sender.values():
            assert len(recipients) <= workload.contacts_per_user

    def test_deterministic_given_seed(self):
        a = list(self.make(seed=5).generate(DAY))
        b = list(self.make(seed=5).generate(DAY))
        assert a == b

    def test_zero_rate_produces_nothing(self):
        assert list(self.make(rate=0.0).generate(DAY)) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NormalUserWorkload(
                n_isps=0, users_per_isp=1, rate_per_day=1.0,
                streams=SeededStreams(0),
            )
        with pytest.raises(ValueError):
            NormalUserWorkload(
                n_isps=1, users_per_isp=1, rate_per_day=-1.0,
                streams=SeededStreams(0),
            )


class TestSpamCampaignWorkload:
    def make(self, volume=500):
        return SpamCampaignWorkload(
            spammer=Address(0, 0),
            n_isps=3,
            users_per_isp=4,
            volume=volume,
            start=100.0,
            duration=1000.0,
            streams=SeededStreams(1),
        )

    def test_exact_volume(self):
        assert len(list(self.make(500).generate())) == 500

    def test_window_respected(self):
        for r in self.make().generate():
            assert 100.0 <= r.time < 1100.0

    def test_spammer_never_targets_self(self):
        assert all(
            r.recipient != Address(0, 0) for r in self.make().generate()
        )

    def test_sender_is_spammer(self):
        assert all(r.sender == Address(0, 0) for r in self.make().generate())

    def test_kind_is_spam(self):
        assert all(r.kind is TrafficKind.SPAM for r in self.make().generate())

    def test_time_ordered(self):
        times = [r.time for r in self.make().generate()]
        assert times == sorted(times)


class TestZombieBurstWorkload:
    def make(self):
        return ZombieBurstWorkload(
            zombie=Address(1, 1),
            n_isps=2,
            users_per_isp=3,
            rate_per_hour=600.0,
            start=0.0,
            end=HOUR,
            streams=SeededStreams(2),
        )

    def test_rate_roughly_matches(self):
        count = len(list(self.make().generate()))
        assert 400 < count < 800

    def test_window_respected(self):
        for r in self.make().generate():
            assert 0.0 <= r.time < HOUR

    def test_kind_is_zombie(self):
        assert all(r.kind is TrafficKind.ZOMBIE for r in self.make().generate())

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ZombieBurstWorkload(
                zombie=Address(0, 0), n_isps=1, users_per_isp=2,
                rate_per_hour=10.0, start=5.0, end=5.0,
                streams=SeededStreams(0),
            )


class TestMergeWorkloads:
    def test_merge_preserves_global_order(self):
        normal = NormalUserWorkload(
            n_isps=2, users_per_isp=3, rate_per_day=50.0,
            streams=SeededStreams(0),
        )
        spam = SpamCampaignWorkload(
            spammer=Address(0, 0), n_isps=2, users_per_isp=3,
            volume=100, start=0.0, duration=DAY, streams=SeededStreams(1),
        )
        merged = list(merge_workloads(normal.generate(DAY), spam.generate()))
        times = [r.time for r in merged]
        assert times == sorted(times)
        kinds = {r.kind for r in merged}
        assert TrafficKind.NORMAL in kinds and TrafficKind.SPAM in kinds
