"""Tests for the million-message fast path: streams, slots, timer interplay.

The streaming engine mode (``Engine.add_stream`` + ``Scenario``'s
``engine_streaming`` flag) must be a pure performance change: identical
results to the per-event path for the same seed, correct interleaving
with periodic timers at day boundaries, and working cancellation while a
stream is draining. The ``__slots__`` hot-path classes must actually
reject stray attributes, or the allocation win silently evaporates.
"""

import pytest

from repro.core.config import ZmailConfig
from repro.core.scenario import Scenario, SpammerSpec, ZombieSpec
from repro.errors import SimulationError
from repro.sim.clock import DAY, HOUR
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.network import LinkSpec
from repro.sim.workload import Address, SendRequest, TrafficKind


def _scenario(**overrides) -> Scenario:
    """A small but complete scenario: spam, zombies, daily reconciliation."""
    params = dict(
        n_isps=3,
        users_per_isp=8,
        config=ZmailConfig(
            default_daily_limit=200,
            default_user_balance=60,
            auto_topup_amount=10,
        ),
        seed=11,
        duration=3 * DAY,
        normal_rate_per_day=6.0,
        spammers=[SpammerSpec(Address(0, 0), volume=900, war_chest=300)],
        zombies=[
            ZombieSpec(
                Address(1, 3), rate_per_hour=40.0, start=DAY, end=DAY + 12 * HOUR
            )
        ],
        reconcile_every=DAY,
        engine_mode=True,
    )
    params.update(overrides)
    return Scenario(**params)


def _balances(network):
    """Every user's (account, balance) plus pools — full money state."""
    state = {}
    for isp_id, isp in sorted(network.compliant_isps().items()):
        ledger = isp.ledger
        state[isp_id] = (
            [(u.user_id, u.account, u.balance) for u in ledger.users()],
            ledger.pool,
            ledger.cash,
            network.bank.account_balance(isp_id),
        )
    return state


class TestStreamingEquivalence:
    def test_streaming_matches_per_event_results(self):
        """The old and new engine paths are bit-identical for one seed."""
        streamed = _scenario(engine_streaming=True).run()
        per_event = _scenario(engine_streaming=False).run()

        assert streamed.summary() == per_event.summary()
        assert streamed.sends_attempted == per_event.sends_attempted
        assert _balances(streamed.network) == _balances(per_event.network)
        assert (
            streamed.network.total_value()
            == per_event.network.total_value()
        )
        assert (
            streamed.network.expected_total_value()
            == per_event.network.expected_total_value()
        )
        assert len(streamed.reconciliations) == len(per_event.reconciliations)

    def test_streaming_matches_direct_mode_with_zero_latency(self):
        """With zero-latency links even the synchronous path agrees."""
        link = LinkSpec(base_latency=0.0, jitter=0.0, loss_rate=0.0)
        streamed = _scenario(engine_streaming=True, link=link).run()
        direct = _scenario(engine_mode=False).run()

        assert streamed.summary() == direct.summary()
        assert _balances(streamed.network) == _balances(direct.network)

    def test_streaming_is_deterministic_across_runs(self):
        first = _scenario().run()
        second = _scenario().run()
        assert first.summary() == second.summary()
        assert _balances(first.network) == _balances(second.network)


class TestStreamTimerInterleaving:
    def test_midnight_timers_interleave_with_streamed_sends(self):
        """Periodic heap timers fire between stream items at day boundaries.

        Sends streamed at known offsets around midnight must observe the
        daily-limit reset exactly at the boundary: the 23:00 send lands on
        day 0's counter, the 01:00 send on day 1's fresh counter.
        """
        engine = Engine()
        order = []

        requests = [
            SendRequest(23 * HOUR, Address(0, 0), Address(1, 0), TrafficKind.NORMAL),
            SendRequest(DAY + HOUR, Address(0, 0), Address(1, 0), TrafficKind.NORMAL),
            SendRequest(2 * DAY + HOUR, Address(0, 0), Address(1, 0), TrafficKind.NORMAL),
        ]
        engine.add_stream(iter(requests), lambda r: order.append(("send", r.time)))
        engine.schedule_every(DAY, lambda: order.append(("midnight", engine.now)))
        engine.run(until=3 * DAY)

        assert order == [
            ("send", 23 * HOUR),
            ("midnight", DAY),
            ("send", DAY + HOUR),
            ("midnight", 2 * DAY),
            ("send", 2 * DAY + HOUR),
            ("midnight", 3 * DAY),
        ]

    def test_stream_wins_ties_against_heap_events(self):
        """A stream item and a timer at the same instant: stream first.

        This mirrors the per-event path, where workload sends are
        scheduled before periodic timers and carry lower seq numbers.
        """
        engine = Engine()
        order = []
        requests = [
            SendRequest(float(DAY), Address(0, 0), Address(1, 0), TrafficKind.NORMAL)
        ]
        engine.add_stream(iter(requests), lambda r: order.append("send"))
        engine.schedule_at(DAY, lambda: order.append("timer"))
        engine.run()
        assert order == ["send", "timer"]

    def test_daily_limit_resets_exactly_at_boundary(self):
        """End-to-end: a streamed burst straddling midnight sees the reset."""
        result = _scenario(
            normal_rate_per_day=0.0,
            spammers=[SpammerSpec(Address(0, 0), volume=500, war_chest=600)],
            zombies=[],
            duration=2 * DAY,
            config=ZmailConfig(
                default_daily_limit=180,
                default_user_balance=700,
                auto_topup_amount=0,
            ),
        ).run()
        # Volume 500 over one day against a limit of 180: the campaign
        # day hits the brake, and the summary proves the midnight timer
        # actually fired between streamed sends (otherwise nothing would
        # ever be blocked_limit or anything after midnight delivered).
        assert result.blocked_limit > 0
        assert result.delivered > 0
        assert result.conserved

    def test_stream_must_be_time_ordered(self):
        engine = Engine()
        requests = [
            SendRequest(10.0, Address(0, 0), Address(1, 0), TrafficKind.NORMAL),
            SendRequest(5.0, Address(0, 0), Address(1, 0), TrafficKind.NORMAL),
        ]
        engine.add_stream(iter(requests), lambda r: None)
        with pytest.raises(SimulationError, match="time-ordered"):
            engine.run()


class TestCancelWhileStreaming:
    def test_cancel_periodic_timer_while_stream_drains(self):
        """EventHandle.cancel stops a periodic chain mid-stream."""
        engine = Engine()
        fired = []
        handle = engine.schedule_every(
            DAY, lambda: fired.append(engine.now), label="midnight"
        )

        def dispatch(request):
            if request.time > DAY + HOUR:
                handle.cancel()

        requests = [
            SendRequest(float(t) * HOUR, Address(0, 0), Address(1, 0), TrafficKind.NORMAL)
            for t in range(1, 96, 2)
        ]
        engine.add_stream(iter(requests), dispatch)
        engine.run()

        # The chain fired at DAY, was cancelled by the t=DAY+3h item, and
        # never fired again even though the stream ran to nearly 4 days.
        assert fired == [DAY]
        assert handle.cancelled
        assert engine.now >= 3 * DAY

    def test_cancel_one_shot_timer_while_stream_drains(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(2 * DAY, lambda: fired.append("late"))

        def dispatch(request):
            handle.cancel()

        requests = [
            SendRequest(float(DAY), Address(0, 0), Address(1, 0), TrafficKind.NORMAL)
        ]
        engine.add_stream(iter(requests), dispatch)
        engine.run()
        assert fired == []
        assert handle.cancelled
        # A cancelled heap head must not gate stream time either.
        assert engine.events_processed == 1


class TestSlots:
    def test_event_rejects_arbitrary_attributes(self):
        """Event is __slots__-only: the per-message allocation cut is real."""
        event = Event(time=1.0, priority=0, seq=1, callback=lambda: None)
        with pytest.raises((AttributeError, TypeError)):
            event.stray_attribute = "nope"
        # Slotted instances carry no per-object __dict__ at all.
        assert not hasattr(event, "__dict__")

    def test_hot_path_records_are_slotted(self):
        from repro.core.transfer import Letter
        from repro.core.user import UserAccount
        from repro.sim.workload import Address as WorkloadAddress

        letter = Letter(
            sender=WorkloadAddress(0, 0),
            recipient=WorkloadAddress(1, 0),
            kind=TrafficKind.NORMAL,
            paid=True,
        )
        with pytest.raises((AttributeError, TypeError)):
            letter.stray = 1
        account = UserAccount(user_id=0, account=1, balance=1, daily_limit=1)
        with pytest.raises((AttributeError, TypeError)):
            account.stray = 1
        request = SendRequest(
            0.0, WorkloadAddress(0, 0), WorkloadAddress(1, 0), TrafficKind.NORMAL
        )
        with pytest.raises((AttributeError, TypeError)):
            request.stray = 1
