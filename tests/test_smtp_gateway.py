"""Tests for the full ISP SMTP gateway: stamping, verification, acks."""

import pytest

from repro.core import SendStatus, ZmailConfig, ZmailNetwork
from repro.errors import SMTPPermanentError
from repro.sim.workload import Address
from repro.smtp import (
    Envelope,
    InMemoryTransport,
    MailMessage,
    ZmailStamp,
    from_sim_address,
    stamp_message,
)
from repro.smtp.gateway import ZmailGateway


def build_deployment(n_isps=3, compliant=None, **config_kwargs):
    """A network of gateways over one in-memory transport."""
    config = ZmailConfig(**config_kwargs) if config_kwargs else None
    net = ZmailNetwork(
        n_isps=n_isps, users_per_isp=5, compliant=compliant,
        config=config, seed=50,
    )
    transport = InMemoryTransport()
    gateways = {}
    for isp_id in net.compliant_isps():
        gateway = ZmailGateway(net, isp_id, transport)
        transport.register_domain(gateway.domain, gateway.handle_inbound)
        gateways[isp_id] = gateway
    return net, transport, gateways


def plain_message(sender: Address, recipient: Address, subject="s"):
    return MailMessage.compose(
        sender=str(from_sim_address(sender)),
        recipient=str(from_sim_address(recipient)),
        subject=subject,
        body="hello",
    )


class TestOutboundInbound:
    def test_cross_isp_mail_files_and_pays(self):
        net, _, gateways = build_deployment()
        sender, recipient = Address(0, 1), Address(1, 2)
        status = gateways[0].submit_outbound(
            1, recipient, plain_message(sender, recipient)
        )
        assert status is SendStatus.SENT_PAID
        box = gateways[1].mailbox(2)
        assert len(box.inbox) == 1
        assert box.inbox[0].paid
        assert net.isps[1].ledger.user(2).balance == (
            net.config.default_user_balance + 1
        )

    def test_local_mail_stays_local(self):
        net, transport, gateways = build_deployment()
        sender, recipient = Address(0, 1), Address(0, 2)
        status = gateways[0].submit_outbound(
            1, recipient, plain_message(sender, recipient)
        )
        assert status is SendStatus.DELIVERED_LOCAL
        assert transport.delivered == 0  # never hit the wire
        assert len(gateways[0].mailbox(2).inbox) == 1

    def test_blocked_send_never_reaches_wire(self):
        net, transport, gateways = build_deployment(
            default_user_balance=0, auto_topup_amount=0
        )
        sender, recipient = Address(0, 1), Address(1, 2)
        status = gateways[0].submit_outbound(
            1, recipient, plain_message(sender, recipient)
        )
        assert status is SendStatus.BLOCKED_BALANCE
        assert transport.delivered == 0
        assert gateways[0].rejected_sends == 1

    def test_messages_carry_valid_stamp(self):
        from repro.smtp import read_stamp

        net, _, gateways = build_deployment()
        gateways[0].submit_outbound(
            1, Address(1, 2), plain_message(Address(0, 1), Address(1, 2))
        )
        record = gateways[1].mailbox(2).inbox[0]
        stamp = read_stamp(record.envelope.message)
        assert stamp is not None and stamp.sender_isp == "isp0"

    def test_wrong_domain_rejected(self):
        net, _, gateways = build_deployment()
        envelope = Envelope(
            "user0@isp0.example", "user0@isp2.example", MailMessage()
        )
        with pytest.raises(SMTPPermanentError):
            gateways[1].handle_inbound(envelope)

    def test_noncompliant_origin_goes_to_junk_unpaid(self):
        net, transport, gateways = build_deployment(
            compliant=[True, True, False]
        )
        message = plain_message(Address(2, 0), Address(0, 1))
        envelope = Envelope(
            str(from_sim_address(Address(2, 0))),
            str(from_sim_address(Address(0, 1))),
            message,
        )
        assert gateways[0].handle_inbound(envelope)
        box = gateways[0].mailbox(1)
        assert len(box.junk) == 1
        assert not box.junk[0].paid


class TestForgery:
    def test_forged_stamp_rejected(self):
        """A non-compliant sender claiming a compliant ISP's stamp."""
        net, _, gateways = build_deployment(compliant=[True, True, False])
        message = stamp_message(
            plain_message(Address(2, 0), Address(0, 1)),
            ZmailStamp(sender_isp="isp1"),  # lie: claims to be isp1
        )
        envelope = Envelope(
            str(from_sim_address(Address(2, 0))),
            str(from_sim_address(Address(0, 1))),
            message,
        )
        assert not gateways[0].handle_inbound(envelope)
        assert gateways[0].forged_rejected == 1
        assert len(gateways[0].mailbox(1)) == 0


class TestMailingListAcks:
    def test_list_message_auto_acked(self):
        net, transport, gateways = build_deployment()
        distributor, subscriber = Address(0, 0), Address(1, 3)
        net.fund_user(distributor, epennies=100)
        before = net.isps[0].ledger.user(0).balance

        status = gateways[0].submit_outbound(
            0, subscriber,
            plain_message(distributor, subscriber, subject="newsletter"),
            list_token="post-1",
        )
        assert status is SendStatus.SENT_PAID
        # The subscriber's gateway auto-acked: e-penny returned.
        assert gateways[1].acks_sent == 1
        assert gateways[0].acks_absorbed == 1
        assert net.isps[0].ledger.user(0).balance == before
        # The ack never reached a human inbox.
        assert len(gateways[0].mailbox(0)) == 0
        # The list message itself did reach the subscriber.
        assert len(gateways[1].mailbox(3).inbox) == 1

    def test_normal_mail_not_acked(self):
        net, _, gateways = build_deployment()
        gateways[0].submit_outbound(
            1, Address(1, 2), plain_message(Address(0, 1), Address(1, 2))
        )
        assert gateways[1].acks_sent == 0

    def test_conservation_through_gateway_traffic(self):
        net, _, gateways = build_deployment()
        net.fund_user(Address(0, 0), epennies=50)
        for i in range(20):
            gateways[0].submit_outbound(
                0, Address(1, i % 5),
                plain_message(Address(0, 0), Address(1, i % 5)),
                list_token=f"t{i}",
            )
        assert net.total_value() == net.expected_total_value()

    def test_compliance_check_on_construction(self):
        net = ZmailNetwork(
            n_isps=2, users_per_isp=3, compliant=[True, False], seed=1
        )
        with pytest.raises(ValueError, match="not compliant"):
            ZmailGateway(net, 1, InMemoryTransport())


class TestGatewayBackpressure:
    def _overloaded_deployment(self, **overrides):
        from repro.core.overload import OverloadConfig

        defaults = dict(
            admit_rate=1.0, admit_burst=2, queue_capacity=3,
            retry_base=1.0, retry_backoff=2.0, retry_max_interval=8.0,
            max_retries=2,
        )
        defaults.update(overrides)
        config = OverloadConfig(**defaults)
        net = ZmailNetwork(n_isps=2, users_per_isp=5, seed=50)
        transport = InMemoryTransport()
        gateways = {}
        for isp_id in net.compliant_isps():
            gateway = ZmailGateway(net, isp_id, transport, overload=config)
            transport.register_domain(gateway.domain, gateway.handle_inbound)
            gateways[isp_id] = gateway
        return net, transport, gateways

    def test_saturation_defers_then_sheds(self):
        net, _, gateways = self._overloaded_deployment()
        recipient = Address(1, 2)
        message = plain_message(Address(0, 1), recipient)
        statuses = [
            gateways[0].submit_outbound(1, recipient, message)
            for _ in range(7)
        ]
        assert statuses[:2] == [SendStatus.SENT_PAID] * 2
        assert statuses[2:5] == [SendStatus.DEFERRED] * 3
        assert statuses[5:] == [SendStatus.SHED] * 2
        assert gateways[0].pending_sends == 3
        assert gateways[0].shed_sends == 2
        # Shed and deferred submissions never touched the ledger.
        assert net.total_value() == net.expected_total_value()

    def test_pump_delivers_deferred_mail(self):
        net, _, gateways = self._overloaded_deployment()
        recipient = Address(1, 2)
        message = plain_message(Address(0, 1), recipient)
        for _ in range(4):
            gateways[0].submit_outbound(1, recipient, message)
        t = 0.0
        while gateways[0].pending_sends and t < 60.0:
            t += 1.0
            gateways[0].pump(t)
        assert gateways[0].pending_sends == 0
        assert gateways[0].bounced_sends == 0
        # All four eventually reached the recipient's inbox.
        assert len(gateways[1].mailbox(2).inbox) == 4
        assert net.total_value() == net.expected_total_value()

    def test_exhausted_retries_bounce_with_dsn(self):
        net, _, gateways = self._overloaded_deployment(
            admit_rate=0.001, admit_burst=1, max_retries=1,
        )
        recipient = Address(1, 2)
        message = plain_message(Address(0, 1), recipient, subject="doomed")
        assert (
            gateways[0].submit_outbound(1, recipient, message)
            is SendStatus.SENT_PAID
        )
        assert (
            gateways[0].submit_outbound(1, recipient, message)
            is SendStatus.DEFERRED
        )
        t = 0.0
        while gateways[0].pending_sends and t < 200.0:
            t += 1.0
            gateways[0].pump(t)
        assert gateways[0].bounced_sends == 1
        # The DSN notice lands in the *sender's* inbox.
        notices = [
            r for r in gateways[0].mailbox(1).inbox
            if r.envelope.message.subject.startswith("Undeliverable")
        ]
        assert len(notices) == 1
        body = notices[0].envelope.message.body
        assert "doomed" in body
        assert net.total_value() == net.expected_total_value()

    def test_clock_callable_drives_admission_time(self):
        from repro.core.overload import OverloadConfig

        now = [0.0]
        net = ZmailNetwork(n_isps=2, users_per_isp=5, seed=50)
        transport = InMemoryTransport()
        gateway = ZmailGateway(
            net, 0, transport,
            overload=OverloadConfig(admit_rate=1.0, admit_burst=1),
            clock=lambda: now[0],
        )
        transport.register_domain(gateway.domain, gateway.handle_inbound)
        peer = ZmailGateway(net, 1, transport)
        transport.register_domain(peer.domain, peer.handle_inbound)
        recipient = Address(1, 2)
        message = plain_message(Address(0, 1), recipient)
        assert (
            gateway.submit_outbound(1, recipient, message)
            is SendStatus.SENT_PAID
        )
        assert (
            gateway.submit_outbound(1, recipient, message)
            is SendStatus.DEFERRED
        )
        now[0] = 10.0  # tokens refill through the external clock
        gateway.pump()
        assert gateway.pending_sends == 0
        assert gateway.admission_stats()["accepted"] == 2

    def test_counters_exported_via_metrics(self):
        net, _, gateways = self._overloaded_deployment()
        recipient = Address(1, 2)
        message = plain_message(Address(0, 1), recipient)
        for _ in range(7):
            gateways[0].submit_outbound(1, recipient, message)
        counters = net.metrics.snapshot()["counters"]
        assert counters["gateway.shed"] == gateways[0].shed_sends == 2
        assert counters["gateway.deferred"] == 3
        assert counters["gateway.submitted"] == 2
        assert counters["gateway.delivered_inbound"] == 2

    def test_no_overload_config_is_passthrough(self):
        net, _, gateways = build_deployment()
        assert gateways[0].pending_sends == 0
        assert gateways[0].pump(100.0) == 0
        assert gateways[0].admission_stats()["attempts"] == 0
        assert gateways[0].next_retry_due() is None
