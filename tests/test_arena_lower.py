"""Lowering strategy worlds onto the batch executors.

The contract: a strategies-document's pilot-match schedule lowers to a
plain schema-v2 world that every executor runs with byte-identical
invariant manifests, and the compiler routes strategies-plans through
that lowering transparently (``repro run``/``repro fuzz`` just work).
"""

import pytest

from repro.arena import cell_doc, generate_arena_doc, lower_doc, run_match
from repro.scenario.compiler import compile_scenario, run_plan
from repro.scenario.fuzz import check_world
from repro.scenario.schema import scenario_digest
from repro.sim.clock import DAY


class TestLowerDoc:
    def test_schedule_becomes_plain_traffic(self):
        doc = cell_doc(generate_arena_doc(7), "static", "zmail_static")
        result = run_match(doc)
        lowered = lower_doc(doc, result)
        assert lowered["strategies"] is None
        assert lowered["name"].endswith("+lowered")
        spammers = lowered["traffic"]["spammers"]
        assert len(spammers) == len(result.schedule)
        for (period, kind, isp, user, volume), spec in zip(
            result.schedule, spammers
        ):
            assert kind == "spam"
            assert spec["isp"] == isp and spec["user"] == user
            assert spec["volume"] == volume
            assert spec["war_chest"] == volume
            assert spec["start"] == period * DAY
            assert spec["duration"] == DAY

    def test_zombie_schedule_becomes_zombie_specs(self):
        doc = cell_doc(
            generate_arena_doc(7), "zombie_fleet", "zmail_static"
        )
        result = run_match(doc)
        lowered = lower_doc(doc, result)
        zombies = lowered["traffic"]["zombies"]
        assert zombies
        assert len(zombies) == len(result.schedule)
        for (period, kind, isp, user, volume), spec in zip(
            result.schedule, zombies
        ):
            assert kind == "zombie"
            assert spec["rate_per_hour"] == pytest.approx(volume / 24.0)
            assert spec["start"] == period * DAY
            assert spec["end"] == (period + 1) * DAY

    def test_pilot_runs_here_when_no_result_is_passed(self):
        doc = cell_doc(generate_arena_doc(7), "static", "zmail_static")
        explicit = lower_doc(doc, run_match(doc))
        implicit = lower_doc(doc)
        assert scenario_digest(explicit) == scenario_digest(implicit)

    def test_lowered_world_passes_the_differential_oracle(self):
        # The acceptance wiring: arena traffic rides the same
        # cross-executor oracle as everything else.
        for attacker in ("static", "zombie_fleet", "epenny_wash"):
            doc = cell_doc(generate_arena_doc(9), attacker, "zmail_static")
            assert check_world(lower_doc(doc)) is None, attacker


class TestCompilerRouting:
    def test_strategies_plan_lowers_once_and_caches(self):
        plan = compile_scenario(generate_arena_doc(3))
        assert plan.lowered() is plan.lowered()
        assert plan.lowered().doc["strategies"] is None

    def test_plain_plan_lowered_is_itself(self):
        doc = lower_doc(
            cell_doc(generate_arena_doc(3), "static", "zmail_static")
        )
        plan = compile_scenario(doc)
        assert plan.lowered() is plan

    def test_executors_byte_agree_on_a_strategies_plan(self):
        plan = compile_scenario(generate_arena_doc(3))
        manifests = {
            mode: run_plan(plan, mode)["manifest"].to_json()
            for mode in ("direct", "columnar", "cluster")
        }
        assert manifests["direct"] == manifests["columnar"]
        assert manifests["direct"] == manifests["cluster"]

    def test_run_plan_reports_conservation(self):
        plan = compile_scenario(generate_arena_doc(5))
        result = run_plan(plan, "direct")
        assert result["manifest"].extra["conserved"] is True
