"""Tests for the economic (anti-minting) audit."""

import random

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.audit import EconomicAuditor
from repro.sim.workload import Address, TrafficKind


class TestAuditorUnit:
    def test_honest_flows_clear(self):
        auditor = EconomicAuditor()
        auditor.register_isp(0, initial_endowment=1000)
        auditor.note_purchase(0, 500)
        auditor.note_sale(0, 1200)
        assert auditor.all_clear()

    def test_minting_flagged(self):
        auditor = EconomicAuditor()
        auditor.register_isp(0, initial_endowment=1000)
        auditor.note_sale(0, 1500)
        alerts = auditor.check()
        assert len(alerts) == 1
        assert alerts[0].excess == 500

    def test_mail_inflow_raises_ceiling(self):
        auditor = EconomicAuditor()
        auditor.register_isp(0, initial_endowment=100)
        # Net receiver: credit array sums to -400 (received 400 more).
        auditor.ingest_credit_reports({0: {1: -400}})
        auditor.note_sale(0, 450)
        assert auditor.all_clear()

    def test_mail_outflow_lowers_ceiling(self):
        auditor = EconomicAuditor()
        auditor.register_isp(0, initial_endowment=100)
        auditor.ingest_credit_reports({0: {1: 80}})  # net sender
        auditor.note_sale(0, 100)
        alerts = auditor.check()
        assert len(alerts) == 1
        assert alerts[0].excess == 80

    def test_duplicate_registration_rejected(self):
        auditor = EconomicAuditor()
        auditor.register_isp(0, initial_endowment=1)
        with pytest.raises(ValueError):
            auditor.register_isp(0, initial_endowment=1)

    def test_unknown_isps_in_reports_ignored(self):
        auditor = EconomicAuditor()
        auditor.register_isp(0, initial_endowment=1)
        auditor.ingest_credit_reports({9: {0: 5}})  # not tracked: no crash
        assert auditor.all_clear()


class TestAuditorIntegration:
    """Wire the auditor to a real deployment's observable flows."""

    def drive(self, *, mint: int = 0, seed: int = 90):
        config = ZmailConfig(
            initial_pool=500, minavail=200, maxavail=900,
            default_user_balance=50, auto_topup_amount=10,
        )
        net = ZmailNetwork(n_isps=3, users_per_isp=8, config=config, seed=seed)
        auditor = EconomicAuditor()
        endowment = config.initial_pool + 8 * config.default_user_balance
        for isp_id in net.compliant_isps():
            auditor.register_isp(isp_id, initial_endowment=endowment)

        if mint:
            # ISP 1 secretly creates e-pennies in its pool (off the books).
            net.isps[1].ledger.pool += mint

        rng = random.Random(seed)
        for day in range(1, 15):
            for _ in range(300):
                net.send(
                    Address(rng.randrange(3), rng.randrange(8)),
                    Address(rng.randrange(3), rng.randrange(8)),
                    TrafficKind.NORMAL,
                )
            # Snapshot + feed the auditor what the bank actually sees.
            isps = net.compliant_isps()
            for isp in isps.values():
                isp.begin_snapshot(net.bank.next_seq)
            reports = {}
            for isp_id, isp in sorted(isps.items()):
                reports[isp_id] = isp.snapshot_reply()
                isp.resume_sending()
            net.bank.reconcile(reports)
            auditor.ingest_credit_reports(reports)

            # Rebalance and record purchases/sales from account movements.
            balances_before = {
                i: net.bank.account_balance(i) for i in isps
            }
            net.advance_day_to(day)
            for isp_id in isps:
                delta = net.bank.account_balance(isp_id) - balances_before[isp_id]
                if delta < 0:
                    auditor.note_purchase(isp_id, -delta)
                elif delta > 0:
                    auditor.note_sale(isp_id, delta)
        return net, auditor

    def test_honest_deployment_all_clear(self):
        net, auditor = self.drive(mint=0)
        assert auditor.all_clear()

    def test_minting_isp_detected_via_excess_sales(self):
        """ISP 1 mints 5000 e-pennies; users sell them back; the pool
        swells; the ISP sells to the bank beyond its solvency ceiling."""
        net, auditor = self.drive(mint=5000)
        alerts = auditor.check()
        assert [a.isp_id for a in alerts] == [1]
        assert alerts[0].excess > 0

    def test_detection_threshold_scales_with_mint(self):
        _, small = self.drive(mint=5000, seed=91)
        _, large = self.drive(mint=9000, seed=91)
        small_alerts = {a.isp_id: a for a in small.check()}
        large_alerts = {a.isp_id: a for a in large.check()}
        assert large_alerts[1].excess > small_alerts[1].excess
