"""Tests for the distributed/hierarchical bank federation (§5 Bank Setup)."""

import random

import pytest

from repro.core import ZmailNetwork
from repro.core.multibank import BankFederation
from repro.errors import ReplayDetected, UnknownISP
from repro.sim.workload import Address, TrafficKind


def traffic_reports(n_isps: int, messages: int, seed: int = 1,
                    corrupt: dict[int, int] | None = None):
    """Drive real traffic and collect honest (or corrupted) credit arrays."""
    net = ZmailNetwork(n_isps=n_isps, users_per_isp=4, seed=seed)
    rng = random.Random(seed)
    for _ in range(messages):
        net.send(
            Address(rng.randrange(n_isps), rng.randrange(4)),
            Address(rng.randrange(n_isps), rng.randrange(4)),
            TrafficKind.NORMAL,
        )
    isps = net.compliant_isps()
    for isp in isps.values():
        isp.begin_snapshot(0)
    reports = {}
    for isp_id, isp in sorted(isps.items()):
        credit = isp.snapshot_reply()
        isp.resume_sending()
        if corrupt and isp_id in corrupt:
            credit = {k: v + corrupt[isp_id] for k, v in credit.items()}
        reports[isp_id] = credit
    return reports


class TestFederationStructure:
    def test_homing(self):
        fed = BankFederation([[0, 1], [2, 3, 4]])
        assert fed.home_region(0) == 0
        assert fed.home_region(4) == 1
        assert fed.n_isps == 5

    def test_unknown_isp(self):
        fed = BankFederation([[0, 1]])
        with pytest.raises(UnknownISP):
            fed.home_region(9)

    def test_duplicate_homing_rejected(self):
        with pytest.raises(ValueError, match="only one region"):
            BankFederation([[0, 1], [1, 2]])

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            BankFederation([[0], []])

    def test_compliance_directory_union(self):
        fed = BankFederation([[0, 1], [2]])
        assert fed.compliance_directory() == {0: True, 1: True, 2: True}


class TestDistributedBuySell:
    def test_routes_to_home_bank(self):
        fed = BankFederation([[0], [1]], initial_account=500)
        fed.buy_epennies(1, value=200, nonce=7)
        assert fed.banks[1].account_balance(1) == 300
        assert fed.banks[0].account_balance(0) == 500  # untouched

    def test_replay_protection_preserved(self):
        fed = BankFederation([[0], [1]])
        fed.buy_epennies(0, value=10, nonce=5)
        with pytest.raises(ReplayDetected):
            fed.buy_epennies(0, value=10, nonce=5)

    def test_total_deposits(self):
        fed = BankFederation([[0, 1], [2]], initial_account=100)
        assert fed.total_deposits() == 300
        fed.sell_epennies(2, value=40, nonce=1)
        assert fed.total_deposits() == 340


class TestHierarchicalVerification:
    def test_honest_round_consistent(self):
        reports = traffic_reports(n_isps=6, messages=1500)
        fed = BankFederation([[0, 1, 2], [3, 4, 5]])
        outcome = fed.reconcile(reports)
        assert outcome.consistent
        # Every pair was checked exactly once somewhere.
        assert outcome.total_pairs_checked == 6 * 5 // 2

    def test_root_checks_only_cross_region_pairs(self):
        reports = traffic_reports(n_isps=6, messages=500)
        fed = BankFederation([[0, 1, 2], [3, 4, 5]])
        outcome = fed.reconcile(reports)
        assert outcome.root_pairs_checked == 9  # 3 x 3 cross pairs
        for region in outcome.regions:
            assert region.local_pairs_checked == 3  # C(3, 2)

    def test_intra_region_cheater_caught_locally(self):
        reports = traffic_reports(
            n_isps=4, messages=1200, corrupt={1: 10}
        )
        fed = BankFederation([[0, 1], [2, 3]])
        outcome = fed.reconcile(reports)
        assert not outcome.consistent
        assert 1 in outcome.suspects()
        local_bad = outcome.regions[0].local_inconsistent
        assert any({p.isp_a, p.isp_b} == {0, 1} for p in local_bad)

    def test_cross_region_cheater_caught_at_root(self):
        reports = traffic_reports(
            n_isps=4, messages=1200, corrupt={3: 10}
        )
        fed = BankFederation([[0, 1], [2, 3]])
        outcome = fed.reconcile(reports)
        assert not outcome.consistent
        assert 3 in outcome.suspects()
        assert outcome.root_inconsistent  # found at the root level

    def test_detection_equivalent_to_central_bank(self):
        """Hierarchy changes where pairs are checked, never what is found."""
        from repro.core.misbehavior import verify_credit_matrix

        reports = traffic_reports(n_isps=8, messages=2500, corrupt={5: 7})
        central = verify_credit_matrix(reports)
        fed = BankFederation([[0, 1, 2, 3], [4, 5, 6, 7]])
        federated = fed.reconcile(reports).all_inconsistent
        assert sorted((p.isp_a, p.isp_b) for p in central) == sorted(
            (p.isp_a, p.isp_b) for p in federated
        )

    def test_root_load_shrinks_with_more_regions(self):
        reports = traffic_reports(n_isps=12, messages=1000)
        two = BankFederation([list(range(0, 6)), list(range(6, 12))])
        four = BankFederation(
            [list(range(i, i + 3)) for i in range(0, 12, 3)]
        )
        # Root checks cross-region pairs: 36 for 2x6; 54 for 4x3 — but
        # the *per-node* maximum work (max of root, regions) drops.
        outcome_two = two.reconcile(reports)
        outcome_four = four.reconcile(reports)
        max_two = max(
            [outcome_two.root_pairs_checked]
            + [r.local_pairs_checked for r in outcome_two.regions]
        )
        central_pairs = 12 * 11 // 2
        assert max_two < central_pairs
        assert outcome_two.total_pairs_checked == central_pairs
        assert outcome_four.total_pairs_checked == central_pairs

    def test_rounds_recorded(self):
        fed = BankFederation([[0], [1]])
        fed.reconcile({0: {}, 1: {}})
        fed.reconcile({0: {}, 1: {}})
        assert [r.round_seq for r in fed.reports] == [0, 1]
