"""Tests for the §2 baseline systems."""

import random

import pytest

from repro.baselines.base import confusion_metrics
from repro.baselines.bayes_filter import NaiveBayesFilter, evaluate_filter
from repro.baselines.blacklist import Blacklist, RotatingSpammer
from repro.baselines.challenge_response import (
    ChallengeOutcome,
    ChallengeResponseSystem,
)
from repro.baselines.comparison import ComparisonScenario, run_comparison
from repro.baselines.hashcash import expected_attempts, mint, verify
from repro.baselines.shred import ShredConfig, ShredSystem
from repro.baselines.whitelist import Whitelist, WhitelistDecision
from repro.spamcorpus import CorpusGenerator, make_dataset


class TestConfusionMetrics:
    def test_counts(self):
        metrics = confusion_metrics(
            predictions=[True, True, False, False],
            labels=[True, False, True, False],
        )
        assert metrics.true_positives == 1
        assert metrics.false_positives == 1
        assert metrics.false_negatives == 1
        assert metrics.true_negatives == 1
        assert metrics.accuracy == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confusion_metrics([True], [True, False])

    def test_empty_is_zero(self):
        metrics = confusion_metrics([], [])
        assert metrics.spam_recall == 0.0
        assert metrics.false_positive_rate == 0.0


class TestNaiveBayes:
    def make_trained(self, seed=1, n=400):
        gen = CorpusGenerator(seed=seed)
        filt = NaiveBayesFilter()
        filt.train(gen.corpus(n_ham=n, n_spam=n))
        return filt, gen

    def test_classifies_clear_cases(self):
        filt, gen = self.make_trained()
        assert filt.classify(gen.spam().tokens)
        assert not filt.classify(gen.ham().tokens)

    def test_high_accuracy_without_evasion(self):
        filt, _ = self.make_trained()
        dataset = make_dataset(seed=3)
        metrics = evaluate_filter(filt, dataset.test)
        assert metrics.spam_recall > 0.9
        assert metrics.false_positive_rate < 0.05

    def test_evasion_degrades_recall(self):
        """The §2.2 failure mode the paper emphasises."""
        dataset = make_dataset(seed=4, evasion_rate=0.0, test_evasion_rate=0.9)
        filt = NaiveBayesFilter()
        filt.train(dataset.train)
        evaded = evaluate_filter(filt, dataset.test)
        clean = evaluate_filter(
            filt, make_dataset(seed=4).test
        )
        assert evaded.spam_recall < clean.spam_recall

    def test_probability_in_unit_interval(self):
        filt, gen = self.make_trained()
        for _ in range(20):
            p = filt.spam_probability(gen.spam().tokens)
            assert 0.0 <= p <= 1.0

    def test_untrained_rejected(self):
        with pytest.raises(ValueError, match="trained"):
            NaiveBayesFilter().spam_probability(["hello"])

    def test_incremental_training(self):
        gen = CorpusGenerator(seed=5)
        filt = NaiveBayesFilter()
        filt.train(gen.corpus(n_ham=50, n_spam=50))
        vocab_before = filt.vocabulary_size
        filt.train(gen.corpus(n_ham=50, n_spam=50))
        assert filt.vocabulary_size >= vocab_before

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            NaiveBayesFilter(threshold=0.0)


class TestBlacklist:
    def test_listing_after_threshold(self):
        blacklist = Blacklist(report_threshold=3)
        for _ in range(3):
            blacklist.report_spam("spammer.example")
        assert blacklist.is_listed("spammer.example")
        assert not blacklist.check("spammer.example")

    def test_below_threshold_passes(self):
        blacklist = Blacklist(report_threshold=3)
        blacklist.report_spam("s")
        assert blacklist.check("s")

    def test_rotation_stays_ahead(self):
        """The §2.2 evasion: rotating sources beats a reactive list."""
        blacklist = Blacklist(report_threshold=10)
        spammer = RotatingSpammer(source_pool=100)
        delivered = 0
        for _ in range(900):
            source = spammer.send_source(blacklist)
            assert source is not None
            if blacklist.check(source):
                delivered += 1
                blacklist.report_spam(source)
        assert delivered == 900  # every message got through

    def test_pool_exhaustion(self):
        blacklist = Blacklist(report_threshold=1)
        spammer = RotatingSpammer(source_pool=2)
        for _ in range(2):
            source = spammer.send_source(blacklist)
            blacklist.report_spam(source)
        assert spammer.send_source(blacklist) is None


class TestWhitelist:
    def test_accept_and_fallthrough(self):
        whitelist = Whitelist()
        whitelist.add("friend@x.example")
        assert whitelist.check("friend@x.example") is WhitelistDecision.ACCEPT
        assert whitelist.check("other@y.example") is WhitelistDecision.FALLTHROUGH

    def test_case_insensitive(self):
        whitelist = Whitelist()
        whitelist.add("Friend@X.example")
        assert "friend@x.example" in whitelist

    def test_forgery_counts(self):
        """The §2.2 weakness: forged sender passes the list."""
        whitelist = Whitelist(forgeable=True)
        whitelist.add("friend@x.example")
        target = whitelist.forge_target()
        assert target == "friend@x.example"
        whitelist.check(target, actually_spam=True)
        assert whitelist.forged_accepts == 1

    def test_unforgeable_has_no_target(self):
        whitelist = Whitelist(forgeable=False)
        whitelist.add("a@x")
        assert whitelist.forge_target() is None

    def test_remove(self):
        whitelist = Whitelist()
        whitelist.add("a@x")
        whitelist.remove("a@x")
        assert len(whitelist) == 0


class TestHashcash:
    def test_mint_verify_round_trip(self):
        stamp = mint("bob@example.com", bits=8)
        assert verify(stamp, resource="bob@example.com", bits=8)

    def test_verify_rejects_wrong_resource(self):
        stamp = mint("bob@example.com", bits=8)
        assert not verify(stamp, resource="eve@example.com", bits=8)

    def test_verify_rejects_insufficient_bits(self):
        stamp = mint("r", bits=4)
        assert not verify(stamp, resource="r", bits=16)

    def test_verify_string_form(self):
        stamp = mint("r", bits=8)
        assert verify(stamp.encode(), resource="r", bits=8)

    def test_verify_rejects_garbage(self):
        assert not verify("not:a:stamp", resource="r", bits=8)
        assert not verify("1:zz:r:5", resource="r", bits=8)

    def test_work_scales_with_bits(self):
        """Average minting attempts grow geometrically with difficulty."""
        cheap = sum(
            mint(f"r{i}", bits=4).attempts for i in range(20)
        )
        costly = sum(
            mint(f"r{i}", bits=10).attempts for i in range(20)
        )
        assert costly > 5 * cheap

    def test_expected_attempts(self):
        assert expected_attempts(20) == 2**20

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            mint("r", bits=41)


class TestChallengeResponse:
    def test_verified_sender_skips_challenge(self):
        system = ChallengeResponseSystem(human_answer_probability=1.0)
        rng = random.Random(0)
        first = system.submit("alice", "bob", now=0.0, is_spam=False, rng=rng)
        second = system.submit("alice", "bob", now=1.0, is_spam=False, rng=rng)
        assert first is ChallengeOutcome.DELIVERED
        assert second is ChallengeOutcome.AUTO_ACCEPTED
        assert system.challenges_sent == 1

    def test_legitimate_mail_lost_when_unanswered(self):
        system = ChallengeResponseSystem(human_answer_probability=0.0)
        rng = random.Random(0)
        outcome = system.submit("alice", "bob", now=0.0, is_spam=False, rng=rng)
        assert outcome is ChallengeOutcome.ABANDONED
        assert system.legitimate_loss_rate == 1.0

    def test_spam_bots_blocked(self):
        system = ChallengeResponseSystem(bot_solver_rate=0.0)
        rng = random.Random(0)
        for i in range(50):
            outcome = system.submit(
                f"bot{i}", "bob", now=0.0, is_spam=True, rng=rng
            )
            assert outcome is ChallengeOutcome.ABANDONED
        assert system.spam_delivered == 0

    def test_captcha_farms_leak_spam(self):
        system = ChallengeResponseSystem(bot_solver_rate=1.0)
        rng = random.Random(0)
        system.submit("bot", "bob", now=0.0, is_spam=True, rng=rng)
        assert system.spam_delivered == 1

    def test_delay_accounted(self):
        system = ChallengeResponseSystem(
            human_answer_probability=1.0, answer_delay_seconds=120.0
        )
        rng = random.Random(0)
        system.submit("a", "b", now=0.0, is_spam=False, rng=rng)
        assert system.mean_delivery_delay == 120.0


class TestShred:
    def test_honest_spammer_pays(self):
        system = ShredSystem(ShredConfig(trigger_probability=1.0))
        outcome = system.run_campaign(
            spam_messages=100, colluding=False, rng=random.Random(0)
        )
        assert outcome.effective_spammer_cost_cents == 100.0

    def test_collusion_refunds_everything(self):
        """Weakness 3: a colluding ISP makes SHRED free for the spammer."""
        system = ShredSystem(ShredConfig(trigger_probability=1.0))
        outcome = system.run_campaign(
            spam_messages=100, colluding=True, rng=random.Random(0)
        )
        assert outcome.effective_spammer_cost_cents == 0.0
        assert not ShredSystem.collusion_detectable()

    def test_unmotivated_receivers_rarely_trigger(self):
        """Weakness 2: receivers gain nothing, so most never bother."""
        system = ShredSystem(ShredConfig(trigger_probability=0.3))
        outcome = system.run_campaign(
            spam_messages=1000, colluding=False, rng=random.Random(1)
        )
        assert outcome.triggers < 400

    def test_receiver_effort_per_spam(self):
        """Weakness 1: each trigger is an extra human action."""
        system = ShredSystem(ShredConfig(trigger_probability=1.0))
        outcome = system.run_campaign(
            spam_messages=50, colluding=False, rng=random.Random(2)
        )
        assert outcome.receiver_actions == 50

    def test_processing_cost_exceeds_collections(self):
        """Weakness 4 with default prices (2c to clear a 1c payment)."""
        system = ShredSystem(ShredConfig(trigger_probability=1.0))
        outcome = system.run_campaign(
            spam_messages=100, colluding=False, rng=random.Random(3)
        )
        assert outcome.processing_exceeds_collections


class TestComparisonHarness:
    def test_all_approaches_present(self):
        results = run_comparison(ComparisonScenario(n_train=400, n_test=400))
        names = [r.approach for r in results]
        assert "status-quo" in names
        assert "zmail" in names
        assert "shred/vanquish" in names
        assert any(n.startswith("bayes") for n in names)
        assert any(n.startswith("hashcash") for n in names)

    def test_zmail_needs_no_spam_definition(self):
        results = run_comparison(ComparisonScenario(n_train=400, n_test=400))
        by_name = {r.approach: r for r in results}
        assert not by_name["zmail"].needs_spam_definition
        assert by_name["bayes-filter"].needs_spam_definition

    def test_evasion_hurts_bayes_only(self):
        results = run_comparison(ComparisonScenario(n_train=600, n_test=600))
        by_name = {r.approach: r for r in results}
        assert (
            by_name["bayes-filter+evasion"].spam_blocked_fraction
            <= by_name["bayes-filter"].spam_blocked_fraction
        )
        assert by_name["zmail"].resists_evasion


class TestRocPoints:
    def test_monotone_tradeoff(self):
        """Raising the threshold never increases FP rate and never
        increases recall."""
        from repro.baselines.bayes_filter import roc_points

        dataset = make_dataset(
            n_train=800, n_test=600, extra_overlap=0.6, seed=8
        )
        filt = NaiveBayesFilter()
        filt.train(dataset.train)
        points = roc_points(filt, dataset.test)
        recalls = [m.spam_recall for _, m in points]
        fps = [m.false_positive_rate for _, m in points]
        assert recalls == sorted(recalls, reverse=True)
        assert fps == sorted(fps, reverse=True)

    def test_thresholds_echoed(self):
        from repro.baselines.bayes_filter import roc_points

        dataset = make_dataset(n_train=200, n_test=100, seed=9)
        filt = NaiveBayesFilter()
        filt.train(dataset.train)
        points = roc_points(filt, dataset.test, thresholds=(0.3, 0.8))
        assert [t for t, _ in points] == [0.3, 0.8]
