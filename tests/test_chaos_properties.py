"""Property tests: Zmail invariants survive *any* seeded fault mix.

The chaos harness's core claim, stated as hypothesis properties: for any
drop/duplicate/reorder/delay mix with rates < 1.0 carried under the
reliable layer — and any crash/restart schedule on top — the deployment
drains to quiescence with every invariant monitor green. Counterexamples
shrink, and every assertion message carries the seed and fault mix
needed to replay the exact failing run.

``derandomize=True`` keeps CI stable: the examples are drawn
deterministically from the property's signature, so a red run is a real
regression, not sampling noise.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import ChaosDeployment, CrashEvent, FaultSpec
from repro.core import ZmailConfig
from repro.obs.schema import LEDGER_EVENT_TYPES
from repro.obs.trace import ListSink, TraceRecorder, multiset_digest
from repro.sim import SeededStreams
from repro.sim.rng import derive_seed
from repro.sim.workload import NormalUserWorkload

#: Hypothesis re-runs the wrapped function many times per test; each run
#: is a full (small) simulation, so cap the example count.
CHAOS_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

FAULTS = st.fixed_dictionaries({
    "drop_rate": st.floats(0.0, 0.6),
    "duplicate_rate": st.floats(0.0, 0.6),
    "reorder_rate": st.floats(0.0, 0.6),
    "reorder_delay": st.floats(0.0, 3.0),
    "extra_delay": st.floats(0.0, 0.5),
})


def run_deployment(seed, faults, crashes=(), duration=120.0, tracer=None):
    deployment = ChaosDeployment(
        n_isps=2,
        users_per_isp=3,
        seed=seed,
        config=ZmailConfig(default_user_balance=1000, auto_topup_amount=0),
        faults=FaultSpec(**faults),
        monitor_interval=2.0,
        tracer=tracer,
    )
    for crash in crashes:
        deployment.schedule_crash(crash)
    workload = NormalUserWorkload(
        n_isps=2,
        users_per_isp=3,
        rate_per_day=20_000.0,
        streams=SeededStreams(derive_seed(seed, "chaos-workload")),
    )
    converged = deployment.run(
        workload.generate(duration), until=duration, drain_window=3_000.0
    )
    return deployment, converged


@CHAOS_SETTINGS
@given(faults=FAULTS, seed=st.integers(0, 2**32 - 1))
def test_any_fault_mix_preserves_invariants(faults, seed):
    deployment, converged = run_deployment(seed, faults)
    replay = f"replay: campaign seed={seed} faults={faults}"
    assert converged, f"did not drain to quiescence; {replay}"
    assert deployment.monitor.checks_run > 0
    assert deployment.monitor.green, (
        f"invariant violated: {deployment.monitor.first_violation}; {replay}"
    )
    network = deployment.network
    assert network.total_value() == network.expected_total_value(), (
        f"value not conserved; {replay}"
    )
    # Reliable layer earned the §3 channel assumption back: every submit
    # that produced a letter was delivered exactly once.
    assert network.paid_letters_in_flight == 0, replay


@CHAOS_SETTINGS
@given(
    faults=FAULTS,
    seed=st.integers(0, 2**32 - 1),
    crash_at=st.floats(10.0, 80.0),
    down_for=st.floats(5.0, 60.0),
    node=st.sampled_from(["isp0", "isp1", "bank"]),
)
def test_fault_mix_with_crash_restart_preserves_invariants(
    faults, seed, crash_at, down_for, node
):
    crash = CrashEvent(node=node, at=crash_at, down_for=down_for)
    deployment, converged = run_deployment(seed, faults, crashes=[crash])
    replay = (
        f"replay: campaign seed={seed} faults={faults} "
        f"crash={node}@{crash_at}+{down_for}"
    )
    assert converged, f"did not drain to quiescence; {replay}"
    assert deployment.crash_controller.crashes == 1, replay
    assert deployment.crash_controller.restarts == 1, replay
    assert deployment.monitor.green, (
        f"invariant violated: {deployment.monitor.first_violation}; {replay}"
    )
    network = deployment.network
    assert network.total_value() == network.expected_total_value(), (
        f"value not conserved; {replay}"
    )


def _ledger_trace_digest(seed, faults, crashes=()):
    """The order-insensitive digest over the run's ledger-visible events."""
    sink = ListSink()
    deployment, converged = run_deployment(
        seed, faults, crashes=crashes, tracer=TraceRecorder(sink=sink)
    )
    assert converged, f"did not drain; seed={seed} faults={faults}"
    assert deployment.monitor.green, deployment.monitor.first_violation
    return multiset_digest(sink.lines(), include_types=LEDGER_EVENT_TYPES)


def test_ledger_trace_differential_faults_are_invisible():
    """Differential oracle: faults leave no trace in the *ledger* events.

    Under the reliable layer, the multiset of send/deliver/topup/trade
    events (timestamps and interleaving excluded) from a heavily faulty
    run must be identical to the fault-free run of the same seed — the
    wire chaos is fully absorbed below the accounting.
    """
    clean = _ledger_trace_digest(7, {})
    faulty = _ledger_trace_digest(
        7,
        {
            "drop_rate": 0.25,
            "duplicate_rate": 0.2,
            "reorder_rate": 0.2,
            "reorder_delay": 2.0,
        },
    )
    assert faulty == clean, (
        "fault injection changed the ledger-event multiset: the reliable "
        "layer leaked wire faults into the accounting"
    )


def test_ledger_trace_differential_crash_recovery_is_complete():
    """Post-recovery, a crashy run's ledger events match the clean run.

    A crash loses volatile state only; journals plus retransmission must
    reconstruct every accounting action — so the recovered run's ledger
    trace digest equals the fault-free one.
    """
    clean = _ledger_trace_digest(11, {})
    crashy = _ledger_trace_digest(
        11,
        {"drop_rate": 0.1, "duplicate_rate": 0.1},
        crashes=[CrashEvent(node="isp1", at=30.0, down_for=20.0)],
    )
    assert crashy == clean, (
        "crash/restart changed the ledger-event multiset: recovery lost "
        "or duplicated accounting actions"
    )


@CHAOS_SETTINGS
@given(faults=FAULTS, seed=st.integers(0, 2**16))
def test_fault_mix_runs_are_bit_reproducible(faults, seed):
    first, _ = run_deployment(seed, faults, duration=60.0)
    second, _ = run_deployment(seed, faults, duration=60.0)
    assert first.digest() == second.digest(), (
        f"same seed, different digest; seed={seed} faults={faults}"
    )
    assert first.stats() == second.stats(), (
        f"same seed, different counters; seed={seed} faults={faults}"
    )
