"""Tests for the traffic-matrix oracle, including the credit cross-check."""

import random

import pytest

from repro.core import ZmailNetwork
from repro.sim.traffic import TrafficMatrix
from repro.sim.workload import Address, TrafficKind


class TestTrafficMatrix:
    def test_record_and_sent(self):
        matrix = TrafficMatrix()
        matrix.record(0, 1)
        matrix.record(0, 1, 3)
        assert matrix.sent(0, 1) == 4
        assert matrix.sent(1, 0) == 0

    def test_imbalance_antisymmetric(self):
        matrix = TrafficMatrix()
        matrix.record(0, 1, 7)
        matrix.record(1, 0, 3)
        assert matrix.imbalance(0, 1) == 4
        assert matrix.imbalance(1, 0) == -4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficMatrix().record(0, 1, -1)

    def test_expected_credit_array_omits_zero_and_self(self):
        matrix = TrafficMatrix()
        matrix.record(0, 1, 5)
        matrix.record(1, 0, 5)  # balanced: omitted
        matrix.record(0, 2, 2)
        assert matrix.expected_credit_array(0, n_isps=3) == {2: 2}

    def test_totals_and_topology(self):
        matrix = TrafficMatrix()
        matrix.record(0, 1, 2)
        matrix.record(2, 0, 1)
        assert matrix.total_messages() == 3
        assert matrix.isps_seen() == {0, 1, 2}

    def test_busiest_pairs(self):
        matrix = TrafficMatrix()
        matrix.record(0, 1, 10)
        matrix.record(1, 2, 5)
        matrix.record(2, 0, 1)
        assert matrix.busiest_pairs(2) == [((0, 1), 10), ((1, 2), 5)]


class TestCreditOracle:
    """The auditor's view: credit arrays must equal traffic imbalances."""

    def drive(self, seed=70, messages=1500, n_isps=4):
        net = ZmailNetwork(n_isps=n_isps, users_per_isp=5, seed=seed)
        matrix = TrafficMatrix()
        rng = random.Random(seed)
        for _ in range(messages):
            src = Address(rng.randrange(n_isps), rng.randrange(5))
            dst = Address(rng.randrange(n_isps), rng.randrange(5))
            receipt = net.send(src, dst, TrafficKind.NORMAL)
            if receipt.status.value == "sent_paid":
                matrix.record(src.isp, dst.isp)
        return net, matrix

    def test_credit_arrays_match_ground_truth(self):
        net, matrix = self.drive()
        for isp_id, isp in net.compliant_isps().items():
            expected = matrix.expected_credit_array(isp_id, net.n_isps)
            actual = {k: v for k, v in isp.credit.items() if v}
            assert actual == expected, f"isp {isp_id}"

    def test_snapshot_reply_matches_ground_truth(self):
        net, matrix = self.drive(seed=71)
        isps = net.compliant_isps()
        for isp in isps.values():
            isp.begin_snapshot(0)
        for isp_id, isp in isps.items():
            reply = isp.snapshot_reply()
            isp.resume_sending()
            nonzero = {k: v for k, v in reply.items() if v}
            assert nonzero == matrix.expected_credit_array(isp_id, net.n_isps)
