"""Tests for the declarative scenario runner."""

import pytest

from repro.core import NonCompliantMailPolicy, ZmailConfig
from repro.core.scenario import Scenario, ScenarioResult, SpammerSpec, ZombieSpec
from repro.sim import DAY, HOUR, Address


class TestBasicScenario:
    def test_normal_only_run(self):
        result = Scenario(duration=2 * DAY, seed=1).run()
        assert result.sends_attempted > 0
        assert result.delivered > 0
        assert result.conserved
        assert result.all_reconciliations_consistent

    def test_final_reconciliation_always_runs(self):
        result = Scenario(duration=DAY, reconcile_every=0.0, seed=1).run()
        assert len(result.reconciliations) == 1

    def test_periodic_reconciliation(self):
        result = Scenario(
            duration=10 * DAY, reconcile_every=2 * DAY, seed=2
        ).run()
        assert len(result.reconciliations) >= 4
        assert result.all_reconciliations_consistent

    def test_summary_shape(self):
        summary = Scenario(duration=DAY, seed=1).run().summary()
        for key in (
            "sends_attempted", "delivered", "conserved",
            "reconciliation_rounds", "all_consistent",
        ):
            assert key in summary

    def test_deterministic_given_seed(self):
        a = Scenario(duration=DAY, seed=9).run()
        b = Scenario(duration=DAY, seed=9).run()
        assert a.sends_attempted == b.sends_attempted
        assert a.delivered == b.delivered


class TestAdversarialScenario:
    def make(self):
        return Scenario(
            n_isps=4,
            users_per_isp=10,
            compliant=[True, True, True, False],
            config=ZmailConfig(
                default_daily_limit=60,
                default_user_balance=80,
                auto_topup_amount=0,
                noncompliant_policy=NonCompliantMailPolicy.SEGREGATE,
            ),
            seed=3,
            duration=3 * DAY,
            normal_rate_per_day=5.0,
            spammers=[
                SpammerSpec(Address(0, 0), volume=800, war_chest=100),
                SpammerSpec(Address(3, 0), volume=800),
            ],
            zombies=[
                ZombieSpec(
                    Address(1, 7), rate_per_hour=100.0,
                    start=DAY, end=DAY + 8 * HOUR,
                )
            ],
            reconcile_every=DAY,
        )

    def test_runs_clean(self):
        result = self.make().run()
        assert result.conserved
        assert result.all_reconciliations_consistent

    def test_compliant_spammer_choked(self):
        """The daily limit throttles the compliant-side spammer long
        before its war chest would: of 800 attempts over 3 days, at most
        3 x 60 clear the limit."""
        result = self.make().run()
        assert result.blocked_limit > 500
        spammer_user = result.network.isps[0].ledger.user(0)
        assert spammer_user.lifetime_sent <= 3 * 60

    def test_noncompliant_spam_segregated(self):
        result = self.make().run()
        assert result.junked > 200

    def test_zombie_detected(self):
        result = self.make().run()
        detected = {d.address for d in result.zombie_detections}
        assert Address(1, 7) in detected

    def test_limit_blocks_counted(self):
        result = self.make().run()
        assert result.blocked_limit > 0


class TestScenarioCustomisation:
    def test_build_network_exposed(self):
        scenario = Scenario(n_isps=2, users_per_isp=3)
        net = scenario.build_network()
        assert net.n_isps == 2
        assert len(net.compliant_isps()) == 2


class TestEngineModeScenario:
    def test_engine_run_with_latency_and_markers(self):
        from repro.sim import LinkSpec

        result = Scenario(
            duration=2 * DAY,
            seed=5,
            reconcile_every=DAY,
            engine_mode=True,
            link=LinkSpec(base_latency=0.5, jitter=0.3),
        ).run()
        assert result.conserved
        assert result.all_reconciliations_consistent
        assert len(result.reconciliations) >= 2
        assert result.delivered > 0

    def test_engine_and_direct_agree_on_accounting(self):
        """Same scenario, both modes: identical message counts and both
        conserved (delivery timing differs, totals must not)."""
        spec = dict(duration=DAY, seed=6, normal_rate_per_day=10.0)
        direct = Scenario(**spec).run()
        engine = Scenario(**spec, engine_mode=True).run()
        assert direct.sends_attempted == engine.sends_attempted
        assert direct.conserved and engine.conserved

    def test_engine_adversarial(self):
        from repro.sim import LinkSpec

        result = Scenario(
            n_isps=3,
            compliant=[True, True, False],
            duration=2 * DAY,
            seed=7,
            spammers=[SpammerSpec(Address(2, 0), volume=300)],
            engine_mode=True,
            link=LinkSpec(base_latency=0.2),
        ).run()
        assert result.conserved
        assert result.spam_delivered > 200
