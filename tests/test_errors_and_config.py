"""Tests for the exception hierarchy and ZmailConfig validation."""

import pytest

from repro import errors
from repro.core.config import NonCompliantMailPolicy, ZmailConfig
from repro.errors import ConfigError


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_subsystem_groupings(self):
        assert issubclass(errors.InsufficientBalance, errors.LedgerError)
        assert issubclass(errors.DailyLimitExceeded, errors.LedgerError)
        assert issubclass(errors.ReplayDetected, errors.ProtocolError)
        assert issubclass(errors.DecryptionError, errors.CryptoError)
        assert issubclass(errors.SMTPTemporaryError, errors.SMTPError)
        assert issubclass(errors.GuardError, errors.APNError)

    def test_single_except_clause_catches_all(self):
        caught = []
        for cls in (errors.InsufficientFunds, errors.SnapshotInProgress,
                    errors.ChannelClosed):
            try:
                if cls in (errors.SMTPTemporaryError, errors.SMTPPermanentError):
                    raise cls(450, "x")
                raise cls("boom")
            except errors.ReproError as exc:
                caught.append(type(exc))
        assert len(caught) == 3

    def test_smtp_reply_errors_carry_codes(self):
        err = errors.SMTPPermanentError(550, "no such user")
        assert err.code == 550
        assert "550" in str(err)
        temp = errors.SMTPTemporaryError(451, "try later")
        assert temp.code == 451


class TestZmailConfigValidation:
    def test_defaults_valid(self):
        ZmailConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"default_daily_limit": -1},
            {"default_user_balance": -1},
            {"default_user_account": -5},
            {"minavail": 10, "maxavail": 5},
            {"minavail": -1},
            {"initial_pool": -1},
            {"initial_bank_account": -1},
            {"snapshot_quiesce_seconds": 0.0},
            {"auto_topup_amount": -1},
            {"reconciliation_period": 1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ZmailConfig(**kwargs)

    def test_frozen(self):
        config = ZmailConfig()
        with pytest.raises(AttributeError):
            config.default_daily_limit = 5  # type: ignore[misc]

    def test_all_policies_constructible(self):
        for policy in NonCompliantMailPolicy:
            ZmailConfig(noncompliant_policy=policy)
