"""Tournament determinism, permutation invariance, and phase extraction.

The two hypothesis properties the issue pins:

* same seed → byte-identical report (``report_json`` compares equal,
  which is exactly what CI's ``cmp`` smoke checks at the file level);
* permuting the matchup order never changes any cell's outcome — cell
  seeds derive from ``(seed, attacker, defender, world index)``, not
  from iteration order.
"""

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.arena import (
    ATTACKERS,
    DEFENDERS,
    cell_seed,
    generate_arena_doc,
    report_digest,
    report_json,
    run_tournament,
)
from repro.errors import SimulationError

ARENA_SETTINGS = settings(max_examples=4, deadline=None, derandomize=True)

FAST_ATTACKERS = sorted(ATTACKERS)
FAST_DEFENDERS = sorted(DEFENDERS)


def mini(seed, attackers, defenders, worlds=1, periods=2, **kw):
    return run_tournament(
        seed=seed, attackers=attackers, defenders=defenders,
        worlds=worlds, periods=periods, **kw
    )


class TestDeterminism:
    @ARENA_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        attackers=st.lists(
            st.sampled_from(FAST_ATTACKERS), min_size=1, max_size=2,
            unique=True,
        ),
        defenders=st.lists(
            st.sampled_from(FAST_DEFENDERS), min_size=1, max_size=2,
            unique=True,
        ),
    )
    def test_same_seed_is_byte_identical(self, seed, attackers, defenders):
        a = mini(seed, attackers, defenders)
        b = mini(seed, attackers, defenders)
        assert report_json(a) == report_json(b)
        assert report_digest(a) == report_digest(b)

    @ARENA_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_matchup_permutation_never_changes_cells(self, seed):
        forward = mini(
            seed, ["static", "zombie_fleet"],
            ["zmail_static", "price_tuner"], worlds=2,
        )
        backward = mini(
            seed, ["zombie_fleet", "static"],
            ["price_tuner", "zmail_static"], worlds=2,
        )

        def cells(report):
            return {
                (c["attacker"], c["defender"], c["world"]): c
                for c in report["cells"]
            }

        assert cells(forward) == cells(backward)
        # Frontier and phase are cell-derived, so they agree too.
        assert forward["phase"] == backward["phase"]

    def test_report_json_is_canonical(self):
        report = mini(4, ["static"], ["zmail_static"])
        text = report_json(report)
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(report, sort_keys=True)
        )

    def test_cell_seed_ignores_everything_but_the_key(self):
        assert cell_seed(1, "a", "b", 0) == cell_seed(1, "a", "b", 0)
        assert cell_seed(1, "a", "b", 0) != cell_seed(1, "a", "b", 1)
        assert cell_seed(1, "a", "b", 0) != cell_seed(2, "a", "b", 0)
        assert cell_seed(1, "a", "b", 0) != cell_seed(1, "b", "a", 0)


class TestReportShape:
    def test_full_registry_default_and_world_metadata(self):
        report = run_tournament(seed=8, worlds=2, periods=2)
        assert report["attackers"] == FAST_ATTACKERS
        assert report["defenders"] == FAST_DEFENDERS
        assert len(report["cells"]) == (
            len(FAST_ATTACKERS) * len(FAST_DEFENDERS) * 2
        )
        assert [w["world"] for w in report["worlds"]] == [0, 1]
        for world in report["worlds"]:
            assert world["ev_per_message"] == pytest.approx(
                world["conversion_rate"] * world["revenue_per_response"]
            )
        assert report["baseline_defender"] == "zmail_static"
        assert report["passed"] is True

    def test_explicit_world_documents_are_accepted(self):
        worlds = [generate_arena_doc(5, periods=2)]
        report = mini(3, ["static"], ["zmail_static"], worlds=worlds)
        assert report["world_count"] == 1
        assert report["worlds"][0]["name"] == worlds[0]["name"]

    def test_unknown_strategy_names_are_loud(self):
        with pytest.raises(SimulationError, match="unknown attacker"):
            mini(1, ["nope"], ["zmail_static"])
        with pytest.raises(SimulationError, match="unknown defender"):
            mini(1, ["static"], ["nope"])

    def test_verify_runs_the_differential_oracle(self):
        report = mini(
            6, ["static"], ["zmail_static"], worlds=1, periods=2, verify=1
        )
        assert report["verify"] == {"cells": 1, "failures": []}
        assert report["passed"] is True


class TestPhaseExtraction:
    def test_collapse_region_exists_under_default_zmail_pricing(self):
        # A slice of the acceptance criterion, cheap enough for tier-1:
        # hand the tournament one hopeless market (ev/msg an order of
        # magnitude under every route's cost floor) and one lucrative
        # one; the phase must split them.
        lo = generate_arena_doc(101, periods=3)
        lo["strategies"]["market"]["conversion_rate"] = 1e-5
        lo["strategies"]["market"]["revenue_per_response"] = 2.0
        hi = generate_arena_doc(102, periods=3)
        hi["strategies"]["market"]["conversion_rate"] = 0.01
        hi["strategies"]["market"]["revenue_per_response"] = 25.0
        report = run_tournament(
            seed=9,
            attackers=["static", "zombie_fleet", "epenny_wash"],
            defenders=["zmail_static"],
            worlds=[lo, hi],
            periods=3,
        )
        phase = report["phase"]["zmail_static"]
        assert phase["collapsed_worlds"] == 1
        assert phase["profitable_worlds"] == 1
        assert phase["collapse_boundary_ev"] == pytest.approx(2e-5)
        assert phase["first_profitable_ev"] == pytest.approx(0.25)
        assert phase["bins"]

    def test_phase_handles_all_collapsed(self):
        lo = generate_arena_doc(103, periods=2)
        lo["strategies"]["market"]["conversion_rate"] = 1e-5
        lo["strategies"]["market"]["revenue_per_response"] = 2.0
        report = run_tournament(
            seed=9, attackers=["static"], defenders=["zmail_static"],
            worlds=[lo], periods=2,
        )
        phase = report["phase"]["zmail_static"]
        assert phase["profitable_worlds"] == 0
        assert phase["first_profitable_ev"] is None
        assert phase["collapse_boundary_ev"] == pytest.approx(2e-5)
