"""The trace oracle: tracing is deterministic and observer-effect-free.

Two properties make the trace usable as a regression oracle:

* **Determinism** — the same seed produces byte-identical traces,
  metrics exports and manifests, run after run.
* **Zero observer effect** — running with tracing on produces exactly
  the outcomes of running with it off; recording never perturbs the
  simulation it records.
"""

import pytest

from repro.chaos import ChaosDeployment, FaultSpec
from repro.core import ZmailConfig
from repro.obs.canonical import (
    CANONICAL_SEED,
    canonical_scenario,
    run_canonical,
)
from repro.obs.schema import EVENT_TYPES, validate_trace_lines
from repro.obs.spans import SpanRegistry
from repro.obs.trace import ListSink, TraceRecorder
from repro.sim import SeededStreams
from repro.sim.rng import derive_seed
from repro.sim.workload import NormalUserWorkload


class TestCanonicalDeterminism:
    def test_same_seed_same_digests_and_manifest_bytes(self):
        _, rec1, exp1, man1 = run_canonical(seed=CANONICAL_SEED)
        _, rec2, exp2, man2 = run_canonical(seed=CANONICAL_SEED)
        assert rec1.events_emitted == rec2.events_emitted > 0
        assert rec1.digest() == rec2.digest()
        assert exp1.digest() == exp2.digest()
        assert man1.to_json() == man2.to_json()
        assert man1.digest() == man2.digest()

    def test_same_seed_same_trace_bytes(self):
        sink1, sink2 = ListSink(), ListSink()
        run_canonical(seed=CANONICAL_SEED, sink=sink1)
        run_canonical(seed=CANONICAL_SEED, sink=sink2)
        assert sink1.lines() == sink2.lines()

    def test_different_seed_different_event_digest(self):
        _, rec1, _, man1 = run_canonical(seed=CANONICAL_SEED)
        _, rec2, _, man2 = run_canonical(seed=CANONICAL_SEED + 1)
        assert rec1.digest() != rec2.digest()
        assert man1.to_json() != man2.to_json()

    def test_canonical_trace_is_schema_valid(self):
        sink = ListSink()
        _, recorder, _, _ = run_canonical(seed=CANONICAL_SEED, sink=sink)
        checked = validate_trace_lines(sink.lines())
        assert checked == recorder.events_emitted > 1000

    def test_canonical_trace_covers_the_ledger_path(self):
        sink = ListSink()
        run_canonical(seed=CANONICAL_SEED, sink=sink)
        seen = {event["type"] for event in sink.events()}
        assert seen <= set(EVENT_TYPES)
        for expected in ("send", "deliver", "midnight", "reconcile"):
            assert expected in seen, f"canonical run never emitted {expected!r}"
        times = [event["t"] for event in sink.events()]
        assert times == sorted(times), "virtual time went backwards"
        assert times[-1] > 0.0, "clock was never installed on the tracer"


class TestObserverEffect:
    def test_tracing_on_and_off_produce_identical_outcomes(self):
        traced = canonical_scenario(tracer=TraceRecorder()).run()
        untraced = canonical_scenario().run()
        assert traced.summary() == untraced.summary()

    def test_manifest_identical_with_and_without_sink(self):
        # Retention is pure observation: streaming every line to a sink
        # must not shift a single event relative to the sinkless run.
        _, rec_sinkless, _, man_sinkless = run_canonical()
        _, rec_sink, _, man_sink = run_canonical(sink=ListSink())
        assert rec_sinkless.digest() == rec_sink.digest()
        assert man_sinkless.to_json() == man_sink.to_json()

    def test_spans_do_not_perturb_the_trace(self):
        plain = canonical_scenario(tracer=TraceRecorder())
        spanned = canonical_scenario(tracer=TraceRecorder())
        spanned.spans = SpanRegistry()
        r1 = plain.run()
        r2 = spanned.run()
        assert r1.summary() == r2.summary()
        assert plain.tracer.digest() == spanned.tracer.digest()
        stats = spanned.spans.stats()
        assert stats["snapshot.round"]["count"] >= 2
        assert stats["workload.batch"]["count"] >= 1


class TestChaosObserverEffect:
    @staticmethod
    def _run(tracer):
        seed = 13
        deployment = ChaosDeployment(
            n_isps=2,
            users_per_isp=3,
            seed=seed,
            config=ZmailConfig(default_user_balance=1000, auto_topup_amount=0),
            faults=FaultSpec(drop_rate=0.2, duplicate_rate=0.1),
            monitor_interval=5.0,
            tracer=tracer,
        )
        workload = NormalUserWorkload(
            n_isps=2,
            users_per_isp=3,
            rate_per_day=10_000.0,
            streams=SeededStreams(derive_seed(seed, "chaos-workload")),
        )
        converged = deployment.run(
            workload.generate(60.0), until=60.0, drain_window=1_000.0
        )
        assert converged
        return deployment

    def test_chaos_digest_identical_with_tracing_on_and_off(self):
        traced = self._run(TraceRecorder(sink=ListSink()))
        untraced = self._run(None)
        assert traced.tracer.events_emitted > 0
        assert traced.digest() == untraced.digest()
        assert traced.stats() == untraced.stats()

    def test_chaos_trace_is_deterministic_and_schema_valid(self):
        first = self._run(TraceRecorder(sink=ListSink()))
        second = self._run(TraceRecorder())
        assert first.tracer.digest() == second.tracer.digest()
        assert validate_trace_lines(first.tracer.sink.lines()) > 0
