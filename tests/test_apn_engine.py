"""Tests for the Abstract Protocol engine: channels, processes, scheduler."""

import pytest

from repro.apn.action import Action, BooleanGuard
from repro.apn.channel import Channel, Message
from repro.apn.process import Process
from repro.apn.scheduler import InvariantViolation, ProtocolState, Scheduler
from repro.errors import APNError, ChannelClosed, GuardError


class TestChannel:
    def test_fifo_order(self):
        chan = Channel("p", "q")
        for i in range(5):
            chan.send(Message("m", (i,)))
        received = [chan.receive().fields[0] for _ in range(5)]
        assert received == list(range(5))

    def test_peek_does_not_consume(self):
        chan = Channel("p", "q")
        chan.send(Message("m", (1,)))
        assert chan.peek() == Message("m", (1,))
        assert len(chan) == 1

    def test_peek_empty(self):
        assert Channel("p", "q").peek() is None

    def test_receive_empty_raises(self):
        with pytest.raises(ChannelClosed, match="empty"):
            Channel("p", "q").receive()

    def test_closed_channel(self):
        chan = Channel("p", "q")
        chan.closed = True
        with pytest.raises(ChannelClosed):
            chan.send(Message("m"))

    def test_contents_snapshot(self):
        chan = Channel("p", "q")
        chan.send(Message("a"))
        chan.send(Message("b"))
        assert [m.name for m in chan.contents()] == ["a", "b"]

    def test_message_meta_excluded_from_equality(self):
        assert Message("m", (1,), meta={"x": 1}) == Message("m", (1,), meta=None)

    def test_message_str(self):
        assert str(Message("email", (1, 2))) == "email(1, 2)"


class TestProcess:
    def test_state_sections(self):
        proc = Process(
            "p",
            constants={"n": 3},
            inputs={"limit": 10},
            variables={"x": 0},
        )
        assert proc["n"] == 3
        assert proc["limit"] == 10
        assert proc["x"] == 0
        assert "x" in proc and "missing" not in proc

    def test_variables_writable(self):
        proc = Process("p", variables={"x": 0})
        proc["x"] = 5
        assert proc["x"] == 5

    def test_constants_write_protected(self):
        proc = Process("p", constants={"n": 3})
        with pytest.raises(APNError, match="read-only"):
            proc["n"] = 4

    def test_inputs_write_protected(self):
        proc = Process("p", inputs={"limit": 10})
        with pytest.raises(APNError, match="read-only"):
            proc["limit"] = 20

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            Process("p")["nope"]

    def test_new_variables_creatable(self):
        proc = Process("p")
        proc["fresh"] = 1
        assert proc["fresh"] == 1

    def test_parameterised_action_expansion(self):
        """The paper's `par` construct: one action per domain value."""
        proc = Process("p", variables={"hits": []})

        def make(g):
            return Action(
                "probe",
                BooleanGuard(lambda pr: False),
                lambda pr: pr["hits"].append(g),
            )

        actions = proc.add_parameterised_action("probe", range(3), make)
        assert [a.name for a in actions] == ["probe[0]", "probe[1]", "probe[2]"]
        assert len(proc.actions) == 3


class TestProtocolState:
    def test_channels_created_lazily(self):
        state = ProtocolState([Process("p"), Process("q")])
        assert state.channels() == {}
        chan = state.channel("p", "q")
        assert state.channel("p", "q") is chan

    def test_duplicate_names_rejected(self):
        with pytest.raises(APNError, match="duplicate"):
            ProtocolState([Process("p"), Process("p")])

    def test_unknown_process(self):
        state = ProtocolState([Process("p")])
        with pytest.raises(APNError, match="unknown"):
            state.process("q")

    def test_in_flight_counts(self):
        state = ProtocolState([Process("p"), Process("q")])
        state.send("p", "q", Message("m"))
        state.send("p", "q", Message("m"))
        assert state.in_flight() == 2

    def test_channels_from(self):
        state = ProtocolState([Process("p"), Process("q"), Process("r")])
        state.send("p", "q", Message("m"))
        state.send("p", "r", Message("m"))
        state.send("q", "p", Message("m"))
        assert len(state.channels_from("p")) == 2


class TestScheduler:
    def test_runs_to_quiescence(self):
        proc = Process("p", variables={"x": 0})
        proc.add_local_action(
            "inc", lambda p: p["x"] < 3, lambda p: p.__setitem__("x", p["x"] + 1)
        )
        sched = Scheduler([proc], seed=1)
        steps = sched.run(max_steps=100)
        assert steps == 3
        assert proc["x"] == 3

    def test_receive_guard_matches_head_only(self):
        sender = Process("s")
        receiver = Process("r", variables={"got": []})
        receiver.add_receive_action(
            "rcv-a", "a", "s", lambda p, m: p["got"].append(m.name)
        )
        sched = Scheduler([sender, receiver], seed=1)
        sched.state.send("s", "r", Message("b"))  # head doesn't match
        sched.state.send("s", "r", Message("a"))
        assert sched.run(10) == 0  # blocked: head is 'b'
        assert receiver["got"] == []

    def test_receive_consumes_in_order(self):
        sender = Process("s")
        receiver = Process("r", variables={"got": []})
        receiver.add_receive_action(
            "rcv", "m", "s", lambda p, m: p["got"].append(m.fields[0])
        )
        sched = Scheduler([sender, receiver], seed=1)
        for i in range(5):
            sched.state.send("s", "r", Message("m", (i,)))
        sched.run(100)
        assert receiver["got"] == [0, 1, 2, 3, 4]

    def test_weak_fairness_statistical(self):
        """Two always-enabled actions both fire under the random scheduler."""
        proc = Process("p", variables={"a": 0, "b": 0, "steps": 0})

        def guard(p):
            return p["steps"] < 200

        def bump(key):
            def run(p):
                p[key] = p[key] + 1
                p["steps"] = p["steps"] + 1

            return run

        proc.add_local_action("bump-a", guard, bump("a"))
        proc.add_local_action("bump-b", guard, bump("b"))
        sched = Scheduler([proc], seed=3)
        sched.run(1000)
        assert proc["a"] > 20 and proc["b"] > 20

    def test_weights_bias_selection(self):
        proc = Process("p", variables={"a": 0, "b": 0, "steps": 0})

        def guard(p):
            return p["steps"] < 500

        def bump(key):
            def run(p):
                p[key] = p[key] + 1
                p["steps"] = p["steps"] + 1

            return run

        proc.add_local_action("rare", guard, bump("a"), weight=0.01)
        proc.add_local_action("common", guard, bump("b"), weight=1.0)
        Scheduler([proc], seed=4).run(2000)
        assert proc["b"] > 10 * proc["a"]

    def test_timeout_guard_sees_global_state(self):
        p = Process("p", variables={"done": False})
        q = Process("q", variables={"sent": False})

        def send_action(proc):
            proc["sent"] = True

        q.add_local_action("send", lambda pr: not pr["sent"], send_action)
        p.add_timeout_action(
            "watch",
            lambda state, proc: state.process("q")["sent"] and not proc["done"],
            lambda proc: proc.__setitem__("done", True),
        )
        sched = Scheduler([p, q], seed=5)
        sched.run(100)
        assert p["done"] is True

    def test_non_boolean_guard_rejected(self):
        proc = Process("p")
        proc.add_local_action("bad", lambda p: 1, lambda p: None)
        with pytest.raises(GuardError, match="returned"):
            Scheduler([proc], seed=0).run(10)

    def test_invariant_violation_raised(self):
        proc = Process("p", variables={"x": 0})
        proc.add_local_action(
            "inc", lambda p: p["x"] < 10, lambda p: p.__setitem__("x", p["x"] + 1)
        )
        sched = Scheduler([proc], seed=0)
        sched.add_invariant("x-small", lambda s: s.process("p")["x"] < 3)
        with pytest.raises(InvariantViolation, match="x-small"):
            sched.run(100)

    def test_trace_recording(self):
        proc = Process("p", variables={"x": 0})
        proc.add_local_action(
            "inc", lambda p: p["x"] < 2, lambda p: p.__setitem__("x", p["x"] + 1)
        )
        sched = Scheduler([proc], seed=0, trace=True)
        sched.run(10)
        assert [r.action for r in sched.trace] == ["inc", "inc"]

    def test_fire_counts(self):
        proc = Process("p", variables={"x": 0})
        proc.add_local_action(
            "inc", lambda p: p["x"] < 4, lambda p: p.__setitem__("x", p["x"] + 1)
        )
        sched = Scheduler([proc], seed=0)
        sched.run(100)
        assert sched.fire_counts()["p.inc"] == 4
