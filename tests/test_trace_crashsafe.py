"""Crash-safety tests for the JSONL trace sink and tail recovery."""

import io
import json
import os

import pytest

from repro.errors import SimulationError
from repro.obs.trace import JsonlSink, TraceRecorder, recover_jsonl_tail


class TestJsonlSinkModes:
    def test_write_mode_truncates(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write("old content\n")
        with JsonlSink(path) as sink:
            sink.accept('{"a":1}')
        assert open(path).read() == '{"a":1}\n'

    def test_resume_mode_appends(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            sink.accept('{"a":1}')
        with JsonlSink(path, resume=True) as sink:
            sink.accept('{"a":2}')
        assert open(path).read() == '{"a":1}\n{"a":2}\n'

    def test_sync_flushes_to_disk(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        sink.accept('{"a":1}')
        sink.sync()
        # Visible to an independent reader before close.
        assert open(path).read() == '{"a":1}\n'
        sink.close()

    def test_sync_tolerates_fd_free_objects(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.accept('{"a":1}')
        sink.sync()  # StringIO.fileno() raises; sync must swallow it
        sink.close()  # never closes a caller-supplied object
        assert buffer.getvalue() == '{"a":1}\n'

    def test_recorder_integration(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with JsonlSink(path) as sink:
            recorder = TraceRecorder(sink=sink, clock=lambda: 1.0)
            recorder.emit("crash", node="isp0")
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["type"] == "crash"


class TestRecoverJsonlTail:
    def _write(self, tmp_path, payload: bytes) -> str:
        path = str(tmp_path / "trace.jsonl")
        with open(path, "wb") as handle:
            handle.write(payload)
        return path

    def test_clean_file_untouched(self, tmp_path):
        payload = b'{"a":1}\n{"a":2}\n'
        path = self._write(tmp_path, payload)
        assert recover_jsonl_tail(path) == 0
        assert open(path, "rb").read() == payload

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, b"")
        assert recover_jsonl_tail(path) == 0

    def test_torn_unterminated_tail_dropped(self, tmp_path):
        path = self._write(tmp_path, b'{"a":1}\n{"a":2}\n{"a":')
        assert recover_jsonl_tail(path) == len(b'{"a":')
        assert open(path, "rb").read() == b'{"a":1}\n{"a":2}\n'

    def test_torn_terminated_tail_dropped(self, tmp_path):
        # A newline-terminated final line that is not valid JSON (the
        # page holding it was half-flushed) must go too.
        path = self._write(tmp_path, b'{"a":1}\n{"a":2\x00\x00\n')
        dropped = recover_jsonl_tail(path)
        assert dropped == len(b'{"a":2\x00\x00\n')
        assert open(path, "rb").read() == b'{"a":1}\n'

    def test_multiple_torn_lines_dropped(self, tmp_path):
        path = self._write(tmp_path, b'{"a":1}\ngarbage\nmore garbage\n')
        recover_jsonl_tail(path)
        assert open(path, "rb").read() == b'{"a":1}\n'

    def test_entirely_torn_file_empties(self, tmp_path):
        path = self._write(tmp_path, b"not json\n")
        recover_jsonl_tail(path)
        assert open(path, "rb").read() == b""

    def test_only_unterminated_garbage(self, tmp_path):
        path = self._write(tmp_path, b"half a line with no newline")
        recover_jsonl_tail(path)
        assert open(path, "rb").read() == b""

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SimulationError, match="cannot recover trace"):
            recover_jsonl_tail(str(tmp_path / "absent.jsonl"))

    def test_recovered_file_resumable(self, tmp_path):
        # The full crash-restart cycle: torn tail, recover, resume append.
        path = self._write(tmp_path, b'{"a":1}\n{"a":2}\n{"to')
        recover_jsonl_tail(path)
        with JsonlSink(path, resume=True) as sink:
            sink.accept('{"a":3}')
        lines = open(path).read().splitlines()
        assert [json.loads(line)["a"] for line in lines] == [1, 2, 3]


class TestKilledProcessTraceParseable:
    def test_sigkill_mid_write_leaves_recoverable_trace(self, tmp_path):
        # A real fail-stop: a child process is SIGKILLed while streaming
        # events; the survivor file must recover to parseable JSONL.
        import signal
        import subprocess
        import sys
        import time

        path = str(tmp_path / "killed.jsonl")
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "import sys\n"
                    "sys.path.insert(0, %r)\n"
                    "from repro.obs.trace import JsonlSink, TraceRecorder\n"
                    "sink = JsonlSink(%r)\n"
                    "rec = TraceRecorder(sink=sink, clock=lambda: 0.0)\n"
                    "i = 0\n"
                    "while True:\n"
                    "    rec.emit('crash', node='isp%%d' %% i)\n"
                    "    sink.sync()\n"
                    "    i += 1\n"
                )
                % (os.path.join(os.path.dirname(__file__), "..", "src"), path),
            ]
        )
        try:
            deadline = time.time() + 10.0
            while time.time() < deadline:
                if os.path.exists(path) and os.path.getsize(path) > 4096:
                    break
                time.sleep(0.05)
        finally:
            child.send_signal(signal.SIGKILL)
            child.wait()
        assert os.path.getsize(path) > 0
        recover_jsonl_tail(path)
        lines = open(path).read().splitlines()
        assert lines, "no complete events survived"
        for line in lines:
            assert json.loads(line)["type"] == "crash"
