"""Tests for e-penny units, user accounts and the ISP ledger."""

import pytest

from repro.core.epenny import (
    EPENNY_PRICE_DOLLARS,
    Money,
    dollars_to_epennies,
    epennies_to_dollars,
)
from repro.core.ledger import Ledger
from repro.core.user import UserAccount
from repro.errors import (
    DailyLimitExceeded,
    InsufficientBalance,
    InsufficientFunds,
    UnknownUser,
)


class TestEPenny:
    def test_price_is_one_cent(self):
        assert EPENNY_PRICE_DOLLARS == 0.01

    def test_conversions(self):
        assert epennies_to_dollars(250) == pytest.approx(2.50)
        assert dollars_to_epennies(2.50) == 250

    def test_money_arithmetic(self):
        assert (Money(3) + Money(4)).amount == 7
        assert (Money(10) - Money(4)).amount == 6

    def test_money_currency_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Money(1, "epenny") + Money(1, "penny")

    def test_money_unknown_currency(self):
        with pytest.raises(ValueError, match="unknown currency"):
            Money(1, "bitcoin")

    def test_money_str(self):
        assert str(Money(5)) == "5e¢"
        assert str(Money(5, "penny")) == "5¢"

    def test_money_type_error(self):
        with pytest.raises(TypeError):
            Money(1) + 1


class TestUserAccount:
    def make(self, **kwargs):
        defaults = dict(user_id=0, account=100, balance=50, daily_limit=10)
        defaults.update(kwargs)
        return UserAccount(**defaults)

    def test_epenny_debit_credit(self):
        user = self.make()
        user.debit_epennies(20)
        user.credit_epennies(5)
        assert user.balance == 35

    def test_overdraft_rejected(self):
        user = self.make(balance=3)
        with pytest.raises(InsufficientBalance):
            user.debit_epennies(4)
        assert user.balance == 3  # unchanged on failure

    def test_penny_overdraft_rejected(self):
        user = self.make(account=3)
        with pytest.raises(InsufficientFunds):
            user.debit_pennies(4)

    def test_negative_amounts_rejected(self):
        user = self.make()
        for op in (user.debit_epennies, user.credit_epennies,
                   user.debit_pennies, user.credit_pennies):
            with pytest.raises(ValueError):
                op(-1)

    def test_daily_limit_blocks(self):
        user = self.make(daily_limit=2)
        for _ in range(2):
            user.check_send_allowed()
            user.note_sent()
        with pytest.raises(DailyLimitExceeded):
            user.check_send_allowed()
        assert user.limit_warnings == 1

    def test_reset_daily_restores_quota(self):
        user = self.make(daily_limit=1)
        user.check_send_allowed()
        user.note_sent()
        user.reset_daily()
        user.check_send_allowed()  # does not raise

    def test_net_flow(self):
        user = self.make()
        for _ in range(3):
            user.note_sent()
        for _ in range(5):
            user.note_received()
        assert user.net_epenny_flow == 2
        assert user.lifetime_sent == 3
        assert user.lifetime_received == 5

    def test_junk_folder_accounting(self):
        user = self.make()
        user.note_received(junk=True)
        user.note_received()
        assert user.junk_folder == 1
        assert user.inbox == 1


class TestLedger:
    def make(self, pool=1000, users=3):
        ledger = Ledger(initial_pool=pool)
        for i in range(users):
            ledger.add_user(i, account=100, balance=50, daily_limit=10)
        return ledger

    def test_add_and_lookup(self):
        ledger = self.make()
        assert ledger.user(1).user_id == 1
        assert len(ledger) == 3
        assert 2 in ledger and 9 not in ledger

    def test_duplicate_user_rejected(self):
        ledger = self.make()
        with pytest.raises(ValueError, match="exists"):
            ledger.add_user(0, account=0, balance=0, daily_limit=1)

    def test_unknown_user(self):
        with pytest.raises(UnknownUser):
            self.make().user(99)

    def test_user_buys_epennies(self):
        ledger = self.make()
        ledger.user_buys_epennies(0, 30)
        user = ledger.user(0)
        assert user.account == 70
        assert user.balance == 80
        assert ledger.pool == 970

    def test_buy_limited_by_pool(self):
        ledger = self.make(pool=10)
        with pytest.raises(InsufficientBalance, match="pool"):
            ledger.user_buys_epennies(0, 20)

    def test_buy_limited_by_account(self):
        ledger = self.make()
        with pytest.raises(InsufficientFunds):
            ledger.user_buys_epennies(0, 500)

    def test_user_sells_epennies(self):
        ledger = self.make()
        ledger.user_sells_epennies(0, 20)
        user = ledger.user(0)
        assert user.account == 120
        assert user.balance == 30
        assert ledger.pool == 1020

    def test_sell_limited_by_balance(self):
        ledger = self.make()
        with pytest.raises(InsufficientBalance):
            ledger.user_sells_epennies(0, 51)

    def test_nonpositive_amounts_rejected(self):
        ledger = self.make()
        with pytest.raises(ValueError):
            ledger.user_buys_epennies(0, 0)
        with pytest.raises(ValueError):
            ledger.user_sells_epennies(0, -5)

    def test_exchange_conserves_ledger_value(self):
        ledger = self.make()
        before = ledger.totals().total_value
        ledger.user_buys_epennies(0, 30)
        ledger.user_sells_epennies(1, 10)
        ledger.user_buys_epennies(2, 5)
        assert ledger.totals().total_value == before

    def test_external_transfers(self):
        ledger = self.make()
        ledger.external_debit(0)
        ledger.external_credit(1)
        assert ledger.user(0).balance == 49
        assert ledger.user(1).balance == 51

    def test_pool_operations(self):
        ledger = self.make(pool=100)
        ledger.pool_credit(50)
        ledger.pool_debit(120)
        assert ledger.pool == 30
        with pytest.raises(InsufficientBalance):
            ledger.pool_debit(31)

    def test_totals_breakdown(self):
        ledger = self.make(pool=1000, users=3)
        totals = ledger.totals()
        assert totals.user_accounts == 300
        assert totals.user_balances == 150
        assert totals.pool == 1000
        assert totals.total_value == 1450

    def test_reset_daily_counters(self):
        ledger = self.make()
        ledger.user(0).note_sent()
        ledger.user(1).note_sent()
        ledger.reset_daily_counters()
        assert all(u.sent_today == 0 for u in ledger.users())

    def test_users_sorted(self):
        ledger = Ledger(initial_pool=0)
        for i in (3, 1, 2):
            ledger.add_user(i, account=0, balance=0, daily_limit=1)
        assert [u.user_id for u in ledger.users()] == [1, 2, 3]
