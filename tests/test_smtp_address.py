"""Tests for address parsing and the simulator address convention."""

import pytest

from repro.errors import SMTPProtocolError
from repro.sim.workload import Address
from repro.smtp.address import (
    EmailAddress,
    from_sim_address,
    parse_address,
    to_sim_address,
)


class TestParseAddress:
    @pytest.mark.parametrize(
        "raw,local,domain",
        [
            ("alice@example.com", "alice", "example.com"),
            ("<bob@isp0.example>", "bob", "isp0.example"),
            ("  carol@mail.example.org  ", "carol", "mail.example.org"),
            ("user+tag@example.com", "user+tag", "example.com"),
            ("first.last@example.com", "first.last", "example.com"),
        ],
    )
    def test_valid(self, raw, local, domain):
        address = parse_address(raw)
        assert address.local == local
        assert address.domain == domain

    @pytest.mark.parametrize(
        "raw",
        [
            "no-at-sign",
            "@example.com",
            "user@",
            "user@@example.com",
            "user@-bad.example",
            "user@exa mple.com",
            "sp ace@example.com",
            "",
        ],
    )
    def test_invalid(self, raw):
        with pytest.raises(SMTPProtocolError):
            parse_address(raw)

    def test_str_round_trip(self):
        assert str(parse_address("a@b.example")) == "a@b.example"

    def test_domain_lower(self):
        assert parse_address("a@EXAMPLE.Com").domain_lower == "example.com"


class TestSimConvention:
    def test_round_trip(self):
        sim = Address(isp=3, user=17)
        assert to_sim_address(from_sim_address(sim)) == sim

    def test_from_sim_format(self):
        assert str(from_sim_address(Address(0, 5))) == "user5@isp0.example"

    def test_to_sim_accepts_strings(self):
        assert to_sim_address("user2@isp1.example") == Address(1, 2)

    def test_to_sim_rejects_foreign(self):
        with pytest.raises(SMTPProtocolError, match="convention"):
            to_sim_address("alice@gmail.example")

    def test_to_sim_accepts_email_address_objects(self):
        assert to_sim_address(EmailAddress("user9", "isp4.example")) == Address(4, 9)
