"""Tests for genesis+deltas network persistence through the durable store."""

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.errors import SimulationError
from repro.sim import Address
from repro.store import (
    DurableStore,
    attach_tracker,
    commit_network,
    durable_digest,
    init_store,
    restore_network,
)


@pytest.fixture
def store(tmp_path):
    s = DurableStore.create(str(tmp_path / "net.db"))
    yield s
    s.close()


def _fresh(seed=11, **kwargs):
    return ZmailNetwork(n_isps=3, users_per_isp=5, seed=seed, **kwargs)


class TestDirtyTracking:
    def test_send_touches_sender_and_recipient(self, store):
        network = _fresh()
        tracker = attach_tracker(network)
        network.send(Address(0, 1), Address(1, 2))
        assert (0, 1) in tracker.dirty
        assert (1, 2) in tracker.dirty

    def test_fund_user_touches(self, store):
        network = _fresh()
        tracker = attach_tracker(network)
        network.fund_user(Address(2, 3), epennies=10)
        assert (2, 3) in tracker.dirty

    def test_drain_sorted_and_clears(self):
        network = _fresh()
        tracker = attach_tracker(network)
        network.send(Address(2, 4), Address(0, 0))
        drained = tracker.drain()
        assert drained == sorted(drained)
        assert tracker.dirty == set()

    def test_untracked_network_unaffected(self):
        # The hook default is None; plain networks pay nothing.
        network = _fresh()
        network.send(Address(0, 1), Address(1, 2))  # must not raise


class TestRoundTrip:
    def test_genesis_restore_is_identical(self, store):
        network = _fresh()
        init_store(store, network)
        assert durable_digest(restore_network(store)) == durable_digest(network)

    def test_restore_after_traffic(self, store):
        network = _fresh()
        init_store(store, network)
        tracker = attach_tracker(network)
        for i in range(40):
            network.send(Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5))
        network.advance_day_to(1)
        commit_network(store, network, tracker, barrier=1)
        assert durable_digest(restore_network(store)) == durable_digest(network)

    def test_only_dirty_users_persisted(self, store):
        network = _fresh()
        init_store(store, network)
        tracker = attach_tracker(network)
        network.send(Address(0, 1), Address(1, 2))
        commit_network(store, network, tracker, barrier=1)
        assert store.count("user") == 2  # sender + recipient only

    def test_incremental_commits_accumulate(self, store):
        network = _fresh()
        init_store(store, network)
        tracker = attach_tracker(network)
        network.send(Address(0, 1), Address(1, 2))
        commit_network(store, network, tracker, barrier=1)
        network.send(Address(2, 3), Address(0, 4))
        commit_network(store, network, tracker, barrier=2)
        assert store.count("user") == 4
        assert store.barrier == 2
        assert durable_digest(restore_network(store)) == durable_digest(network)

    def test_clean_tracker_commit_writes_aggregates_only(self, store):
        network = _fresh()
        init_store(store, network)
        tracker = attach_tracker(network)
        written = commit_network(store, network, tracker, barrier=1)
        # 3 ISP aggregates + bank + net counters, no users
        assert written == 5

    def test_non_compliant_users_skipped(self, store):
        network = ZmailNetwork(
            n_isps=3, users_per_isp=5, seed=4,
            compliant=[True, False, True],
        )
        init_store(store, network)
        tracker = attach_tracker(network)
        network.send(Address(0, 1), Address(1, 2))  # recipient non-compliant
        commit_network(store, network, tracker, barrier=1)
        assert store.count("user") == 1
        assert durable_digest(restore_network(store)) == durable_digest(network)

    def test_config_survives(self, store):
        config = ZmailConfig(default_daily_limit=17, initial_pool=777)
        network = ZmailNetwork(
            n_isps=2, users_per_isp=3, seed=9, config=config
        )
        init_store(store, network)
        restored = restore_network(store)
        assert restored.config.default_daily_limit == 17
        assert restored.config.initial_pool == 777

    def test_extra_records_ride_the_same_barrier(self, store):
        network = _fresh()
        init_store(store, network)
        tracker = attach_tracker(network)
        commit_network(
            store, network, tracker, barrier=1,
            extra=[("svc", "gateway0", {"queue": []})],
        )
        assert store.get("svc", "gateway0") == {"queue": []}


class TestRestoreRefusals:
    def test_format_version_mismatch(self, store):
        init_store(store, _fresh())
        store.commit([], barrier=1, meta={"journal_format_version": "1"})
        with pytest.raises(SimulationError, match="format"):
            restore_network(store)

    def test_missing_bank_record(self, store):
        init_store(store, _fresh())
        store.commit([], barrier=1, deletes=[("bank", "bank")])
        with pytest.raises(SimulationError, match="no bank ledger"):
            restore_network(store)

    def test_missing_net_counters(self, store):
        init_store(store, _fresh())
        store.commit([], barrier=1, deletes=[("net", "net")])
        with pytest.raises(SimulationError, match="no network counters"):
            restore_network(store)

    def test_malformed_net_counters(self, store):
        init_store(store, _fresh())
        store.commit([("net", "net", {"wrong": 1})], barrier=1)
        with pytest.raises(SimulationError, match="network counters"):
            restore_network(store)

    def test_aggregate_for_noncompliant_isp(self, store):
        network = ZmailNetwork(
            n_isps=2, users_per_isp=3, seed=2, compliant=[True, False]
        )
        init_store(store, network)
        aggregate = store.get("isp", "0")
        store.commit([("isp", "1", aggregate)], barrier=1)
        with pytest.raises(SimulationError, match="non-compliant"):
            restore_network(store)

    def test_user_record_bad_key(self, store):
        init_store(store, _fresh())
        store.commit([("user", "mangled", {"user_id": 0})], barrier=1)
        with pytest.raises(SimulationError, match="user record key"):
            restore_network(store)

    def test_user_record_noncompliant_isp(self, store):
        network = ZmailNetwork(
            n_isps=2, users_per_isp=3, seed=2, compliant=[True, False]
        )
        init_store(store, network)
        store.commit(
            [("user", "1:0", {"user_id": 0, "balance": 1, "sent_today": 0,
                              "lifetime_sent": 0, "lifetime_received": 0,
                              "daily_limit": 5, "frozen": False})],
            barrier=1,
        )
        with pytest.raises(SimulationError, match="non-compliant"):
            restore_network(store)

    def test_corrupt_meta_raises(self, store):
        init_store(store, _fresh())
        store.commit([], barrier=1, meta={"n_isps": "three"})
        with pytest.raises(SimulationError, match="corrupted store metadata"):
            restore_network(store)


class TestDurableDigest:
    def test_sensitive_to_balance_change(self):
        a, b = _fresh(), _fresh()
        assert durable_digest(a) == durable_digest(b)
        b.fund_user(Address(0, 0), epennies=1)
        assert durable_digest(a) != durable_digest(b)

    def test_ignores_in_flight(self):
        # Unlike accounting_digest, in-flight paid letters are volatile
        # state a restart legitimately zeroes.
        network = _fresh()
        before = durable_digest(network)
        network.isps[0].paid_letters_in_flight = 99
        assert durable_digest(network) == before
