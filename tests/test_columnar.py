"""The columnar batch executor: exact equivalence with the direct loop.

The contract under test (DESIGN.md §10): driving a scenario through
``repro.columnar`` must be *indistinguishable* from the direct loop —
identical summary counters, identical accounting digest over every
balance, identical per-reconcile-cut digests, and (when traced) a
byte-identical ordered event stream including timestamps and sequence
numbers. The hypothesis suite drives randomized small scenarios through
both executors so the equivalence claim rests on more than the canonical
workload; shrinking then hands back a minimal diverging scenario.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ZmailConfig
from repro.core.scenario import Scenario, SpammerSpec, ZombieSpec
from repro.errors import SimulationError
from repro.obs.canonical import (
    CANONICAL_MODES,
    canonical_scenario,
    invariant_manifest,
    run_canonical,
)
from repro.obs.manifest import accounting_digest
from repro.sim.clock import DAY, HOUR
from repro.sim.rng import SeededStreams
from repro.sim.workload import Address, merge_workloads


def run_both(scenario: Scenario):
    """Run one scenario spec through the direct and columnar executors."""
    scenario.columnar = False
    direct = scenario.run()
    scenario.columnar = True
    columnar = scenario.run()
    return direct, columnar


class TestCanonicalEquivalence:
    def test_summary_and_accounting_match_direct(self):
        direct, columnar = run_both(canonical_scenario())
        assert columnar.summary() == direct.summary()
        assert accounting_digest(columnar.network) == accounting_digest(
            direct.network
        )

    def test_every_reconcile_cut_digest_matches(self):
        direct, columnar = run_both(canonical_scenario())
        assert direct.cut_digests  # daily cuts + the final one
        assert columnar.cut_digests == direct.cut_digests

    def test_traced_event_stream_is_byte_identical(self):
        # The strongest claim: with tracing on, the columnar executor
        # reproduces the direct loop's ordered event stream exactly —
        # same events, same virtual timestamps, same sequence numbers.
        _, direct_rec, _, _ = run_canonical(mode="direct")
        _, columnar_rec, _, _ = run_canonical(mode="columnar")
        assert direct_rec.events_emitted == columnar_rec.events_emitted
        assert direct_rec.digest() == columnar_rec.digest()

    def test_columnar_runs_are_deterministic(self):
        first = canonical_scenario(mode="columnar").run()
        second = canonical_scenario(mode="columnar").run()
        assert first.summary() == second.summary()
        assert first.cut_digests == second.cut_digests
        assert accounting_digest(first.network) == accounting_digest(
            second.network
        )

    def test_invariant_manifest_identical_across_all_executors(self):
        documents = {
            mode: invariant_manifest(mode=mode).to_json()
            for mode in CANONICAL_MODES
        }
        assert len(set(documents.values())) == 1, documents.keys()


class TestColumnStreams:
    def test_column_streams_match_request_streams(self):
        # The chunk plan must replay exactly the request sequence the
        # direct loop consumes: same order, same senders/recipients/kinds.
        scenario = canonical_scenario()
        requests = list(
            merge_workloads(
                *scenario.workload_streams(SeededStreams(scenario.seed))
            )
        )
        from repro.columnar.plan import KIND_ORDER, merge_column_streams

        upi = scenario.users_per_isp
        flat = []
        for chunk in merge_column_streams(
            scenario.workload_column_streams(SeededStreams(scenario.seed))
        ):
            for i in range(len(chunk)):
                flat.append(
                    (
                        float(chunk.times[i]),
                        int(chunk.senders[i]),
                        int(chunk.recipients[i]),
                        KIND_ORDER[chunk.kinds[i]],
                    )
                )
        assert len(flat) == len(requests)
        for got, request in zip(flat, requests):
            sender = request.sender.isp * upi + request.sender.user
            recipient = request.recipient.isp * upi + request.recipient.user
            assert got == (request.time, sender, recipient, request.kind)


class TestGuards:
    def test_engine_mode_is_rejected(self):
        scenario = canonical_scenario(mode="engine_stream")
        scenario.columnar = True
        with pytest.raises(SimulationError):
            scenario.run()

    def test_non_compliant_deployment_is_rejected(self):
        scenario = canonical_scenario(mode="columnar")
        scenario.compliant = [True, True, False]
        with pytest.raises(SimulationError):
            scenario.run()

    def test_missing_numpy_is_rejected(self, monkeypatch):
        import repro.columnar.executor as executor

        monkeypatch.setattr(executor, "HAVE_NUMPY", False)
        with pytest.raises(SimulationError):
            canonical_scenario(mode="columnar").run()

    def test_unknown_canonical_mode_is_rejected(self):
        with pytest.raises(SimulationError):
            canonical_scenario(mode="parallel")


# -- randomized equivalence ------------------------------------------------

N_ISPS, USERS = 3, 5

_addresses = st.builds(
    Address,
    isp=st.integers(min_value=0, max_value=N_ISPS - 1),
    user=st.integers(min_value=0, max_value=USERS - 1),
)

_spammers = st.builds(
    SpammerSpec,
    address=_addresses,
    volume=st.integers(min_value=0, max_value=120),
    war_chest=st.integers(min_value=0, max_value=80),
    start=st.floats(min_value=0.0, max_value=DAY, allow_nan=False),
    duration=st.floats(min_value=HOUR, max_value=DAY, allow_nan=False),
)

_zombies = st.builds(
    lambda address, start, length, rate: ZombieSpec(
        address, rate_per_hour=rate, start=start, end=start + length
    ),
    address=_addresses,
    start=st.floats(min_value=0.0, max_value=DAY, allow_nan=False),
    length=st.floats(min_value=HOUR, max_value=DAY, allow_nan=False),
    rate=st.floats(min_value=0.5, max_value=40.0, allow_nan=False),
)

_scenarios = st.builds(
    Scenario,
    n_isps=st.just(N_ISPS),
    users_per_isp=st.just(USERS),
    config=st.builds(
        ZmailConfig,
        default_daily_limit=st.integers(min_value=1, max_value=40),
        default_user_balance=st.integers(min_value=0, max_value=30),
        auto_topup_amount=st.integers(min_value=0, max_value=15),
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    duration=st.floats(min_value=HOUR, max_value=2 * DAY, allow_nan=False),
    normal_rate_per_day=st.one_of(
        st.just(0.0),
        st.floats(min_value=0.5, max_value=25.0, allow_nan=False),
    ),
    spammers=st.lists(_spammers, max_size=2),
    zombies=st.lists(_zombies, max_size=1),
    reconcile_every=st.sampled_from([0.0, 6 * HOUR, DAY]),
)


class TestRandomizedEquivalence:
    @given(scenario=_scenarios)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_columnar_matches_direct_on_random_scenarios(self, scenario):
        # Tight limits, tiny balances and mid-day campaign starts push
        # most messages into the contended/blocked classes — the paths
        # where a vectorization bug would actually show up.
        direct, columnar = run_both(scenario)
        assert columnar.summary() == direct.summary()
        assert columnar.cut_digests == direct.cut_digests
        assert accounting_digest(columnar.network) == accounting_digest(
            direct.network
        )
