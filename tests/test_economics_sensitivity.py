"""Tests for replication statistics and sensitivity analysis."""

import pytest

from repro.economics.sensitivity import (
    ConfidenceInterval,
    elasticity,
    mean_ci,
    replicate,
)
from repro.economics.spammer import CampaignModel, SpamRegime


class TestMeanCI:
    def test_constant_samples_zero_width(self):
        ci = mean_ci([5.0] * 10)
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.contains(5.0)

    def test_interval_covers_true_mean(self):
        import random

        rng = random.Random(0)
        samples = [rng.gauss(10.0, 2.0) for _ in range(100)]
        ci = mean_ci(samples, confidence=0.99)
        assert ci.contains(10.0)

    def test_higher_confidence_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert mean_ci(samples, confidence=0.99).half_width > mean_ci(
            samples, confidence=0.8
        ).half_width

    def test_more_samples_narrower(self):
        import random

        rng = random.Random(1)
        small = [rng.gauss(0, 1) for _ in range(10)]
        large = small * 10  # same spread, 10x n
        assert mean_ci(large).half_width < mean_ci(small).half_width

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match=">= 2"):
            mean_ci([1.0])

    def test_str_form(self):
        text = str(mean_ci([1.0, 2.0, 3.0]))
        assert "±" in text and "n=3" in text


class TestReplicate:
    def test_collects_per_seed(self):
        values = replicate(lambda seed: float(seed * 2), seeds=[1, 2, 3])
        assert values == [2.0, 4.0, 6.0]

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: 0.0, seeds=[])

    def test_user_neutrality_replicated(self):
        """E4's claim holds across seeds, not just one lucky run."""
        from repro.core import ZmailNetwork
        from repro.economics import analyze_user_flows
        from repro.sim import DAY, SeededStreams
        from repro.sim.workload import NormalUserWorkload

        def run(seed: int) -> float:
            net = ZmailNetwork(n_isps=2, users_per_isp=8, seed=seed)
            workload = NormalUserWorkload(
                n_isps=2, users_per_isp=8, rate_per_day=10.0,
                streams=SeededStreams(seed),
            )
            net.run_workload(workload.generate(3 * DAY))
            return analyze_user_flows(net).mean_net_flow

        values = replicate(run, seeds=range(6))
        ci = mean_ci(values)
        assert ci.contains(0.0)


class TestElasticity:
    def test_linear_model_elasticity_one(self):
        assert elasticity(lambda x: 3.0 * x, 10.0) == pytest.approx(1.0)

    def test_constant_model_elasticity_zero(self):
        assert elasticity(lambda x: 42.0, 10.0) == pytest.approx(0.0)

    def test_power_model(self):
        assert elasticity(lambda x: x**2, 5.0) == pytest.approx(2.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            elasticity(lambda x: x, 0.0)
        with pytest.raises(ValueError):
            elasticity(lambda x: -1.0, 1.0)

    def test_breakeven_rate_is_exactly_proportional_to_price(self):
        """Structural check: the break-even response rate scales 1:1 with
        the e-penny price — the paper's claim is not knife-edge."""
        model = CampaignModel(1_000_000, 0.00003, 25.0)

        def breakeven(price: float) -> float:
            return model.break_even_response_rate(
                SpamRegime.zmail(epenny_dollars=price)
            )

        value = elasticity(breakeven, 0.01)
        assert value == pytest.approx(1.0, abs=0.02)

    def test_optimal_volume_only_weakly_price_sensitive_for_survivors(self):
        """Surviving (targeted) campaigns shrink sub-proportionally with
        price (log dependence): |elasticity| < 1, unlike the bulk
        campaigns that hit zero volume outright."""
        model = CampaignModel(1_000_000, 0.002, 30.0)

        def volume(price: float) -> float:
            return float(
                model.optimal_volume(SpamRegime.zmail(epenny_dollars=price))
            )

        assert abs(elasticity(volume, 0.01)) < 0.8


class TestBufferValidation:
    """required_buffer() checked against simulated random walks."""

    def simulate_min_balance(self, rate, days, seed):
        """Minimum running net flow of a balanced sender over the period."""
        import random

        rng = random.Random(seed)
        # Poisson(rate) sends and receives per day, tracked daily.
        balance = 0
        minimum = 0
        for _ in range(days):
            sends = self._poisson(rng, rate)
            receives = self._poisson(rng, rate)
            balance += receives - sends
            minimum = min(minimum, balance)
        return minimum

    @staticmethod
    def _poisson(rng, lam):
        import math

        # Knuth's algorithm; lam is small here.
        threshold = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= rng.random()
            if p <= threshold:
                return k
            k += 1

    def test_buffer_covers_simulated_minimum_at_confidence(self):
        from repro.economics import required_buffer

        rate, days = 10, 30
        buffer = required_buffer(rate, days, confidence=0.99)
        shortfalls = 0
        trials = 300
        for seed in range(trials):
            if -self.simulate_min_balance(rate, days, seed) > buffer:
                shortfalls += 1
        # At 99% the shortfall rate should be well under 5% (the bound is
        # conservative by construction).
        assert shortfalls / trials < 0.05

    def test_buffer_not_absurdly_conservative(self):
        """The bound should be within ~4x of the empirical 99th percentile,
        or the 'pocket change' claim would be self-dealing."""
        from repro.economics import required_buffer

        rate, days = 10, 30
        buffer = required_buffer(rate, days, confidence=0.99)
        minima = sorted(
            -self.simulate_min_balance(rate, days, seed)
            for seed in range(300)
        )
        p99 = minima[int(0.99 * len(minima))]
        assert buffer <= 4 * max(1, p99)
