"""Tests for the §5 mailing-list acknowledgment mechanism."""

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.mailinglist import ListServer
from repro.sim.workload import Address

DISTRIBUTOR = Address(0, 0)


def make_list(subscribers=10, prune_after=3, **net_kwargs):
    defaults = dict(n_isps=3, users_per_isp=8, seed=2)
    defaults.update(net_kwargs)
    net = ZmailNetwork(**defaults)
    net.fund_user(DISTRIBUTOR, epennies=500)
    server = ListServer(net, DISTRIBUTOR, prune_after_misses=prune_after)
    population = [
        Address(isp, user)
        for isp in range(net.n_isps)
        for user in range(net.users_per_isp)
        if Address(isp, user) != DISTRIBUTOR
    ]
    for address in population[:subscribers]:
        server.subscribe(address)
    return net, server


class TestSubscriptions:
    def test_subscribe_idempotent(self):
        _, server = make_list(subscribers=0)
        address = Address(1, 1)
        server.subscribe(address)
        server.subscribe(address)
        assert len(server) == 1

    def test_unsubscribe(self):
        _, server = make_list(subscribers=3)
        victim = server.subscribers()[0]
        server.unsubscribe(victim)
        assert victim not in server.subscribers()
        server.unsubscribe(victim)  # no-op


class TestPostEconomics:
    def test_full_ack_post_is_free(self):
        """Everyone acknowledges: the distributor nets zero (§5's goal)."""
        net, server = make_list(subscribers=10)
        before = net.isps[0].ledger.user(0).balance
        outcome = server.post()
        assert outcome.sent_ok == 10
        assert outcome.acked == 10
        assert outcome.net_epenny_cost == 0
        assert net.isps[0].ledger.user(0).balance == before

    def test_subscribers_pay_one_epenny_per_post(self):
        net, server = make_list(subscribers=10)
        subscriber = server.subscribers()[0]
        before = net.isps[subscriber.isp].ledger.user(subscriber.user).balance
        server.post()
        after = net.isps[subscriber.isp].ledger.user(subscriber.user).balance
        # +1 for receiving the post, -1 for the automated ack.
        assert after == before

    def test_no_acks_cost_full_fanout(self):
        net, server = make_list(subscribers=10)
        outcome = server.post(ack_probability_fn=lambda a: False)
        assert outcome.acked == 0
        assert outcome.net_epenny_cost == 10

    def test_partial_acks(self):
        net, server = make_list(subscribers=10, prune_after=0)
        acks = {a: (i % 2 == 0) for i, a in enumerate(server.subscribers())}
        outcome = server.post(ack_probability_fn=lambda a: acks[a])
        assert outcome.acked == 5
        assert outcome.net_epenny_cost == 5

    def test_value_conserved_across_posts(self):
        net, server = make_list(subscribers=10)
        for _ in range(5):
            server.post()
        assert net.total_value() == net.expected_total_value()

    def test_total_net_cost_accumulates(self):
        _, server = make_list(subscribers=4, prune_after=0)
        server.post(ack_probability_fn=lambda a: False)
        server.post(ack_probability_fn=lambda a: False)
        assert server.total_net_cost() == 8


class TestPruning:
    def test_stale_subscribers_pruned(self):
        """The §5 hygiene benefit: non-acking addresses get dropped."""
        _, server = make_list(subscribers=6, prune_after=2)
        dead = set(server.subscribers()[:2])
        alive = set(server.subscribers()[2:])
        fn = lambda a: a not in dead
        outcome1 = server.post(ack_probability_fn=fn)
        assert outcome1.pruned == []
        outcome2 = server.post(ack_probability_fn=fn)
        assert set(outcome2.pruned) == dead
        assert set(server.subscribers()) == alive

    def test_ack_resets_miss_counter(self):
        _, server = make_list(subscribers=3, prune_after=2)
        flaky = server.subscribers()[0]
        answers = iter([False, True, False])
        fn = lambda a, it={flaky: answers}: (
            next(it[a]) if a in it else True
        )
        for _ in range(3):
            server.post(ack_probability_fn=fn)
        assert flaky in server.subscribers()  # never hit 2 consecutive misses

    def test_pruning_disabled(self):
        _, server = make_list(subscribers=4, prune_after=0)
        for _ in range(5):
            server.post(ack_probability_fn=lambda a: False)
        assert len(server) == 4


class TestNonCompliantSubscribers:
    def test_noncompliant_subscriber_cannot_ack(self):
        net, server = make_list(
            subscribers=0, compliant=[True, True, False]
        )
        compliant_sub = Address(1, 1)
        noncompliant_sub = Address(2, 1)
        server.subscribe(compliant_sub)
        server.subscribe(noncompliant_sub)
        outcome = server.post()
        assert outcome.sent_ok == 2
        assert outcome.acked == 1  # only the compliant one returns the penny

    def test_noncompliant_subscriber_eventually_pruned(self):
        net, server = make_list(
            subscribers=0, compliant=[True, True, False], prune_after=2
        )
        noncompliant_sub = Address(2, 1)
        server.subscribe(noncompliant_sub)
        server.post()
        outcome = server.post()
        assert outcome.pruned == [noncompliant_sub]


class TestDistributorLimits:
    def test_blocked_when_distributor_broke(self):
        net, server = make_list(
            subscribers=10,
            config=ZmailConfig(default_user_balance=3, auto_topup_amount=0,
                               default_user_account=0),
        )
        # Distributor was funded via fund_user in make_list? No: fund_user
        # injects 500 e-pennies; neutralise by a fresh server setup here.
        net2 = ZmailNetwork(
            n_isps=2, users_per_isp=6, seed=3,
            config=ZmailConfig(default_user_balance=3, auto_topup_amount=0,
                               default_user_account=0),
        )
        server2 = ListServer(net2, Address(0, 0), prune_after_misses=0)
        for user in range(1, 6):
            server2.subscribe(Address(1, user))
        outcome = server2.post(ack_probability_fn=lambda a: False)
        assert outcome.sent_ok == 3  # balance ran dry
        assert outcome.blocked == 2
