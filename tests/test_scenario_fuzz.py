"""Differential fuzzing tests: executors must agree, failures must shrink.

The oracle under test: for any generated world, the direct loop, the
columnar batch executor and the inline cluster produce byte-identical
invariant manifests — with one carved-out semantic boundary (the
epoch-barriered cluster is only byte-comparable under credit slack; the
pinned regression world below documents a real divergence found by the
fuzzer on the other side of that boundary). Shrinking is deterministic:
a failing world descends to the same minimal world on every machine.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.scenario import (
    check_world,
    cluster_comparable,
    compile_scenario,
    format_report,
    generate_doc,
    parse_replay,
    replay_world,
    run_fuzz,
    run_plan,
    shrink,
    world_seed,
)
from repro.sim.clock import HOUR

FUZZ_SETTINGS = settings(max_examples=6, deadline=None, derandomize=True)

#: The campaign seed whose worlds first exposed the cluster's
#: credit-slack boundary (world 1: tight-balance two-zombie world whose
#: senders run out of e-pennies mid-run).
PINNED_CAMPAIGN_SEED = 2026
PINNED_WORLD_INDEX = 1


def slack_world(**overrides):
    """A small all-compliant world with credit slack (cluster-comparable)."""
    doc = {
        "schema_version": 1,
        "name": "fuzz-unit",
        "seed": 3,
        "topology": {"n_isps": 3, "users_per_isp": 3},
        "economics": {
            "default_daily_limit": 50,
            "default_user_balance": 200,
            "auto_topup_amount": 0,
        },
        "traffic": {
            "duration": 6 * HOUR,
            "normal_rate_per_day": 6.0,
            "spammers": [{"isp": 1, "user": 0, "volume": 60,
                          "war_chest": 10, "start": 0.0,
                          "duration": 2 * HOUR}],
            "zombies": [{"isp": 2, "user": 2, "rate_per_hour": 40.0,
                         "start": HOUR, "end": 3 * HOUR}],
            "floods": [{"attacker_isp": 0, "target_isp": 1,
                        "rate_per_sec": 1.0, "start": HOUR,
                        "duration": HOUR, "attackers": 2}],
        },
        # The fault schedule only matters on the chaos drive; its
        # presence must not disturb the invariant-manifest drives.
        "faults": {"drop_rate": 0.1, "duplicate_rate": 0.1},
        "reconcile": {"every": 3 * HOUR},
        "cluster": {"shards": 2, "epoch": HOUR, "lag": 0},
    }
    doc.update(overrides)
    return doc


# -- the oracle --------------------------------------------------------------


def test_mixed_world_agrees_across_all_executors():
    doc = slack_world()
    assert cluster_comparable(doc)
    assert check_world(doc, shards=2) is None


def test_engine_mode_matches_direct():
    plan = compile_scenario(slack_world())
    direct = run_plan(plan, "direct")["manifest"].to_json()
    engine = run_plan(plan, "engine")["manifest"].to_json()
    assert direct == engine


@given(
    seed=st.integers(0, 2**16 - 1),
    users=st.integers(2, 4),
    zombie_rate=st.floats(20.0, 90.0),
    flood_rate=st.floats(0.5, 2.0),
)
@FUZZ_SETTINGS
def test_differential_small_worlds(seed, users, zombie_rate, flood_rate):
    doc = slack_world(seed=seed)
    doc["topology"]["users_per_isp"] = users
    doc["traffic"]["zombies"][0]["user"] = users - 1
    doc["traffic"]["zombies"][0]["rate_per_hour"] = round(zombie_rate, 1)
    doc["traffic"]["floods"][0]["rate_per_sec"] = round(flood_rate, 2)
    reason = check_world(doc, shards=2)
    assert reason is None, f"seed {seed}: {reason}"


def test_cluster_comparable_predicate():
    assert cluster_comparable(slack_world())
    tight = slack_world(
        economics={"default_daily_limit": 50, "default_user_balance": 40}
    )
    assert not cluster_comparable(tight)


def test_pinned_tight_balance_world_documents_the_cluster_boundary():
    """Regression corpus: a fuzzer-found world on the far side of slack.

    This generated tight-balance world is NOT cluster-comparable: a
    user's balance binds mid-run, so the cluster's next-epoch delivery
    of cross-ISP credits legitimately changes which sends clear. The
    oracle must stay green (it drops the cluster from the strict
    comparison), and the raw divergence must still be there — if it
    ever disappears, the cluster stopped barrier-delivering and this
    boundary (and ``cluster_comparable``) should be re-examined.
    """
    doc = generate_doc(world_seed(PINNED_CAMPAIGN_SEED, PINNED_WORLD_INDEX))
    assert not cluster_comparable(doc)
    assert check_world(doc, shards=2) is None
    plan = compile_scenario(doc)
    direct = run_plan(plan, "direct")["manifest"]
    cluster = run_plan(plan, "cluster", shards=2)["manifest"]
    assert direct.to_json() != cluster.to_json()
    assert direct.extra["conserved"] and cluster.extra["conserved"]
    assert (direct.extra["sends_attempted"]
            == cluster.extra["sends_attempted"])


# -- shrinking ---------------------------------------------------------------


def rich_world():
    return slack_world(
        topology={"n_isps": 4, "users_per_isp": 5, "noncompliant": [3]},
        traffic={
            "duration": 12 * HOUR,
            "normal_rate_per_day": 8.0,
            "spammers": [{"isp": 1, "user": 0, "volume": 80}],
            "zombies": [{"isp": 0, "user": 0, "rate_per_hour": 40.0,
                         "start": 0.0, "end": 2 * HOUR}],
            "floods": [{"attacker_isp": 0, "target_isp": 1,
                        "rate_per_sec": 2.0}],
        },
        crashes=[{"node": "isp1", "at": 60.0, "down_for": 30.0}],
        overload={"enabled": True},
    )


def test_shrink_reduces_to_the_minimal_failing_world():
    failing = lambda doc: bool(doc["traffic"]["zombies"])
    minimal = shrink(rich_world(), failing)
    assert len(minimal["traffic"]["zombies"]) == 1
    assert minimal["traffic"]["spammers"] == []
    assert minimal["traffic"]["floods"] == []
    assert minimal["traffic"]["normal_rate_per_day"] == 0.0
    assert minimal["crashes"] == []
    assert not minimal["overload"]["enabled"]
    assert minimal["topology"]["noncompliant"] == []
    assert minimal["topology"]["n_isps"] == 2
    assert minimal["topology"]["users_per_isp"] == 2
    assert minimal["traffic"]["duration"] == 6 * HOUR
    assert minimal["traffic"]["zombies"][0]["rate_per_hour"] <= 10.0
    # Determinism: the same failing world shrinks to the same minimum.
    assert shrink(rich_world(), failing) == minimal


def test_shrink_requires_a_failing_start():
    with pytest.raises(SimulationError, match="failing document"):
        shrink(rich_world(), lambda doc: False)


# -- the campaign harness ----------------------------------------------------


def test_fuzz_campaign_reports_and_replays_failures(tmp_path):
    # A cheap deliberately-broken oracle: any world with spammers fails.
    broken = lambda doc: (
        "spammers present" if doc["traffic"]["spammers"] else None
    )
    count, seed = 8, PINNED_CAMPAIGN_SEED
    report = run_fuzz(count=count, seed=seed, out=str(tmp_path), check=broken)
    assert not report["passed"]
    assert report["failures"], "some generated world must have spammers"
    row = report["failures"][0]
    assert row["reason"] == "spammers present"
    assert row["minimal"]["traffic"]["spammers"], "shrunk world still fails"
    assert len(row["artifacts"]) == 2
    for path in row["artifacts"]:
        assert (tmp_path / path.split("/")[-1]).exists()

    token = row["replay"]
    assert parse_replay(token) == (seed, row["index"])
    replayed = replay_world(token, check=broken)
    assert not replayed["passed"]
    assert replayed["failures"][0]["minimal"] == row["minimal"]

    text = format_report(report)
    assert f"repro fuzz --replay {token}" in text
    assert "verdict=FAIL" in text


def test_fuzz_campaign_green_path():
    healthy = lambda doc: None
    report = run_fuzz(count=3, seed=1, check=healthy)
    assert report["passed"] and report["failures"] == []
    assert "verdict=PASS" in format_report(report)
    green_replay = replay_world("1:0", check=healthy)
    assert green_replay["passed"]


def test_fuzz_input_validation():
    with pytest.raises(SimulationError, match="count >= 1"):
        run_fuzz(count=0, seed=1)
    with pytest.raises(SimulationError, match="SEED:INDEX"):
        parse_replay("not-a-token")
