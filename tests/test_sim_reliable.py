"""Tests for the reliable-delivery layer, including failure injection
showing why Zmail's credit accounting needs it on lossy links."""

import pytest

from repro.core import ZmailNetwork
from repro.errors import SimulationError
from repro.sim import Engine, LinkSpec, Network, SeededStreams
from repro.sim.reliable import ReliableEndpoint
from repro.sim.workload import Address


def make_pair(loss=0.0, seed=0, interval=1.0):
    engine = Engine()
    net = Network(engine, SeededStreams(seed), default_link=LinkSpec(
        base_latency=0.05, loss_rate=loss))
    received = []
    a = ReliableEndpoint("a", net, engine,
                         lambda src, p: received.append((src, p)),
                         retransmit_interval=interval)
    b = ReliableEndpoint("b", net, engine,
                         lambda src, p: received.append((src, p)),
                         retransmit_interval=interval)
    return engine, net, a, b, received


class TestLosslessPath:
    def test_in_order_delivery(self):
        engine, _, a, b, received = make_pair()
        for i in range(20):
            a.send("b", i)
        engine.run(until=100)
        assert [p for _, p in received] == list(range(20))

    def test_no_spurious_retransmissions_when_acked_fast(self):
        engine, _, a, b, received = make_pair(interval=10.0)
        for i in range(5):
            a.send("b", i)
        engine.run(until=100)
        assert a.retransmissions == 0
        assert a.all_delivered()

    def test_bidirectional(self):
        engine, _, a, b, received = make_pair()
        a.send("b", "ping")
        b.send("a", "pong")
        engine.run(until=100)
        assert set(received) == {("a", "ping"), ("b", "pong")}


class TestLossyPath:
    @pytest.mark.parametrize("loss", [0.2, 0.5, 0.8])
    def test_exactly_once_in_order_under_loss(self, loss):
        engine, _, a, b, received = make_pair(loss=loss, seed=3)
        for i in range(50):
            a.send("b", i)
        engine.run(until=10_000)
        assert [p for _, p in received] == list(range(50))
        assert a.all_delivered()
        assert a.retransmissions > 0

    def test_duplicates_are_dropped_not_redelivered(self):
        engine, _, a, b, received = make_pair(loss=0.5, seed=7)
        for i in range(30):
            a.send("b", i)
        engine.run(until=10_000)
        payloads = [p for _, p in received]
        assert payloads == sorted(set(payloads))
        # Retransmission under ack loss necessarily produces duplicates.
        assert b.duplicates_dropped > 0

    def test_gives_up_after_max_retries_on_dead_link(self):
        engine = Engine()
        net = Network(engine, SeededStreams(1),
                      default_link=LinkSpec(loss_rate=1.0))
        a = ReliableEndpoint("a", net, engine, lambda s, p: None,
                             retransmit_interval=0.5, max_retries=5)
        ReliableEndpoint("b", net, engine, lambda s, p: None)
        a.send("b", "doomed")
        with pytest.raises(SimulationError, match="gave up"):
            engine.run(until=1_000)

    def test_validation(self):
        engine = Engine()
        net = Network(engine, SeededStreams(0))
        with pytest.raises(SimulationError):
            ReliableEndpoint("x", net, engine, lambda s, p: None,
                             retransmit_interval=0.0)


class TestZmailNeedsReliability:
    """Failure injection: the paper's §4.4 invariant silently assumes
    reliable channels. Lost paid email -> honest ISPs look like cheaters."""

    def run_with_loss(self, loss):
        engine = Engine()
        net = ZmailNetwork(
            n_isps=3, users_per_isp=5, seed=9, engine=engine,
            link=LinkSpec(base_latency=0.1, loss_rate=loss),
        )
        # Bank control links are lossless (they model authenticated RPC);
        # only the mail paths between ISPs drop messages.
        for i in range(3):
            net.net.set_link("bank", f"isp{i}", LinkSpec(base_latency=0.1))
            net.net.set_link(f"isp{i}", "bank", LinkSpec(base_latency=0.1))
        for i in range(200):
            engine.schedule_at(
                i * 0.05,
                lambda i=i: net.send(
                    Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5)
                ),
            )
        engine.schedule_at(60.0, lambda: net.reconcile("timeout"))
        engine.run()
        return net

    def test_lossless_links_reconcile_cleanly(self):
        net = self.run_with_loss(0.0)
        assert net.last_report.consistent

    def test_lossy_links_false_alarm_honest_isps(self):
        net = self.run_with_loss(0.3)
        assert net.last_report is not None
        assert not net.last_report.consistent  # honest ISPs flagged!

    def test_reliable_layer_restores_the_invariant(self):
        """Same loss rate, but letters ride the reliable layer."""
        engine = Engine()
        raw = Network(engine, SeededStreams(11),
                      default_link=LinkSpec(base_latency=0.05, loss_rate=0.3))
        net = ZmailNetwork(n_isps=3, users_per_isp=5, seed=11)  # direct core

        # Reliable endpoints carry (sender, recipient) tuples between ISPs;
        # on delivery we drive the *direct-mode* deliver path, so the Zmail
        # accounting sees exactly-once arrivals despite the lossy wire.
        endpoints = {}

        def deliver(src, payload):
            letter = payload
            net.isps[letter.dst_isp].deliver(letter)

        for i in range(3):
            endpoints[i] = ReliableEndpoint(
                f"r{i}", raw, engine, deliver, retransmit_interval=0.5
            )

        for i in range(200):
            sender = Address(i % 3, i % 5)
            recipient = Address((i + 1) % 3, (i + 2) % 5)
            receipt = net.isps[sender.isp].submit(
                sender.user, recipient, __import__(
                    "repro.sim.workload", fromlist=["TrafficKind"]
                ).TrafficKind.NORMAL,
            )
            if receipt.letter is not None:
                endpoints[sender.isp].send(f"r{recipient.isp}", receipt.letter)
        engine.run(until=10_000)
        assert all(e.all_delivered() for e in endpoints.values())
        assert net.reconcile("direct").consistent


class TestLifecycle:
    """Crash/restart semantics: close() must cancel retransmit timers."""

    def test_close_cancels_retransmit_timers(self):
        engine, _, a, b, _ = make_pair(loss=1.0, seed=1)
        for i in range(5):
            a.send("b", i)
        assert engine.pending > 0
        a.close()
        # The only pending events were a's retransmit timers (total loss
        # means no deliveries are in flight); all must be cancelled.
        assert all(
            not label.startswith("rexmit") for label in engine.pending_labels()
        )

    def test_no_timer_fires_into_closed_endpoint(self):
        engine, _, a, b, received = make_pair(loss=1.0, seed=2)
        a.send("b", 0)
        frames_before = a.frames_sent
        a.close()
        engine.run(until=1_000)
        # A dead process retransmits nothing.
        assert a.frames_sent == frames_before
        assert received == []

    def test_send_on_closed_endpoint_raises(self):
        engine, _, a, b, _ = make_pair()
        a.close()
        with pytest.raises(SimulationError, match="closed"):
            a.send("b", 0)

    def test_closed_endpoint_drops_incoming_frames(self):
        engine, _, a, b, received = make_pair()
        b.close()
        a.send("b", "lost-on-arrival")
        engine.run(until=2)
        assert received == []
        assert b.frames_dropped_closed > 0
        # The sender keeps the frame queued (no ack came back).
        assert not a.all_delivered()

    def test_reopen_resumes_retransmission_and_delivers(self):
        engine, _, a, b, received = make_pair()
        b.close()
        for i in range(3):
            a.send("b", i)
        engine.run(until=5)
        assert received == []
        b.reopen()
        engine.run(until=100)
        assert [p for _, p in received] == [0, 1, 2]
        assert a.all_delivered()

    def test_close_is_idempotent_and_reopen_noop_when_open(self):
        engine, _, a, b, _ = make_pair()
        a.close()
        a.close()
        a.reopen()
        a.reopen()
        a.send("b", 0)
        engine.run(until=10)
        assert a.all_delivered()


class TestBackoff:
    def test_backoff_grows_retransmit_spacing(self):
        engine = Engine()
        net = Network(engine, SeededStreams(5), default_link=LinkSpec(
            base_latency=0.05, loss_rate=1.0))
        a = ReliableEndpoint("a", net, engine, lambda s, p: None,
                             retransmit_interval=1.0, backoff=2.0,
                             max_retries=None)
        ReliableEndpoint("b", net, engine, lambda s, p: None)
        a.send("b", 0)
        engine.run(until=14.9)
        # Retransmits at 1, 3, 7, 15... => 3 within t<15 under backoff;
        # a fixed interval would have produced 14.
        assert a.retransmissions == 3

    def test_max_interval_caps_backoff(self):
        engine = Engine()
        net = Network(engine, SeededStreams(5), default_link=LinkSpec(
            base_latency=0.05, loss_rate=1.0))
        a = ReliableEndpoint("a", net, engine, lambda s, p: None,
                             retransmit_interval=1.0, backoff=2.0,
                             max_interval=2.0, max_retries=None)
        ReliableEndpoint("b", net, engine, lambda s, p: None)
        a.send("b", 0)
        engine.run(until=20.9)
        # 1, then capped at 2: fires at 1, 3, 5, ..., 19 => 10 rounds.
        assert a.retransmissions == 10

    def test_gives_up_after_max_retries(self):
        engine = Engine()
        net = Network(engine, SeededStreams(5), default_link=LinkSpec(
            base_latency=0.05, loss_rate=1.0))
        a = ReliableEndpoint("a", net, engine, lambda s, p: None,
                             retransmit_interval=0.5, max_retries=3)
        ReliableEndpoint("b", net, engine, lambda s, p: None)
        a.send("b", 0)
        with pytest.raises(SimulationError, match="gave up after 3"):
            engine.run(until=1_000)

    def test_ack_progress_resets_retry_count(self):
        engine, net, a, b, received = make_pair(loss=0.4, seed=11)
        # Under 40% loss with max_retries=3 per *consecutive* silent
        # round, delivery still converges because each ack resets the
        # counter; without the reset, total retransmissions would exceed
        # the cap long before 30 frames drained.
        a.max_retries = 3
        for i in range(30):
            a.send("b", i)
        engine.run(until=10_000)
        assert [p for _, p in received] == list(range(30))
        assert a.retransmissions > 3
