"""Tests for the reliable-delivery layer, including failure injection
showing why Zmail's credit accounting needs it on lossy links."""

import pytest

from repro.core import ZmailNetwork
from repro.errors import SimulationError
from repro.sim import Engine, LinkSpec, Network, SeededStreams
from repro.sim.reliable import ReliableEndpoint
from repro.sim.workload import Address


def make_pair(loss=0.0, seed=0, interval=1.0):
    engine = Engine()
    net = Network(engine, SeededStreams(seed), default_link=LinkSpec(
        base_latency=0.05, loss_rate=loss))
    received = []
    a = ReliableEndpoint("a", net, engine,
                         lambda src, p: received.append((src, p)),
                         retransmit_interval=interval)
    b = ReliableEndpoint("b", net, engine,
                         lambda src, p: received.append((src, p)),
                         retransmit_interval=interval)
    return engine, net, a, b, received


class TestLosslessPath:
    def test_in_order_delivery(self):
        engine, _, a, b, received = make_pair()
        for i in range(20):
            a.send("b", i)
        engine.run(until=100)
        assert [p for _, p in received] == list(range(20))

    def test_no_spurious_retransmissions_when_acked_fast(self):
        engine, _, a, b, received = make_pair(interval=10.0)
        for i in range(5):
            a.send("b", i)
        engine.run(until=100)
        assert a.retransmissions == 0
        assert a.all_delivered()

    def test_bidirectional(self):
        engine, _, a, b, received = make_pair()
        a.send("b", "ping")
        b.send("a", "pong")
        engine.run(until=100)
        assert set(received) == {("a", "ping"), ("b", "pong")}


class TestLossyPath:
    @pytest.mark.parametrize("loss", [0.2, 0.5, 0.8])
    def test_exactly_once_in_order_under_loss(self, loss):
        engine, _, a, b, received = make_pair(loss=loss, seed=3)
        for i in range(50):
            a.send("b", i)
        engine.run(until=10_000)
        assert [p for _, p in received] == list(range(50))
        assert a.all_delivered()
        assert a.retransmissions > 0

    def test_duplicates_are_dropped_not_redelivered(self):
        engine, _, a, b, received = make_pair(loss=0.5, seed=7)
        for i in range(30):
            a.send("b", i)
        engine.run(until=10_000)
        payloads = [p for _, p in received]
        assert payloads == sorted(set(payloads))
        # Retransmission under ack loss necessarily produces duplicates.
        assert b.duplicates_dropped > 0

    def test_gives_up_after_max_retries_on_dead_link(self):
        engine = Engine()
        net = Network(engine, SeededStreams(1),
                      default_link=LinkSpec(loss_rate=1.0))
        a = ReliableEndpoint("a", net, engine, lambda s, p: None,
                             retransmit_interval=0.5, max_retries=5)
        ReliableEndpoint("b", net, engine, lambda s, p: None)
        a.send("b", "doomed")
        with pytest.raises(SimulationError, match="gave up"):
            engine.run(until=1_000)

    def test_validation(self):
        engine = Engine()
        net = Network(engine, SeededStreams(0))
        with pytest.raises(SimulationError):
            ReliableEndpoint("x", net, engine, lambda s, p: None,
                             retransmit_interval=0.0)


class TestZmailNeedsReliability:
    """Failure injection: the paper's §4.4 invariant silently assumes
    reliable channels. Lost paid email -> honest ISPs look like cheaters."""

    def run_with_loss(self, loss):
        engine = Engine()
        net = ZmailNetwork(
            n_isps=3, users_per_isp=5, seed=9, engine=engine,
            link=LinkSpec(base_latency=0.1, loss_rate=loss),
        )
        # Bank control links are lossless (they model authenticated RPC);
        # only the mail paths between ISPs drop messages.
        for i in range(3):
            net.net.set_link("bank", f"isp{i}", LinkSpec(base_latency=0.1))
            net.net.set_link(f"isp{i}", "bank", LinkSpec(base_latency=0.1))
        for i in range(200):
            engine.schedule_at(
                i * 0.05,
                lambda i=i: net.send(
                    Address(i % 3, i % 5), Address((i + 1) % 3, (i + 2) % 5)
                ),
            )
        engine.schedule_at(60.0, lambda: net.reconcile("timeout"))
        engine.run()
        return net

    def test_lossless_links_reconcile_cleanly(self):
        net = self.run_with_loss(0.0)
        assert net.last_report.consistent

    def test_lossy_links_false_alarm_honest_isps(self):
        net = self.run_with_loss(0.3)
        assert net.last_report is not None
        assert not net.last_report.consistent  # honest ISPs flagged!

    def test_reliable_layer_restores_the_invariant(self):
        """Same loss rate, but letters ride the reliable layer."""
        engine = Engine()
        raw = Network(engine, SeededStreams(11),
                      default_link=LinkSpec(base_latency=0.05, loss_rate=0.3))
        net = ZmailNetwork(n_isps=3, users_per_isp=5, seed=11)  # direct core

        # Reliable endpoints carry (sender, recipient) tuples between ISPs;
        # on delivery we drive the *direct-mode* deliver path, so the Zmail
        # accounting sees exactly-once arrivals despite the lossy wire.
        endpoints = {}

        def deliver(src, payload):
            letter = payload
            net.isps[letter.dst_isp].deliver(letter)

        for i in range(3):
            endpoints[i] = ReliableEndpoint(
                f"r{i}", raw, engine, deliver, retransmit_interval=0.5
            )

        for i in range(200):
            sender = Address(i % 3, i % 5)
            recipient = Address((i + 1) % 3, (i + 2) % 5)
            receipt = net.isps[sender.isp].submit(
                sender.user, recipient, __import__(
                    "repro.sim.workload", fromlist=["TrafficKind"]
                ).TrafficKind.NORMAL,
            )
            if receipt.letter is not None:
                endpoints[sender.isp].send(f"r{recipient.isp}", receipt.letter)
        engine.run(until=10_000)
        assert all(e.all_delivered() for e in endpoints.values())
        assert net.reconcile("direct").consistent
