"""The committed example scenarios reproduce their hand-built originals.

``examples/scenarios/`` migrates every built-in world to the declarative
schema: the canonical 3-ISP scenario and all six cells of the built-in
chaos and overload campaigns. These tests pin the migration — the
canonical document compiles to a ``Scenario`` *equal* to the hand-built
one, and each campaign document's chaos run reproduces the original
cell's report row byte for byte — so the documents and the code they
migrated from can never drift apart silently.
"""

import json
import os

import pytest

from repro.chaos.campaign import DEFAULT_OVERLOAD_SPEC, DEFAULT_SPEC, run_cell
from repro.cli import main
from repro.obs.canonical import canonical_scenario
from repro.scenario import compile_scenario, run_plan

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples", "scenarios")


def example(name):
    return os.path.join(EXAMPLES, name)


def test_canonical_document_compiles_to_the_canonical_scenario():
    plan = compile_scenario(example("canonical-3isp.yaml"))
    assert plan.scenario("direct") == canonical_scenario()


def campaign_cases():
    for spec, stem in ((DEFAULT_SPEC, "chaos"), (DEFAULT_OVERLOAD_SPEC,
                                                 "overload")):
        for cell in spec["cells"]:
            yield pytest.param(spec, cell, f"{stem}-{cell['name']}.yaml",
                               id=f"{stem}-{cell['name']}")


@pytest.mark.parametrize("spec, cell, filename", campaign_cases())
def test_campaign_documents_reproduce_cell_rows(spec, cell, filename):
    plan = compile_scenario(example(filename))
    row = run_plan(plan, "chaos")["report"]
    assert row == run_cell(spec, cell, seed=spec["seed"])
    assert row["passed"]


def test_cli_run_writes_manifest_and_report(tmp_path, capsys):
    manifest_path = tmp_path / "manifest.json"
    report_path = tmp_path / "report.json"
    code = main([
        "run", example("canonical-3isp.yaml"),
        "--mode", "direct",
        "--manifest", str(manifest_path),
        "--report", str(report_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario:        canonical-3isp" in out
    assert "conserved:       True" in out
    manifest = json.loads(manifest_path.read_text())
    assert manifest["extra.scenario"] == "canonical-3isp"
    assert manifest["extra.conserved"] is True
    assert json.loads(report_path.read_text())["conserved"] is True


def test_cli_run_chaos_mode(tmp_path, capsys):
    code = main([
        "run", example("chaos-clean.yaml"), "--mode", "chaos",
        "--manifest", str(tmp_path / "nope.json"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "chaos cell:      clean" in out
    assert "no invariant manifest was written" in out
    assert not (tmp_path / "nope.json").exists()


def test_cli_fuzz_smoke(capsys):
    assert main(["fuzz", "--count", "1", "--seed", "5", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report == {"seed": 5, "count": 1, "shards": 2,
                      "failures": [], "passed": True}


def test_arena_document_byte_agrees_across_executors():
    # The committed strategy-world example: the v2 `strategies` term
    # lowers through a pilot match onto every executor, and the
    # invariant manifests must not disagree by a byte (the same oracle
    # the plain worlds above answer to).
    plan = compile_scenario(example("arena-wash-vs-tuner.yaml"))
    manifests = {
        mode: run_plan(plan, mode)["manifest"].to_json()
        for mode in ("direct", "columnar", "cluster")
    }
    assert manifests["direct"] == manifests["columnar"]
    assert manifests["direct"] == manifests["cluster"]
    assert run_plan(plan, "direct")["manifest"].extra["conserved"] is True
