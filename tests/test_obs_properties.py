"""Hypothesis properties pinning the observability layer's contracts.

* the ring sink never exceeds its bound, for any emission count;
* counters are monotone: any sequence of valid increments never
  decreases the value, and invalid ones change nothing;
* every event type round-trips JSONL bit-exactly (emit → serialize →
  parse → same event), for arbitrary field values;
* manifest and metrics-export digests are order-insensitive: insertion
  and attachment order never change the digest.
"""

import io
import json

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.obs.manifest import RunManifest
from repro.obs.metrics_export import MetricsExporter
from repro.obs.schema import EVENT_TYPES, validate_event
from repro.obs.trace import JsonlSink, RingSink, TraceRecorder
from repro.sim.metrics import Counter

OBS_SETTINGS = settings(max_examples=60, deadline=None, derandomize=True)

#: JSON-exact scalars: finite floats and bounded ints survive a
#: serialize/parse round trip bit-for-bit.
SCALARS = st.one_of(
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=20),
    st.booleans(),
)


@OBS_SETTINGS
@given(bound=st.integers(1, 50), emissions=st.integers(0, 200))
def test_ring_sink_never_exceeds_bound(bound, emissions):
    ring = RingSink(bound=bound)
    recorder = TraceRecorder(sink=ring)
    for i in range(emissions):
        recorder.emit("crash", node=f"isp{i}")
        assert len(ring) <= bound
    assert len(ring) == min(emissions, bound)
    assert recorder.events_emitted == emissions


@OBS_SETTINGS
@given(increments=st.lists(st.integers(0, 1000), max_size=50))
def test_counter_never_decreases(increments):
    counter = Counter("c")
    previous = 0
    for amount in increments:
        counter.increment(amount)
        assert counter.value >= previous
        previous = counter.value
    assert counter.value == sum(increments)


@OBS_SETTINGS
@given(amount=st.integers(-1000, -1))
def test_counter_rejects_decrease_and_stays_unchanged(amount):
    counter = Counter("c")
    counter.increment(7)
    with pytest.raises(ValueError):
        counter.increment(amount)
    assert counter.value == 7


@pytest.mark.parametrize("etype", sorted(EVENT_TYPES))
@OBS_SETTINGS
@given(data=st.data())
def test_jsonl_round_trips_every_event_type(etype, data):
    t = data.draw(st.floats(0.0, 1e6, allow_nan=False), label="t")
    fields = {
        name: data.draw(SCALARS, label=name)
        for name in sorted(EVENT_TYPES[etype])
    }
    buffer = io.StringIO()
    recorder = TraceRecorder(sink=JsonlSink(buffer))
    recorder.emit_at(t, etype, **fields)
    line = buffer.getvalue()
    assert line.endswith("\n")
    event = json.loads(line)
    validate_event(event)
    assert event["type"] == etype
    assert event["t"] == t
    assert event["seq"] == 1
    for name, value in fields.items():
        assert event[name] == value


@OBS_SETTINGS
@given(
    extra=st.dictionaries(
        st.text(st.characters(categories=["Ll"]), min_size=1, max_size=8),
        SCALARS,
        max_size=6,
    )
)
def test_manifest_digest_is_order_insensitive(extra):
    def manifest(extra_dict):
        return RunManifest(
            seed=7,
            config_digest="c" * 64,
            event_count=3,
            event_digest="e" * 64,
            metrics_digest="m" * 64,
            extra=extra_dict,
        )

    forward = manifest(dict(extra))
    backward = manifest(dict(reversed(list(extra.items()))))
    assert forward.digest() == backward.digest()
    assert forward.to_json() == backward.to_json()
    # And the round trip preserves everything the digest covers.
    parsed = RunManifest.from_json(forward.to_json())
    assert parsed.digest() == forward.digest()
    assert parsed.extra == extra


@OBS_SETTINGS
@given(
    namespaces=st.dictionaries(
        st.text(st.characters(categories=["Ll"]), min_size=1, max_size=8),
        st.dictionaries(
            st.text(st.characters(categories=["Ll"]), min_size=1, max_size=8),
            st.integers(0, 10_000),
            min_size=1,
            max_size=4,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_exporter_digest_is_attachment_order_insensitive(namespaces):
    forward = MetricsExporter()
    for namespace, values in namespaces.items():
        forward.add_static(namespace, values)
    backward = MetricsExporter()
    for namespace, values in reversed(list(namespaces.items())):
        backward.add_static(namespace, values)
    assert forward.digest() == backward.digest()
    assert forward.export() == backward.export()
