"""Public-API hygiene: exports exist, are documented, and import cleanly."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.apn",
    "repro.smtp",
    "repro.sim",
    "repro.columnar",
    "repro.economics",
    "repro.baselines",
    "repro.crypto",
    "repro.spamcorpus",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40


class TestDocstrings:
    @pytest.mark.parametrize("package", PACKAGES[1:])
    def test_every_public_item_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented

    @pytest.mark.parametrize("package", PACKAGES[1:])
    def test_public_methods_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                if attr.__name__ == "<lambda>":
                    continue  # dataclass field defaults, not methods
                if not (attr.__doc__ or "").strip():
                    undocumented.append(f"{package}.{name}.{attr_name}")
        assert not undocumented, undocumented


class TestVersioning:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
