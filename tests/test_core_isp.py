"""Tests for CompliantISP / NonCompliantISP behaviour (§4.1, §5)."""

import pytest

from repro.core.config import NonCompliantMailPolicy, ZmailConfig
from repro.core.isp import CompliantISP, NonCompliantISP
from repro.core.transfer import Letter, SendStatus
from repro.errors import SnapshotInProgress
from repro.sim.workload import Address, TrafficKind

DIRECTORY = {0: True, 1: True, 2: False}


def make_isp(isp_id=0, users=4, **config_kwargs):
    config = ZmailConfig(**config_kwargs)
    isp = CompliantISP(isp_id, users, config)
    isp.update_compliance(DIRECTORY)
    return isp


class TestLocalDelivery:
    def test_epenny_moves_between_local_users(self):
        isp = make_isp()
        receipt = isp.submit(0, Address(0, 1), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.DELIVERED_LOCAL
        assert isp.ledger.user(0).balance == 99
        assert isp.ledger.user(1).balance == 101

    def test_self_send_is_neutral(self):
        isp = make_isp()
        isp.submit(0, Address(0, 0), TrafficKind.NORMAL)
        assert isp.ledger.user(0).balance == 100

    def test_local_counts_against_limit(self):
        isp = make_isp(default_daily_limit=1)
        isp.submit(0, Address(0, 1), TrafficKind.NORMAL)
        receipt = isp.submit(0, Address(0, 2), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.BLOCKED_LIMIT


class TestInterISPSend:
    def test_paid_send_updates_credit(self):
        isp = make_isp()
        receipt = isp.submit(0, Address(1, 2), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.SENT_PAID
        assert receipt.letter == Letter(
            Address(0, 0), Address(1, 2), TrafficKind.NORMAL, paid=True
        )
        assert isp.credit[1] == 1
        assert isp.ledger.user(0).balance == 99

    def test_unpaid_send_to_noncompliant(self):
        isp = make_isp()
        receipt = isp.submit(0, Address(2, 0), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.SENT_UNPAID
        assert not receipt.letter.paid
        assert isp.ledger.user(0).balance == 100  # no charge
        assert 2 not in isp.credit

    def test_unpaid_send_ignores_limit(self):
        """The paper's pseudocode guards balance/limit only on the
        compliant branch."""
        isp = make_isp(default_daily_limit=0)
        receipt = isp.submit(0, Address(2, 0), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.SENT_UNPAID

    def test_blocked_on_empty_balance(self):
        isp = make_isp(default_user_balance=0)
        receipt = isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.BLOCKED_BALANCE
        assert isp.stats.blocked_balance == 1

    def test_blocked_on_limit_records_warning(self):
        isp = make_isp(default_daily_limit=2)
        for _ in range(2):
            isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        receipt = isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.BLOCKED_LIMIT
        assert isp.zombie_suspects() == [0]

    def test_midnight_resets_quota(self):
        isp = make_isp(default_daily_limit=1)
        isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        isp.midnight()
        receipt = isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.SENT_PAID


class TestReceive:
    def test_paid_receive_credits_user_and_debits_credit(self):
        isp = make_isp(isp_id=0)
        letter = Letter(Address(1, 3), Address(0, 2), TrafficKind.NORMAL, True)
        assert isp.deliver(letter)
        assert isp.ledger.user(2).balance == 101
        assert isp.credit[1] == -1
        assert isp.stats.received_paid == 1

    def test_unknown_user_dropped(self):
        isp = make_isp(users=2)
        letter = Letter(Address(1, 0), Address(0, 9), TrafficKind.NORMAL, True)
        assert not isp.deliver(letter)

    def test_noncompliant_deliver_policy(self):
        isp = make_isp()
        letter = Letter(Address(2, 0), Address(0, 1), TrafficKind.SPAM, False)
        assert isp.deliver(letter)
        assert isp.ledger.user(1).balance == 100  # no payment
        assert isp.stats.received_unpaid == 1

    def test_noncompliant_discard_policy(self):
        isp = make_isp(noncompliant_policy=NonCompliantMailPolicy.DISCARD)
        letter = Letter(Address(2, 0), Address(0, 1), TrafficKind.SPAM, False)
        assert not isp.deliver(letter)
        assert isp.stats.discarded == 1

    def test_noncompliant_segregate_policy(self):
        isp = make_isp(noncompliant_policy=NonCompliantMailPolicy.SEGREGATE)
        letter = Letter(Address(2, 0), Address(0, 1), TrafficKind.SPAM, False)
        assert isp.deliver(letter)
        assert isp.ledger.user(1).junk_folder == 1
        assert isp.stats.junked == 1

    def test_noncompliant_filter_policy(self):
        config = ZmailConfig(noncompliant_policy=NonCompliantMailPolicy.FILTER)
        isp = CompliantISP(
            0, 4, config, spam_filter=lambda letter: letter.kind is not TrafficKind.SPAM
        )
        isp.update_compliance(DIRECTORY)
        spam = Letter(Address(2, 0), Address(0, 1), TrafficKind.SPAM, False)
        ham = Letter(Address(2, 0), Address(0, 1), TrafficKind.NORMAL, False)
        assert not isp.deliver(spam)
        assert isp.deliver(ham)
        assert isp.stats.filtered_out == 1


class TestSnapshots:
    def test_sends_buffered_during_snapshot(self):
        isp = make_isp()
        isp.begin_snapshot(0)
        receipt = isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.BUFFERED
        assert isp.ledger.user(0).balance == 100  # not yet charged
        reply = isp.snapshot_reply()
        flushed = isp.resume_sending()
        assert len(flushed) == 1
        assert flushed[0].status is SendStatus.SENT_PAID
        assert isp.ledger.user(0).balance == 99

    def test_reply_resets_credit(self):
        isp = make_isp()
        isp.submit(0, Address(1, 0), TrafficKind.NORMAL)
        isp.begin_snapshot(0)
        assert isp.snapshot_reply() == {1: 1}
        isp.resume_sending()
        assert isp.credit == {}

    def test_double_begin_rejected(self):
        isp = make_isp()
        isp.begin_snapshot(0)
        with pytest.raises(SnapshotInProgress):
            isp.begin_snapshot(1)

    def test_reply_without_snapshot_rejected(self):
        with pytest.raises(SnapshotInProgress):
            make_isp().snapshot_reply()

    def test_marker_books_overtaking_mail_to_next_period(self):
        isp = make_isp(isp_id=0)
        isp.begin_snapshot(0)
        isp.note_marker(1)
        letter = Letter(Address(1, 0), Address(0, 1), TrafficKind.NORMAL, True)
        isp.deliver(letter)  # arrives after peer 1's marker
        assert isp.snapshot_reply() == {}  # old period untouched
        isp.resume_sending()
        assert isp.credit == {1: -1}  # booked to the new period

    def test_pre_marker_mail_books_to_old_period(self):
        isp = make_isp(isp_id=0)
        isp.begin_snapshot(0)
        letter = Letter(Address(1, 0), Address(0, 1), TrafficKind.NORMAL, True)
        isp.deliver(letter)  # no marker from 1 yet: old period
        isp.note_marker(1)
        assert isp.snapshot_reply() == {1: -1}

    def test_early_marker_carries_into_snapshot(self):
        isp = make_isp(isp_id=0)
        isp.note_marker(1)  # marker races ahead of our own request
        isp.begin_snapshot(0)
        letter = Letter(Address(1, 0), Address(0, 1), TrafficKind.NORMAL, True)
        isp.deliver(letter)
        assert isp.snapshot_reply() == {}
        isp.resume_sending()
        assert isp.credit == {1: -1}


class TestPoolThresholds:
    def test_deficit_to_midpoint(self):
        isp = make_isp(initial_pool=1000, minavail=2000, maxavail=6000)
        assert isp.pool_deficit() == 3000  # midpoint 4000 - 1000

    def test_no_deficit_above_min(self):
        isp = make_isp(initial_pool=2500, minavail=2000, maxavail=6000)
        assert isp.pool_deficit() == 0

    def test_surplus_to_midpoint(self):
        isp = make_isp(initial_pool=9000, minavail=2000, maxavail=6000)
        assert isp.pool_surplus() == 5000

    def test_no_surplus_below_max(self):
        isp = make_isp(initial_pool=6000, minavail=2000, maxavail=6000)
        assert isp.pool_surplus() == 0


class TestNonCompliantISP:
    def test_sends_free_unlimited(self):
        isp = NonCompliantISP(2, 3)
        for _ in range(1000):
            receipt = isp.submit(0, Address(0, 1), TrafficKind.SPAM)
            assert receipt.status is SendStatus.SENT_UNPAID
        assert isp.stats.sent_unpaid == 1000

    def test_local_delivery(self):
        isp = NonCompliantISP(2, 3)
        receipt = isp.submit(0, Address(2, 1), TrafficKind.NORMAL)
        assert receipt.status is SendStatus.DELIVERED_LOCAL

    def test_delivers_anything_in_range(self):
        isp = NonCompliantISP(2, 3)
        ok = Letter(Address(0, 0), Address(2, 1), TrafficKind.NORMAL, False)
        bad = Letter(Address(0, 0), Address(2, 9), TrafficKind.NORMAL, False)
        assert isp.deliver(ok)
        assert not isp.deliver(bad)
