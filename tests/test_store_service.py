"""Tests for the durable SMTP service and the operator selftest."""

import asyncio

import pytest

from repro.core import ZmailNetwork
from repro.core.overload import OverloadConfig
from repro.errors import SimulationError
from repro.smtp.client import SMTPClient
from repro.smtp.message import MailMessage
from repro.smtp.transport import Envelope
from repro.store import DurableStore, durable_digest, init_store
from repro.store.service import ZmailService, run_selftest

OVERLOAD = OverloadConfig(
    admit_rate=1.0,
    admit_burst=2,
    queue_capacity=16,
    retry_base=5.0,
    retry_backoff=2.0,
    retry_max_interval=60.0,
    max_retries=8,
)


def _make_store(tmp_path, name="svc.db", *, n_isps=2, users=4, seed=5):
    path = str(tmp_path / name)
    store = DurableStore.create(path)
    init_store(store, ZmailNetwork(n_isps=n_isps, users_per_isp=users, seed=seed))
    return path, store


def _message(i=0):
    return MailMessage.compose(
        sender="user0@isp0.example",
        recipient="user1@isp1.example",
        subject=f"m{i}",
        body="hello",
    )


async def _send_n(service, n):
    host, port = service.addresses[0]
    client = SMTPClient(host, port)
    await client.connect()
    try:
        for i in range(n):
            await client.send(
                Envelope("user0@isp0.example", "user1@isp1.example", _message(i))
            )
    finally:
        await client.quit()


class TestServiceBasics:
    def test_smtp_delivery_accounts_and_files(self, tmp_path):
        _, store = _make_store(tmp_path)

        async def run():
            service = ZmailService(store)
            await service.start()
            await _send_n(service, 3)
            await service.stop()
            return service

        service = asyncio.run(run())
        store.close()
        assert service.messages_handled == 3
        box = service.gateways[1].mailbox(1)
        assert len(box.inbox) == 3
        assert all(record.paid for record in box.inbox)
        assert service.stats()["conserved"]

    def test_commit_persists_ledger(self, tmp_path):
        path, store = _make_store(tmp_path)

        async def run():
            service = ZmailService(store)
            await service.start()
            await _send_n(service, 4)
            await service.stop()  # final commit
            return durable_digest(service.network)

        live = asyncio.run(run())
        store.close()
        with DurableStore.open(path) as reopened:
            from repro.store import restore_network

            assert durable_digest(restore_network(reopened)) == live

    def test_unstamped_foreign_sender_unroutable(self, tmp_path):
        _, store = _make_store(tmp_path)

        async def run():
            service = ZmailService(store)
            await service.start()
            host, port = service.addresses[0]
            client = SMTPClient(host, port)
            await client.connect()
            message = MailMessage.compose(
                sender="user1@isp1.example",  # not a local isp0 user
                recipient="user0@isp0.example",
                body="x",
            )
            await client.send(
                Envelope("user1@isp1.example", "user0@isp0.example", message)
            )
            await client.quit()
            await service.stop()
            return service

        service = asyncio.run(run())
        store.close()
        assert service.unroutable == 1

    def test_unparseable_sender_unroutable(self, tmp_path):
        _, store = _make_store(tmp_path)

        async def run():
            service = ZmailService(store)
            await service.start()
            host, port = service.addresses[0]
            client = SMTPClient(host, port)
            await client.connect()
            message = MailMessage.compose(
                sender="someone@outside.example",
                recipient="user0@isp0.example",
                body="x",
            )
            await client.send(
                Envelope("someone@outside.example", "user0@isp0.example", message)
            )
            await client.quit()
            await service.stop()
            return service

        service = asyncio.run(run())
        store.close()
        assert service.unroutable == 1

    def test_tick_rejects_negative(self, tmp_path):
        _, store = _make_store(tmp_path)
        service = ZmailService(store)
        store.close()
        with pytest.raises(SimulationError, match="backwards"):
            service.tick(-1.0)

    def test_commit_interval_loop_commits(self, tmp_path):
        _, store = _make_store(tmp_path)

        async def run():
            service = ZmailService(store, commit_interval=0.05)
            await service.start()
            await asyncio.sleep(0.2)
            await service.stop()
            return service.barrier

        barrier = asyncio.run(run())
        store.close()
        assert barrier >= 2  # at least one periodic + the final commit


class TestPendingRehydration:
    """Satellite: deferred retries survive a service restart."""

    def _run_phase1(self, store, n=6):
        async def run():
            service = ZmailService(store, overload=OVERLOAD)
            await service.start()
            await _send_n(service, n)
            await service.stop()
            return service

        return asyncio.run(run())

    def test_pending_queue_survives_restart(self, tmp_path):
        _, store = _make_store(tmp_path)
        first = self._run_phase1(store)
        pending = first.stats()["pending_sends"]
        assert pending > 0, "test needs a saturated admission queue"

        second = ZmailService(store, overload=OVERLOAD)
        assert second.stats()["pending_sends"] == pending
        # Pump virtual time; every deferred message must drain through.
        for _ in range(8):
            second.tick(120.0)
        assert second.stats()["pending_sends"] == 0
        inbox = second.gateways[1].mailbox(1).inbox
        assert len(inbox) + len(first.gateways[1].mailbox(1).inbox) == 6
        assert second.stats()["conserved"]
        store.close()

    def test_clock_resumes_past_persisted_timestamps(self, tmp_path):
        _, store = _make_store(tmp_path)
        self._run_phase1(store)
        second = ZmailService(store, overload=OVERLOAD)
        # Time must never run backwards relative to persisted bucket /
        # due timestamps, or refill arithmetic would go negative.
        assert second.now > 0.0
        store.close()

    def test_restart_without_overload_refuses(self, tmp_path):
        _, store = _make_store(tmp_path)
        self._run_phase1(store)
        with pytest.raises(SimulationError, match="overload admission is disabled"):
            ZmailService(store)
        store.close()

    def test_no_duplicate_delivery_across_restarts(self, tmp_path):
        _, store = _make_store(tmp_path)
        first = self._run_phase1(store)
        # Restart twice without draining in between; the queue is
        # authoritative on disk, so no message may double-deliver.
        middle = ZmailService(store, overload=OVERLOAD)
        middle.commit()
        second = ZmailService(store, overload=OVERLOAD)
        for _ in range(8):
            second.tick(120.0)
        total = (
            len(first.gateways[1].mailbox(1).inbox)
            + len(second.gateways[1].mailbox(1).inbox)
        )
        assert total == 6
        store.close()


class TestSelftest:
    def test_fresh_store_passes(self, tmp_path):
        path, store = _make_store(tmp_path, n_isps=3)
        store.close()
        report = run_selftest(path)
        assert report["passed"]
        assert report["anti_symmetric"]
        assert report["conserved"]
        assert report["roundtrip"]
        assert report["isps"] == [0, 1, 2]

    def test_single_isp_store_passes(self, tmp_path):
        path, store = _make_store(tmp_path, n_isps=1, name="one.db")
        store.close()
        report = run_selftest(path)
        assert report["passed"]

    def test_lived_in_store_with_overload_passes(self, tmp_path):
        path, store = _make_store(tmp_path)

        async def run():
            service = ZmailService(store, overload=OVERLOAD)
            await service.start()
            await _send_n(service, 6)
            await service.stop()

        asyncio.run(run())
        service = ZmailService(store, overload=OVERLOAD)
        for _ in range(8):
            service.tick(120.0)
        service.commit()
        store.close()
        report = run_selftest(path)
        assert report["passed"], report

    def test_corrupted_store_fails_loudly(self, tmp_path):
        path, store = _make_store(tmp_path)
        store._conn.execute("UPDATE records SET payload='{}' WHERE kind='bank'")
        store.close()
        with pytest.raises(SimulationError):
            run_selftest(path)

    def test_selftest_does_not_write(self, tmp_path):
        path, store = _make_store(tmp_path)
        store.close()
        with DurableStore.open(path) as s:
            before = (s.barrier, s.count())
        run_selftest(path)
        with DurableStore.open(path) as s:
            assert (s.barrier, s.count()) == before
