"""Tests for the adaptive profit-driven spammer."""

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.economics.adaptive import AdaptiveSpammer
from repro.sim.workload import Address


def make_network(compliant_spammer: bool, seed=80):
    flags = [True, True, True] if compliant_spammer else [True, True, False]
    config = ZmailConfig(
        default_daily_limit=10**6,
        default_user_balance=10**6,  # the economics, not the purse, decides
        auto_topup_amount=0,
    )
    return ZmailNetwork(
        n_isps=3, users_per_isp=10, compliant=flags, config=config, seed=seed
    )


def make_spammer(compliant: bool, *, conversion=0.0005, seed=80, volume=200):
    net = make_network(compliant, seed=seed)
    spammer_isp = 0 if compliant else 2
    return AdaptiveSpammer(
        network=net,
        address=Address(spammer_isp, 0),
        conversion_rate=conversion,
        epenny_dollars=0.01 if compliant else 0.0,
        initial_volume=volume,
        seed=seed,
    )


class TestAdaptiveDynamics:
    def test_status_quo_spammer_grows(self):
        """Free riding + profitable conversions: volume expands.

        Volume must be large enough that expected conversions per period
        exceed 1, or the feedback signal is pure noise."""
        spammer = make_spammer(compliant=False, conversion=0.002, volume=2000)
        spammer.run(periods=5)
        assert spammer.final_volume() > spammer.initial_volume
        assert spammer.total_profit() > 0

    def test_zmail_spammer_collapses(self):
        """Paying a cent per message at bulk conversion rates loses money
        every period; the loop drives volume to nothing."""
        spammer = make_spammer(compliant=True, conversion=0.0003, volume=2000)
        spammer.run(periods=12)
        assert spammer.collapsed()
        assert spammer.total_profit() < 0  # tuition paid to learn the market

    def test_high_value_targeted_campaign_survives_zmail(self):
        """The paper: targeted advertising continues to exist."""
        spammer = make_spammer(compliant=True, conversion=0.01, seed=81,
                               volume=500)
        spammer.run(periods=6)
        assert not spammer.collapsed()
        assert spammer.total_profit() > 0

    def test_volume_reacts_to_profit_sign(self):
        spammer = make_spammer(compliant=False, conversion=0.002, volume=2000)
        outcome = spammer.run_period()
        if outcome.profit > 0:
            assert spammer.current_volume > outcome.attempted
        else:
            assert spammer.current_volume < outcome.attempted

    def test_history_recorded_per_period(self):
        spammer = make_spammer(compliant=False)
        spammer.run(periods=5)
        assert [o.period for o in spammer.history] == [0, 1, 2, 3, 4]

    def test_conservation_all_the_while(self):
        spammer = make_spammer(compliant=True)
        spammer.run(periods=6)
        net = spammer.network
        assert net.total_value() == net.expected_total_value()

    def test_validation(self):
        net = make_network(True)
        with pytest.raises(ValueError):
            AdaptiveSpammer(network=net, address=Address(0, 0), growth=0.9)
        with pytest.raises(ValueError):
            AdaptiveSpammer(network=net, address=Address(0, 0), initial_volume=0)
