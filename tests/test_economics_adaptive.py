"""Tests for the adaptive profit-driven spammer."""

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.economics.adaptive import AdaptiveSpammer
from repro.sim.workload import Address


def make_network(compliant_spammer: bool, seed=80):
    flags = [True, True, True] if compliant_spammer else [True, True, False]
    config = ZmailConfig(
        default_daily_limit=10**6,
        default_user_balance=10**6,  # the economics, not the purse, decides
        auto_topup_amount=0,
    )
    return ZmailNetwork(
        n_isps=3, users_per_isp=10, compliant=flags, config=config, seed=seed
    )


def make_spammer(compliant: bool, *, conversion=0.0005, seed=80, volume=200):
    net = make_network(compliant, seed=seed)
    spammer_isp = 0 if compliant else 2
    return AdaptiveSpammer(
        network=net,
        address=Address(spammer_isp, 0),
        conversion_rate=conversion,
        epenny_dollars=0.01 if compliant else 0.0,
        initial_volume=volume,
        seed=seed,
    )


class TestAdaptiveDynamics:
    def test_status_quo_spammer_grows(self):
        """Free riding + profitable conversions: volume expands.

        Volume must be large enough that expected conversions per period
        exceed 1, or the feedback signal is pure noise."""
        spammer = make_spammer(compliant=False, conversion=0.002, volume=2000)
        spammer.run(periods=5)
        assert spammer.final_volume() > spammer.initial_volume
        assert spammer.total_profit() > 0

    def test_zmail_spammer_collapses(self):
        """Paying a cent per message at bulk conversion rates loses money
        every period; the loop drives volume to nothing."""
        spammer = make_spammer(compliant=True, conversion=0.0003, volume=2000)
        spammer.run(periods=12)
        assert spammer.collapsed()
        assert spammer.total_profit() < 0  # tuition paid to learn the market

    def test_high_value_targeted_campaign_survives_zmail(self):
        """The paper: targeted advertising continues to exist."""
        spammer = make_spammer(compliant=True, conversion=0.01, seed=81,
                               volume=500)
        spammer.run(periods=6)
        assert not spammer.collapsed()
        assert spammer.total_profit() > 0

    def test_volume_reacts_to_profit_sign(self):
        spammer = make_spammer(compliant=False, conversion=0.002, volume=2000)
        outcome = spammer.run_period()
        if outcome.profit > 0:
            assert spammer.current_volume > outcome.attempted
        else:
            assert spammer.current_volume < outcome.attempted

    def test_history_recorded_per_period(self):
        spammer = make_spammer(compliant=False)
        spammer.run(periods=5)
        assert [o.period for o in spammer.history] == [0, 1, 2, 3, 4]

    def test_conservation_all_the_while(self):
        spammer = make_spammer(compliant=True)
        spammer.run(periods=6)
        net = spammer.network
        assert net.total_value() == net.expected_total_value()

    def test_validation(self):
        net = make_network(True)
        with pytest.raises(ValueError):
            AdaptiveSpammer(network=net, address=Address(0, 0), growth=0.9)
        with pytest.raises(ValueError):
            AdaptiveSpammer(network=net, address=Address(0, 0), initial_volume=0)


class TestVolumeLearner:
    """Regression pins for the two edge cases surfaced by arena reuse."""

    def test_profitable_spammer_escapes_the_volume_floor(self):
        """int(1 * 1.5) == 1 — growth must still advance from volume 1."""
        from repro.economics.adaptive import VolumeLearner

        learner = VolumeLearner(volume=1)
        assert learner.update(profit=1.0) == 2
        assert learner.update(profit=1.0) == 3  # int(2 * 1.5) == 3

    def test_long_profitable_streak_is_capped_not_overflowed(self):
        """A thousand profitable periods must not grow volume without
        bound (pre-fix: geometric growth past float64 exact range)."""
        from repro.economics.adaptive import VolumeLearner

        learner = VolumeLearner(volume=200, max_volume=50_000)
        for _ in range(1000):
            volume = learner.update(profit=1.0)
            assert volume <= 50_000
        assert learner.volume == 50_000

    def test_decay_floor_holds(self):
        from repro.economics.adaptive import VolumeLearner

        learner = VolumeLearner(volume=2)
        assert learner.update(profit=-1.0) == 1
        assert learner.update(profit=-1.0) == 1

    def test_spammer_at_floor_recovers_when_market_turns(self):
        """End-to-end pin: collapse to the floor, then a profitable
        market must let the loop climb back out."""
        spammer = make_spammer(compliant=True, conversion=0.0, volume=4)
        spammer.run(periods=4)
        assert spammer.current_volume == 1
        # Flip the market: free sending, guaranteed conversions.
        spammer.conversion_rate = 1.0
        spammer.epenny_dollars = 0.0
        spammer.run_period()
        assert spammer.current_volume == 2

    def test_spammer_max_volume_honored(self):
        spammer = AdaptiveSpammer(
            network=make_network(False),
            address=Address(2, 0),
            conversion_rate=1.0,
            epenny_dollars=0.0,
            initial_volume=64,
            max_volume=100,
        )
        spammer.run(periods=3)
        assert spammer.final_volume() == 100

    def test_learner_validation(self):
        from repro.economics.adaptive import VolumeLearner

        with pytest.raises(ValueError):
            VolumeLearner(volume=1, growth=1.0)
        with pytest.raises(ValueError):
            VolumeLearner(volume=1, decay=0.0)
        with pytest.raises(ValueError):
            VolumeLearner(volume=0)
        with pytest.raises(ValueError):
            VolumeLearner(volume=5, max_volume=4)
        with pytest.raises(ValueError):
            VolumeLearner(volume=1, min_volume=0)
