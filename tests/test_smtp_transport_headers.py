"""Tests for the in-memory transport and the X-Zmail header binding."""

import pytest

from repro.errors import SMTPPermanentError
from repro.smtp.message import MailMessage
from repro.smtp.transport import Envelope, InMemoryTransport
from repro.smtp.zmail_headers import (
    CLASS_ACK,
    CLASS_NORMAL,
    H_LIST_TOKEN,
    H_SENDER_ISP,
    ZmailStamp,
    is_ack,
    make_ack_message,
    read_stamp,
    stamp_message,
)


def make_message(**kwargs):
    defaults = dict(
        sender="a@isp0.example", recipient="b@isp1.example",
        subject="s", body="b",
    )
    defaults.update(kwargs)
    return MailMessage.compose(**defaults)


class TestInMemoryTransport:
    def test_routes_by_domain(self):
        transport = InMemoryTransport()
        inbox_x, inbox_y = [], []
        transport.register_domain("x.example", inbox_x.append)
        transport.register_domain("y.example", inbox_y.append)
        transport.submit(Envelope("a@z", "u@x.example", make_message()))
        transport.submit(Envelope("a@z", "u@Y.EXAMPLE", make_message()))
        assert len(inbox_x) == 1 and len(inbox_y) == 1

    def test_unroutable_domain_rejected(self):
        transport = InMemoryTransport()
        with pytest.raises(SMTPPermanentError, match="550"):
            transport.submit(Envelope("a@z", "u@nowhere.example", make_message()))
        assert transport.rejected == 1

    def test_counters(self):
        transport = InMemoryTransport()
        transport.register_domain("x.example", lambda e: None)
        for _ in range(3):
            transport.submit(Envelope("a@z", "u@x.example", make_message()))
        assert transport.delivered == 3


class TestZmailStamp:
    def test_stamp_and_read(self):
        msg = stamp_message(make_message(), ZmailStamp(sender_isp="isp0"))
        stamp = read_stamp(msg)
        assert stamp is not None
        assert stamp.sender_isp == "isp0"
        assert stamp.message_class == CLASS_NORMAL
        assert stamp.list_token is None

    def test_stamp_does_not_mutate_original(self):
        original = make_message()
        stamp_message(original, ZmailStamp(sender_isp="isp0"))
        assert read_stamp(original) is None

    def test_sender_supplied_stamps_replaced(self):
        """A forged inbound stamp must not survive restamping."""
        forged = make_message(
            extra_headers={H_SENDER_ISP: "isp-forged", "X-Zmail-Version": "1"}
        )
        restamped = stamp_message(forged, ZmailStamp(sender_isp="isp-true"))
        assert read_stamp(restamped).sender_isp == "isp-true"
        assert restamped.headers.get_all(H_SENDER_ISP) == ["isp-true"]

    def test_unstamped_message_reads_none(self):
        assert read_stamp(make_message()) is None

    def test_list_token_round_trip(self):
        msg = stamp_message(
            make_message(),
            ZmailStamp(sender_isp="isp0", list_token="tok-42"),
        )
        assert read_stamp(msg).list_token == "tok-42"

    def test_token_removed_when_absent(self):
        with_token = stamp_message(
            make_message(), ZmailStamp(sender_isp="isp0", list_token="t")
        )
        without = stamp_message(with_token, ZmailStamp(sender_isp="isp0"))
        assert read_stamp(without).list_token is None

    def test_stamp_survives_serialization(self):
        msg = stamp_message(
            make_message(), ZmailStamp(sender_isp="isp7", message_class=CLASS_ACK)
        )
        parsed = MailMessage.parse(msg.serialize())
        stamp = read_stamp(parsed)
        assert stamp.sender_isp == "isp7"
        assert stamp.message_class == CLASS_ACK


class TestAckMessages:
    def test_make_ack_echoes_token(self):
        original = make_message(
            extra_headers={H_LIST_TOKEN: "post-9", "X-Zmail-Version": "1"}
        )
        ack = make_ack_message(
            original,
            ack_sender="b@isp1.example",
            distributor="list@isp0.example",
        )
        assert is_ack(ack)
        assert ack.headers.get(H_LIST_TOKEN) == "post-9"
        assert ack.recipient == "list@isp0.example"
        assert ack.subject.startswith("Ack:")

    def test_normal_message_is_not_ack(self):
        assert not is_ack(make_message())

    def test_ack_of_tokenless_message(self):
        ack = make_ack_message(
            make_message(), ack_sender="b@y", distributor="d@x"
        )
        assert ack.headers.get(H_LIST_TOKEN) == ""
