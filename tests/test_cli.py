"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            ["quickstart"],
            ["breakeven"],
            ["compare"],
            ["adoption", "--isps", "50"],
            ["spec-check", "--steps", "100", "--cheat"],
            ["zombie", "--limit", "10"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "reconciliation consistent: True" in out
        assert "conserved: True" in out

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "101x" in out or "cost factor" in out
        assert "pharma-bulk" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "zmail" in out
        assert "shred/vanquish" in out

    def test_adoption(self, capsys):
        assert main(["adoption", "--isps", "40"]) == 0
        out = capsys.readouterr().out
        assert "positive feedback" in out

    def test_spec_check_honest(self, capsys):
        assert main(["spec-check", "--steps", "500"]) == 0
        out = capsys.readouterr().out
        assert "flagged pairs:         0" in out

    def test_spec_check_cheater_caught(self, capsys):
        assert main(["spec-check", "--steps", "6000", "--cheat"]) == 0
        out = capsys.readouterr().out
        assert "cheater isp[1] caught: True" in out

    def test_zombie(self, capsys):
        assert main(["zombie", "--limit", "15"]) == 0
        out = capsys.readouterr().out
        assert "zombie detected: True" in out


class TestExtendedCommands:
    def test_scenario(self, capsys):
        assert main(["scenario", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "all_consistent" in out and "True" in out

    def test_audit_catches_minting(self, capsys):
        assert main(["audit", "--mint", "5000"]) == 0
        out = capsys.readouterr().out
        assert "ALERT: isp1" in out

    def test_audit_honest_all_clear(self, capsys):
        assert main(["audit", "--mint", "0"]) == 0
        out = capsys.readouterr().out
        assert "all clear" in out
