"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            ["quickstart"],
            ["breakeven"],
            ["compare"],
            ["adoption", "--isps", "50"],
            ["spec-check", "--steps", "100", "--cheat"],
            ["zombie", "--limit", "10"],
            ["cluster", "--shards", "4"],
            ["cluster", "--mode", "inline", "--epoch-hours", "2"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_every_subcommand_accepts_seed(self):
        """Seed handling is uniform: no subcommand hardcodes its RNG."""
        parser = build_parser()
        for command in (
            "quickstart",
            "breakeven",
            "compare",
            "adoption",
            "spec-check",
            "zombie",
            "scenario",
            "audit",
            "cluster",
            "chaos",
            "overload",
            "trace",
            "metrics",
        ):
            args = parser.parse_args([command, "--seed", "123"])
            assert args.seed == 123, f"{command} ignored --seed"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(["quickstart", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "reconciliation consistent: True" in out
        assert "conserved: True" in out

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "101x" in out or "cost factor" in out
        assert "pharma-bulk" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "zmail" in out
        assert "shred/vanquish" in out

    def test_adoption(self, capsys):
        assert main(["adoption", "--isps", "40"]) == 0
        out = capsys.readouterr().out
        assert "positive feedback" in out

    def test_spec_check_honest(self, capsys):
        assert main(["spec-check", "--steps", "500"]) == 0
        out = capsys.readouterr().out
        assert "flagged pairs:         0" in out

    def test_spec_check_cheater_caught(self, capsys):
        assert main(["spec-check", "--steps", "6000", "--cheat"]) == 0
        out = capsys.readouterr().out
        assert "cheater isp[1] caught: True" in out

    def test_zombie(self, capsys):
        assert main(["zombie", "--limit", "15"]) == 0
        out = capsys.readouterr().out
        assert "zombie detected: True" in out


class TestExtendedCommands:
    def test_scenario(self, capsys):
        assert main(["scenario", "--days", "2"]) == 0
        out = capsys.readouterr().out
        assert "all_consistent" in out and "True" in out

    def test_audit_catches_minting(self, capsys):
        assert main(["audit", "--mint", "5000"]) == 0
        out = capsys.readouterr().out
        assert "ALERT: isp1" in out

    def test_audit_honest_all_clear(self, capsys):
        assert main(["audit", "--mint", "0"]) == 0
        out = capsys.readouterr().out
        assert "all clear" in out


class TestTraceCommand:
    def test_trace_prints_digests(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "event digest:" in out
        assert "manifest digest:" in out
        assert "conserved:       True" in out

    def test_trace_writes_schema_valid_jsonl_and_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import RunManifest
        from repro.obs.schema import validate_trace_lines

        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "--out", str(out_path)]) == 0
        capsys.readouterr()
        lines = out_path.read_text().splitlines()
        assert validate_trace_lines(lines) == len(lines) > 0
        manifest = RunManifest.from_json(
            (tmp_path / "trace.jsonl.manifest.json").read_text()
        )
        assert manifest.event_count == len(lines)

    def test_trace_same_seed_byte_identical_files(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main(["trace", "--seed", "5", "--out", str(path)]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        manifests = [
            (tmp_path / f"{p.name}.manifest.json").read_bytes() for p in paths
        ]
        assert manifests[0] == manifests[1]

    def test_trace_tail_prints_lines(self, capsys):
        assert main(["trace", "--tail", "3"]) == 0
        out = capsys.readouterr().out
        json_lines = [l for l in out.splitlines() if l.startswith("{")]
        assert len(json_lines) == 3

    def test_metrics_dumps_sorted_export(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "metrics.json"
        assert main(["metrics", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "metrics digest:" in out
        doc = json.loads(out_path.read_text())
        assert doc["format_version"] == 1
        names = list(doc["metrics"])
        assert names == sorted(names)
        assert "zmail.deliver.delivered" in doc["metrics"]


class TestCluster:
    _ARGS = [
        "cluster", "--mode", "inline", "--shards", "2",
        "--isps", "4", "--users", "6", "--days", "1",
    ]

    def test_cluster_same_seed_reruns_cmp_identical(self, tmp_path, capsys):
        """Satellite oracle: same-seed `repro cluster` reruns write
        byte-identical manifests (and shard count doesn't matter)."""
        paths = [tmp_path / "a.json", tmp_path / "b.json", tmp_path / "c.json"]
        for path, shards in zip(paths, ("2", "2", "1")):
            code = main(
                self._ARGS[:4] + [shards] + self._ARGS[5:]
                + ["--seed", "9", "--manifest", str(path)]
            )
            assert code == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert paths[0].read_bytes() == paths[2].read_bytes()

    def test_cluster_prints_summary_and_writes_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "report.json"
        assert main(self._ARGS + ["--report", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "conserved:       True" in out
        assert "manifest digest:" in out
        report = json.loads(report_path.read_text())
        assert report["n_shards"] == 2
        assert len(report["assignment"]) == 4

    def test_cluster_seed_changes_results(self, tmp_path, capsys):
        digests = []
        for seed in ("1", "2"):
            path = tmp_path / f"seed{seed}.json"
            assert main(
                self._ARGS + ["--seed", seed, "--manifest", str(path)]
            ) == 0
            digests.append(path.read_bytes())
        capsys.readouterr()
        assert digests[0] != digests[1]


class TestArenaCommand:
    ARGS = [
        "arena", "--seed", "5", "--worlds", "2", "--periods", "3",
        "--attackers", "static,zombie_fleet",
        "--defenders", "zmail_static,price_tuner",
    ]

    def test_arena_prints_summary_and_passes(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "2 attackers x 2 defenders x 2 worlds" in out
        assert "report digest:" in out
        assert "passed:         True" in out

    def test_arena_report_is_cmp_identical(self, tmp_path, capsys):
        one = tmp_path / "one.json"
        two = tmp_path / "two.json"
        assert main(self.ARGS + ["--out", str(one)]) == 0
        assert main(self.ARGS + ["--out", str(two)]) == 0
        assert one.read_bytes() == two.read_bytes()

    def test_arena_json_output_parses(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["passed"] is True
        assert len(report["cells"]) == 8

    def test_arena_unknown_strategy_is_loud(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="unknown attacker"):
            main(["arena", "--worlds", "1", "--attackers", "nope"])
