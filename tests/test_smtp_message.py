"""Tests for the RFC 822-subset message model."""

import pytest

from repro.errors import SMTPProtocolError
from repro.smtp.message import Headers, MailMessage


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers()
        headers.add("Subject", "Hello")
        assert headers.get("subject") == "Hello"
        assert headers.get("SUBJECT") == "Hello"

    def test_order_preserved(self):
        headers = Headers()
        headers.add("B", "2")
        headers.add("A", "1")
        assert list(headers) == [("B", "2"), ("A", "1")]

    def test_multimap_semantics(self):
        headers = Headers()
        headers.add("Received", "hop1")
        headers.add("Received", "hop2")
        assert headers.get("Received") == "hop1"
        assert headers.get_all("Received") == ["hop1", "hop2"]

    def test_replace(self):
        headers = Headers()
        headers.add("X", "1")
        headers.add("X", "2")
        headers.replace("x", "3")
        assert headers.get_all("X") == ["3"]

    def test_remove_returns_count(self):
        headers = Headers()
        headers.add("X", "1")
        headers.add("X", "2")
        assert headers.remove("x") == 2
        assert "X" not in headers

    def test_newline_injection_rejected(self):
        headers = Headers()
        with pytest.raises(SMTPProtocolError, match="newline"):
            headers.add("Subject", "a\r\nBcc: evil@example.com")
        with pytest.raises(SMTPProtocolError, match="newline"):
            headers.add("Bad\nName", "v")

    def test_copy_is_independent(self):
        headers = Headers()
        headers.add("X", "1")
        clone = headers.copy()
        clone.add("Y", "2")
        assert "Y" not in headers

    def test_get_default(self):
        assert Headers().get("missing", "dflt") == "dflt"
        assert Headers().get("missing") is None


class TestMailMessage:
    def test_compose(self):
        msg = MailMessage.compose(
            sender="a@x.example",
            recipient="b@y.example",
            subject="Hi",
            body="line1\nline2",
            extra_headers={"X-Zmail-Version": "1"},
        )
        assert msg.sender == "a@x.example"
        assert msg.recipient == "b@y.example"
        assert msg.subject == "Hi"
        assert msg.headers.get("X-Zmail-Version") == "1"

    def test_serialize_crlf(self):
        msg = MailMessage.compose(
            sender="a@x", recipient="b@y", subject="S", body="one\ntwo"
        )
        wire = msg.serialize()
        assert "\r\n\r\n" in wire
        assert wire.endswith("one\r\ntwo")
        assert "\n" not in wire.replace("\r\n", "")

    def test_parse_round_trip(self):
        original = MailMessage.compose(
            sender="a@x.example", recipient="b@y.example",
            subject="Round trip", body="body text\nsecond line",
        )
        parsed = MailMessage.parse(original.serialize())
        assert parsed.sender == original.sender
        assert parsed.subject == original.subject
        assert parsed.body.replace("\r\n", "\n") == "body text\nsecond line"

    def test_parse_accepts_lf(self):
        parsed = MailMessage.parse("From: a@x\nTo: b@y\n\nhello")
        assert parsed.sender == "a@x"
        assert parsed.body == "hello"

    def test_parse_unfolds_continuations(self):
        raw = "Subject: first\r\n part\r\nFrom: a@x\r\n\r\nbody"
        parsed = MailMessage.parse(raw)
        assert parsed.subject == "first part"

    def test_parse_malformed_header(self):
        with pytest.raises(SMTPProtocolError, match="malformed"):
            MailMessage.parse("NoColonHere\r\n\r\nbody")

    def test_parse_continuation_before_header(self):
        with pytest.raises(SMTPProtocolError, match="continuation"):
            MailMessage.parse(" leading continuation\r\n\r\nbody")

    def test_empty_body(self):
        parsed = MailMessage.parse("From: a@x\r\n\r\n")
        assert parsed.body == ""

    def test_size_bytes(self):
        msg = MailMessage.compose(sender="a@x", recipient="b@y", body="xyz")
        assert msg.size_bytes() == len(msg.serialize().encode("utf-8"))

    def test_copy_independent(self):
        msg = MailMessage.compose(sender="a@x", recipient="b@y")
        clone = msg.copy()
        clone.headers.add("X-New", "1")
        clone.body = "changed"
        assert "X-New" not in msg.headers
        assert msg.body == ""

    def test_missing_standard_headers_default_empty(self):
        msg = MailMessage()
        assert msg.sender == ""
        assert msg.recipient == ""
        assert msg.subject == ""
