"""Tests for the number-theory primitives."""

import random

import pytest

from repro.crypto.numbers import egcd, generate_prime, is_probable_prime, modinv


class TestEgcd:
    def test_bezout_identity(self):
        for a, b in [(12, 18), (35, 64), (17, 0), (0, 9), (101, 103)]:
            g, x, y = egcd(a, b)
            assert a * x + b * y == g

    def test_gcd_values(self):
        assert egcd(12, 18)[0] == 6
        assert egcd(17, 5)[0] == 1
        assert egcd(0, 7)[0] == 7


class TestModinv:
    def test_inverse_property(self):
        for a, m in [(3, 7), (10, 17), (7, 26), (65537, 999331)]:
            inv = modinv(a, m)
            assert (a * inv) % m == 1
            assert 0 <= inv < m

    def test_not_coprime_rejected(self):
        with pytest.raises(ValueError, match="no inverse"):
            modinv(6, 9)

    def test_negative_input_normalised(self):
        inv = modinv(-3, 7)
        assert (-3 * inv) % 7 == 1


class TestPrimality:
    KNOWN_PRIMES = [2, 3, 5, 7, 97, 541, 7919, 104729, 2**31 - 1]
    KNOWN_COMPOSITES = [1, 0, -7, 4, 100, 561, 41041, 2**31 - 2]
    # 561 and 41041 are Carmichael numbers: Fermat-fooling, Miller-Rabin not.

    def test_known_primes(self):
        for p in self.KNOWN_PRIMES:
            assert is_probable_prime(p), p

    def test_known_composites(self):
        for c in self.KNOWN_COMPOSITES:
            assert not is_probable_prime(c), c

    def test_large_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2**127 - 1)

    def test_large_composite(self):
        assert not is_probable_prime((2**61 - 1) * (2**31 - 1))


class TestGeneratePrime:
    def test_bit_length_exact(self):
        rng = random.Random(0)
        for bits in (16, 32, 64):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        """Ensures p*q has exactly 2*bits bits."""
        rng = random.Random(1)
        p = generate_prime(32, rng)
        q = generate_prime(32, rng)
        assert (p * q).bit_length() == 64

    def test_deterministic_with_seed(self):
        assert generate_prime(32, random.Random(5)) == generate_prime(
            32, random.Random(5)
        )

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            generate_prime(4, random.Random(0))
