"""Tests for the unified metrics exporter and the run manifest."""

import json

import pytest

from repro.core import ZmailConfig, ZmailNetwork
from repro.obs.manifest import (
    MANIFEST_FORMAT_VERSION,
    RunManifest,
    build_manifest,
    config_digest,
)
from repro.obs.metrics_export import (
    METRICS_FORMAT_VERSION,
    MetricsExporter,
    export_deployment,
    export_network,
)
from repro.obs.trace import TraceRecorder
from repro.sim import Address
from repro.sim.metrics import MetricsRegistry


class TestMetricsExporter:
    def test_namespace_rules(self):
        exporter = MetricsExporter()
        exporter.add_static("a", {"x": 1})
        with pytest.raises(ValueError, match="already attached"):
            exporter.add_static("a", {"y": 2})
        with pytest.raises(ValueError, match="invalid namespace"):
            exporter.add_static("a.b", {"x": 1})
        with pytest.raises(ValueError, match="invalid namespace"):
            exporter.add_static("", {"x": 1})

    def test_registry_flattening(self):
        registry = MetricsRegistry()
        registry.counter("sent").increment(3)
        registry.series("queue").record(0.0, 4.0)
        registry.series("queue").record(1.0, 6.0)
        registry.histogram("lat", 0.0, 10.0, 5).observe(2.0)
        exporter = MetricsExporter()
        exporter.add_registry("sim", registry)
        flat = exporter.collect()
        assert flat["sim.sent"] == 3
        assert flat["sim.queue.len"] == 2
        assert flat["sim.queue.mean"] == pytest.approx(5.0)
        assert flat["sim.lat.observations"] == 1
        assert flat["sim.lat.mean"] == pytest.approx(2.0)

    def test_sources_are_live(self):
        state = {"n": 1}
        exporter = MetricsExporter()
        exporter.add_source("live", lambda: dict(state))
        assert exporter.collect()["live.n"] == 1
        state["n"] = 2
        assert exporter.collect()["live.n"] == 2

    def test_static_is_copied_now(self):
        values = {"seed": 7}
        exporter = MetricsExporter()
        exporter.add_static("run", values)
        values["seed"] = 8
        assert exporter.collect()["run.seed"] == 7

    def test_export_document_shape(self):
        exporter = MetricsExporter()
        exporter.add_static("b", {"x": 1})
        exporter.add_static("a", {"y": 2})
        doc = exporter.export()
        assert doc["format_version"] == METRICS_FORMAT_VERSION
        assert list(doc["metrics"]) == ["a.y", "b.x"]
        assert exporter.namespaces() == ["a", "b"]
        json.loads(exporter.to_json())  # valid JSON


class TestExportNetwork:
    def test_direct_network_namespaces_and_counters(self):
        network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=3)
        for _ in range(5):
            network.send(Address(0, 1), Address(1, 2))
        exporter = export_network(network)
        flat = exporter.collect()
        assert exporter.namespaces() == ["overload", "zmail"]
        assert flat["zmail.deliver.delivered"] == 5
        assert flat["zmail.send.kind.normal"] == 5
        assert flat["overload.attempts"] == 0

    def test_collect_reflects_later_traffic(self):
        network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=3)
        exporter = export_network(network)
        before = exporter.collect()["zmail.deliver.delivered"]
        network.send(Address(0, 1), Address(1, 2))
        after = exporter.collect()["zmail.deliver.delivered"]
        assert (before, after) == (0, 1)

    def test_engine_mode_network_exports_engine_and_link(self):
        from repro.core.scenario import Scenario
        from repro.sim import DAY

        result = Scenario(
            n_isps=2,
            users_per_isp=4,
            seed=9,
            duration=DAY / 4,
            normal_rate_per_day=60.0,
            engine_mode=True,
        ).run()
        exporter = export_network(result.network)
        flat = exporter.collect()
        assert set(exporter.namespaces()) == {
            "zmail", "overload", "engine", "link",
        }
        assert flat["engine.events_processed"] > 0
        assert flat["link.messages_sent"] > 0
        assert flat["zmail.deliver.delivered"] > 0

    def test_chaos_deployment_adds_chaos_and_link_namespaces(self):
        from repro.chaos import ChaosDeployment
        from repro.sim import SeededStreams
        from repro.sim.rng import derive_seed
        from repro.sim.workload import NormalUserWorkload

        deployment = ChaosDeployment(n_isps=2, users_per_isp=3, seed=5)
        workload = NormalUserWorkload(
            n_isps=2,
            users_per_isp=3,
            rate_per_day=5_000.0,
            streams=SeededStreams(derive_seed(5, "chaos-workload")),
        )
        assert deployment.run(workload.generate(30.0), until=30.0)
        exporter = export_deployment(deployment)
        flat = exporter.collect()
        assert set(exporter.namespaces()) == {
            "zmail", "overload", "engine", "link", "chaos",
        }
        assert flat["chaos.submits"] == deployment.stats()["submits"]
        assert flat["link.messages_sent"] > 0
        assert flat["engine.events_processed"] > 0
        assert (
            flat["zmail.deliver.delivered"]
            == deployment.network.metrics.counter("deliver.delivered").value
        )


class TestManifest:
    def _manifest(self, **overrides):
        fields = dict(
            seed=7,
            config_digest="c" * 64,
            event_count=2,
            event_digest="e" * 64,
            metrics_digest="m" * 64,
            extra={"scenario": "unit"},
        )
        fields.update(overrides)
        return RunManifest(**fields)

    def test_config_digest_stable_and_sensitive(self):
        base = ZmailConfig()
        assert config_digest(base) == config_digest(ZmailConfig())
        assert config_digest(base) != config_digest(
            ZmailConfig(default_daily_limit=999)
        )

    def test_round_trip(self):
        manifest = self._manifest()
        parsed = RunManifest.from_json(manifest.to_json())
        assert parsed == manifest
        assert parsed.manifest_format_version == MANIFEST_FORMAT_VERSION

    def test_to_json_ends_with_newline(self):
        assert self._manifest().to_json().endswith("}\n")

    def test_digest_changes_with_any_field(self):
        base = self._manifest()
        assert base.digest() != self._manifest(seed=8).digest()
        assert base.digest() != self._manifest(event_count=3).digest()
        assert base.digest() != self._manifest(extra={}).digest()

    def test_build_manifest_pulls_from_recorder_and_exporter(self):
        recorder = TraceRecorder()
        recorder.emit("crash", node="isp0")
        exporter = MetricsExporter()
        exporter.add_static("run", {"x": 1})
        manifest = build_manifest(
            seed=11,
            config=ZmailConfig(),
            recorder=recorder,
            exporter=exporter,
            extra={"scenario": "unit"},
        )
        assert manifest.seed == 11
        assert manifest.event_count == 1
        assert manifest.event_digest == recorder.digest()
        assert manifest.metrics_digest == exporter.digest()
        assert manifest.extra == {"scenario": "unit"}
