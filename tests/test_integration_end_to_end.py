"""Cross-module integration tests: full scenarios on the public API."""

import pytest

from repro.baselines.shred import ShredConfig, ShredSystem
from repro.core import (
    NonCompliantMailPolicy,
    SendStatus,
    ZmailConfig,
    ZmailNetwork,
)
from repro.core.mailinglist import ListServer
from repro.core.zombie import ZombieMonitor
from repro.economics.user_flows import analyze_user_flows
from repro.sim import DAY, Address, Engine, LinkSpec, SeededStreams, TrafficKind
from repro.sim.workload import (
    NormalUserWorkload,
    SpamCampaignWorkload,
    ZombieBurstWorkload,
    merge_workloads,
)


class TestSpamCampaignScenario:
    """A spammer blasts a Zmail deployment: every message is paid for,
    receivers profit, and the spammer's balance drains."""

    def run_campaign(self, volume=300):
        config = ZmailConfig(
            default_daily_limit=10_000,
            default_user_balance=50,
            auto_topup_amount=0,
        )
        net = ZmailNetwork(n_isps=3, users_per_isp=10, config=config, seed=8)
        spammer = Address(0, 0)
        net.fund_user(spammer, epennies=volume)
        workload = SpamCampaignWorkload(
            spammer=spammer, n_isps=3, users_per_isp=10,
            volume=volume, start=0.0, duration=DAY,
            streams=SeededStreams(8),
        )
        net.run_workload(workload.generate())
        return net, spammer

    def test_spammer_pays_per_message(self):
        net, spammer = self.run_campaign(volume=300)
        spam_sent = net.metrics.counter("send.kind.spam").value
        assert spam_sent == 300
        user = net.isps[0].ledger.user(0)
        # Funded with 300 extra; every delivered message cost one e-penny.
        assert user.lifetime_sent == 300

    def test_receivers_gain_the_windfall(self):
        """§1.2: 'a windfall rather than a nuisance'."""
        net, spammer = self.run_campaign(volume=300)
        gained = 0
        for isp_id, isp in net.compliant_isps().items():
            for user in isp.ledger.users():
                if Address(isp_id, user.user_id) == spammer:
                    continue
                gained += user.balance - net.config.default_user_balance
        assert gained == 300  # the spammer's 300 e-pennies, redistributed

    def test_underfunded_spammer_is_cut_off(self):
        config = ZmailConfig(default_user_balance=20, auto_topup_amount=0)
        net = ZmailNetwork(n_isps=2, users_per_isp=5, config=config, seed=9)
        spammer = Address(0, 0)
        statuses = [
            net.send(spammer, Address(1, i % 5)).status for i in range(100)
        ]
        assert statuses.count(SendStatus.SENT_PAID) == 20
        assert statuses.count(SendStatus.BLOCKED_BALANCE) == 80

    def test_zmail_vs_shred_collusion(self):
        """Zmail detects what SHRED structurally cannot."""
        import random

        shred = ShredSystem(ShredConfig(trigger_probability=1.0))
        outcome = shred.run_campaign(
            spam_messages=200, colluding=True, rng=random.Random(0)
        )
        assert outcome.effective_spammer_cost_cents == 0.0
        assert not ShredSystem.collusion_detectable()
        # Zmail: same campaign, the spammer's own (colluding) ISP would
        # need to misreport credit, which reconciliation flags. Simulate a
        # colluding ISP by corrupting its report.
        net = ZmailNetwork(n_isps=3, users_per_isp=5, seed=10)
        for i in range(200):
            net.send(Address(0, 0), Address(1 + i % 2, i % 5))
        isps = net.compliant_isps()
        reports = {}
        seq = net.bank.next_seq
        for isp_id, isp in isps.items():
            isp.begin_snapshot(seq)
        for isp_id, isp in isps.items():
            reports[isp_id] = isp.snapshot_reply()
            isp.resume_sending()
        reports[0] = {k: v - 50 for k, v in reports[0].items()}  # hide traffic
        report = net.bank.reconcile(reports)
        assert not report.consistent
        assert 0 in report.suspects


class TestMixedTrafficScenario:
    """Normal mail + spam + a zombie outbreak + a mailing list, together."""

    @pytest.fixture(scope="class")
    def deployment(self):
        config = ZmailConfig(
            default_daily_limit=100,
            default_user_balance=100,
            noncompliant_policy=NonCompliantMailPolicy.SEGREGATE,
        )
        net = ZmailNetwork(
            n_isps=4, users_per_isp=8, compliant=[True, True, True, False],
            config=config, seed=20,
        )
        streams = SeededStreams(20)
        normal = NormalUserWorkload(
            n_isps=4, users_per_isp=8, rate_per_day=6.0, streams=streams
        )
        spammer = Address(3, 0)  # spams from the non-compliant ISP
        spam = SpamCampaignWorkload(
            spammer=spammer, n_isps=4, users_per_isp=8,
            volume=400, start=0.0, duration=2 * DAY, streams=streams,
        )
        zombie = Address(1, 7)
        burst = ZombieBurstWorkload(
            zombie=zombie, n_isps=4, users_per_isp=8,
            rate_per_hour=50.0, start=DAY, end=DAY * 1.5, streams=streams,
        )
        net.run_workload(
            merge_workloads(
                normal.generate(2 * DAY), spam.generate(), burst.generate()
            )
        )
        return net, spammer, zombie

    def test_value_conserved(self, deployment):
        net, _, _ = deployment
        assert net.total_value() == net.expected_total_value()

    def test_noncompliant_spam_segregated(self, deployment):
        net, _, _ = deployment
        junked = sum(
            isp.stats.junked for isp in net.compliant_isps().values()
        )
        assert junked > 100

    def test_zombie_detected_and_contained(self, deployment):
        net, _, zombie = deployment
        monitor = ZombieMonitor(net)
        monitor.poll()
        assert monitor.detected(zombie)

    def test_reconciliation_clean(self, deployment):
        net, _, _ = deployment
        assert net.reconcile("direct").consistent

    def test_normal_users_near_neutral(self, deployment):
        net, spammer, zombie = deployment
        summary = analyze_user_flows(net, exclude={spammer, zombie})
        # Normal users balance out; spam arrives from a non-compliant ISP
        # (unpaid), so it does not skew flows.
        assert abs(summary.mean_net_flow) < 12


class TestEngineModeScenario:
    def test_full_day_with_periodic_reconciliation(self):
        engine = Engine()
        config = ZmailConfig(snapshot_quiesce_seconds=120.0)
        net = ZmailNetwork(
            n_isps=3, users_per_isp=6, config=config, seed=30,
            engine=engine, link=LinkSpec(base_latency=0.2, jitter=0.1),
        )
        streams = SeededStreams(30)
        workload = NormalUserWorkload(
            n_isps=3, users_per_isp=6, rate_per_day=100.0, streams=streams
        )
        net.run_workload(workload.generate(DAY))
        for t in (DAY / 4, DAY / 2, 3 * DAY / 4):
            engine.schedule_at(t, lambda: net.reconcile("marker"))
        engine.run(until=1.2 * DAY)
        assert len(net.bank.reports) == 3
        assert all(r.consistent for r in net.bank.reports)
        assert net.total_value() == net.expected_total_value()
