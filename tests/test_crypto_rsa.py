"""Tests for the toy RSA NCR/DCR operators."""

import pytest

from repro.crypto.keys import KeyPair, PrivateKey, PublicKey
from repro.crypto.rsa import dcr, dcr_object, generate_keypair, ncr, ncr_object
from repro.errors import DecryptionError

KEYS = generate_keypair(256, seed=42)  # module-level: keygen is slow-ish


class TestKeyGeneration:
    def test_moduli_match(self):
        assert KEYS.public.n == KEYS.private.n

    def test_modulus_size(self):
        assert KEYS.public.n.bit_length() == 256

    def test_deterministic_with_seed(self):
        a = generate_keypair(128, seed=7)
        b = generate_keypair(128, seed=7)
        assert a.public == b.public and a.private == b.private

    def test_different_seeds_differ(self):
        assert generate_keypair(128, seed=1).public != generate_keypair(
            128, seed=2
        ).public

    def test_mismatched_pair_rejected(self):
        with pytest.raises(ValueError, match="moduli differ"):
            KeyPair(PublicKey(15, 3), PrivateKey(21, 3))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            generate_keypair(32)
        with pytest.raises(ValueError):
            generate_keypair(129)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "payload",
        [
            b"",
            b"x",
            b"hello zmail",
            b"\x00\x01\x02\xff" * 10,
            b"a" * 500,  # multi-block
        ],
    )
    def test_encrypt_public_decrypt_private(self, payload):
        assert dcr(KEYS.private, ncr(KEYS.public, payload)) == payload

    def test_encrypt_private_decrypt_public(self):
        """Signature-flavoured direction used for bank replies."""
        payload = b"buyreply"
        assert dcr(KEYS.public, ncr(KEYS.private, payload)) == payload

    def test_semantic_masking(self):
        """Equal plaintexts produce unequal ciphertexts (random prefix)."""
        a = ncr(KEYS.public, b"same", seed=1)
        b = ncr(KEYS.public, b"same", seed=2)
        assert a != b
        assert dcr(KEYS.private, a) == dcr(KEYS.private, b) == b"same"

    def test_deterministic_with_seed(self):
        assert ncr(KEYS.public, b"x", seed=9) == ncr(KEYS.public, b"x", seed=9)


class TestFailureModes:
    def test_wrong_key_fails(self):
        other = generate_keypair(256, seed=99)
        ciphertext = ncr(KEYS.public, b"secret")
        with pytest.raises(DecryptionError):
            dcr(other.private, ciphertext)

    def test_truncated_ciphertext_rejected(self):
        ciphertext = ncr(KEYS.public, b"secret")
        with pytest.raises(DecryptionError, match="multiple"):
            dcr(KEYS.private, ciphertext[:-5])

    def test_empty_ciphertext_rejected(self):
        with pytest.raises(DecryptionError):
            dcr(KEYS.private, b"")


class TestObjectForms:
    @pytest.mark.parametrize(
        "obj",
        [
            [123, 456],
            {"value": 10, "nonce": 999},
            "plain string",
            [0, True],
            [[1, 2], [3, 4]],
        ],
    )
    def test_round_trip(self, obj):
        assert dcr_object(KEYS.private, ncr_object(KEYS.public, obj)) == obj

    def test_spec_shapes(self):
        """The exact tuples the Zmail spec encrypts."""
        buy = ncr_object(KEYS.public, [250, 0xDEADBEEF])
        value, nonce = dcr_object(KEYS.private, buy)
        assert (value, nonce) == (250, 0xDEADBEEF)
        reply = ncr_object(KEYS.private, [0xDEADBEEF, True])
        echoed, accepted = dcr_object(KEYS.public, reply)
        assert echoed == 0xDEADBEEF and accepted is True

    def test_garbage_json_rejected(self):
        raw = ncr(KEYS.public, b"\xff\xfe not json")
        with pytest.raises(DecryptionError, match="JSON"):
            dcr_object(KEYS.private, raw)
