"""Hypothesis properties pinning the shard planner's contracts.

The cluster runtime's determinism argument leans on four planner
properties, each pinned here over arbitrary deployment shapes:

* **total** — every ISP is assigned a home shard;
* **disjoint** — exactly one home each (the per-shard ISP sets
  partition the deployment);
* **deterministic** — the same ``(n_isps, n_shards, seed, weights)``
  always yields the same plan, and a different seed is allowed to
  differ (rendezvous scores move);
* **permutation-stable** — in an equal-weight deployment, one ISP's
  home depends only on its own id, never on which other ISPs exist: a
  plan over any subset of the id space agrees with the full plan on the
  survivors.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.cluster.planner import ShardPlan, plan_shards, shard_of

PLANNER_SETTINGS = settings(max_examples=80, deadline=None, derandomize=True)

SHAPES = st.integers(1, 64).flatmap(
    lambda n_isps: st.tuples(
        st.just(n_isps),
        st.integers(1, n_isps),
        st.integers(0, 2**32),
    )
)


@PLANNER_SETTINGS
@given(shape=SHAPES)
def test_partition_total_and_disjoint(shape):
    n_isps, n_shards, seed = shape
    plan = plan_shards(n_isps, n_shards, seed=seed)
    shards = plan.shards()
    assert len(shards) == n_shards
    union = set()
    total = 0
    for members in shards:
        assert not (union & members), "an ISP has two home shards"
        union |= members
        total += len(members)
    assert union == set(range(n_isps))
    assert total == n_isps
    for isp_id in range(n_isps):
        assert isp_id in plan.shard_isps(plan.home(isp_id))


@PLANNER_SETTINGS
@given(shape=SHAPES)
def test_plan_deterministic_per_seed(shape):
    n_isps, n_shards, seed = shape
    first = plan_shards(n_isps, n_shards, seed=seed)
    second = plan_shards(n_isps, n_shards, seed=seed)
    assert first == second
    assert first.assignment == tuple(
        shard_of(isp_id, n_shards, seed=seed) for isp_id in range(n_isps)
    )


@PLANNER_SETTINGS
@given(
    shape=SHAPES,
    keep=st.sets(st.integers(0, 63), min_size=1),
)
def test_equal_weight_assignment_is_per_isp_independent(shape, keep):
    """Rendezvous homes depend only on the ISP's own id.

    Restricting the deployment to any subset of ISP ids (the
    permutation/relabeling stability the issue asks for) leaves every
    survivor's home unchanged: ``shard_of`` never looks at the rest of
    the deployment.
    """
    n_isps, n_shards, seed = shape
    full = plan_shards(n_isps, n_shards, seed=seed)
    for isp_id in keep:
        if isp_id < n_isps:
            assert shard_of(isp_id, n_shards, seed=seed) == full.home(isp_id)


@PLANNER_SETTINGS
@given(
    n_shards=st.integers(1, 8),
    seed=st.integers(0, 2**32),
    weights=st.lists(st.integers(1, 1000), min_size=8, max_size=40),
)
def test_weighted_plan_total_disjoint_deterministic(n_shards, seed, weights):
    n_isps = len(weights)
    plan = plan_shards(n_isps, n_shards, seed=seed, weights=weights)
    again = plan_shards(n_isps, n_shards, seed=seed, weights=list(weights))
    assert plan == again
    assert sorted(
        isp for members in plan.shards() for isp in members
    ) == list(range(n_isps))


@PLANNER_SETTINGS
@given(
    n_shards=st.integers(2, 6),
    weights=st.lists(st.integers(1, 100), min_size=12, max_size=40),
)
def test_weighted_plan_balances_load(n_shards, weights):
    """Greedy placement keeps the heaviest shard within one max-weight
    item of the lightest — the classic LPT bound's shape. (All-equal
    weights use rendezvous hashing instead, which trades balance for
    permutation stability, so they are excluded here.)"""
    hypothesis.assume(len(set(weights)) > 1)
    n_isps = len(weights)
    plan = plan_shards(n_isps, n_shards, weights=weights)
    loads = [
        sum(weights[isp] for isp in members) for members in plan.shards()
    ]
    assert max(loads) - min(loads) <= max(weights)


def test_plan_validation_errors():
    with pytest.raises(ValueError):
        plan_shards(0, 1)
    with pytest.raises(ValueError):
        plan_shards(4, 0)
    with pytest.raises(ValueError):
        plan_shards(4, 5)  # more shards than ISPs
    with pytest.raises(ValueError):
        plan_shards(4, 2, weights=[1, 2, 3])  # wrong length
    with pytest.raises(ValueError):
        shard_of(0, 0)


def test_plan_is_frozen_value_object():
    plan = plan_shards(6, 2, seed=3)
    assert isinstance(plan, ShardPlan)
    assert plan.n_isps == 6 and plan.n_shards == 2 and plan.seed == 3
    with pytest.raises(AttributeError):
        plan.n_isps = 7
