"""Tests for seeded RNG streams: determinism and independence."""

from repro.sim.rng import SeededStreams, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123, "stream") < 2**64


class TestSeededStreams:
    def test_same_name_returns_same_stream(self):
        streams = SeededStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_reproducible_across_instances(self):
        a = SeededStreams(7).get("arrivals")
        b = SeededStreams(7).get("arrivals")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_streams_are_independent(self):
        """Draws on one stream must not perturb another."""
        reference = SeededStreams(7)
        ref_values = [reference.get("b").random() for _ in range(10)]

        perturbed = SeededStreams(7)
        for _ in range(1000):
            perturbed.get("a").random()  # heavy use of an unrelated stream
        got = [perturbed.get("b").random() for _ in range(10)]
        assert got == ref_values

    def test_spawn_produces_distinct_family(self):
        parent = SeededStreams(7)
        child = parent.spawn("isp0")
        assert child.get("x").random() != parent.get("x").random()

    def test_spawn_is_deterministic(self):
        a = SeededStreams(7).spawn("isp0").get("x").random()
        b = SeededStreams(7).spawn("isp0").get("x").random()
        assert a == b


class TestConvenienceDraws:
    def test_uniform_in_range(self):
        streams = SeededStreams(1)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 5.0)
            assert 2.0 <= value <= 5.0

    def test_bernoulli_extremes(self):
        streams = SeededStreams(1)
        assert not any(streams.bernoulli("p0", 0.0) for _ in range(50))
        assert all(streams.bernoulli("p1", 1.0) for _ in range(50))

    def test_choice_covers_items(self):
        streams = SeededStreams(1)
        seen = {streams.choice("c", ["a", "b", "c"]) for _ in range(200)}
        assert seen == {"a", "b", "c"}

    def test_expovariate_positive(self):
        streams = SeededStreams(1)
        assert all(streams.expovariate("e", 2.0) > 0 for _ in range(100))

    def test_poisson_process_gaps_positive(self):
        streams = SeededStreams(1)
        gen = streams.poisson_process("pp", rate=10.0)
        gaps = [next(gen) for _ in range(100)]
        assert all(g > 0 for g in gaps)
        mean_gap = sum(gaps) / len(gaps)
        assert 0.03 < mean_gap < 0.3  # rough sanity around 1/rate
