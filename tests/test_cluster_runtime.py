"""Shard invariance and protocol correctness of the cluster runtime.

The headline oracle: running the same scenario at N=1, 2 and 4 shards
(inline workers — same code the spawn path drives) produces
byte-identical merged manifests, identical balances/ledger digests, and
credit anti-symmetry at every snapshot round. Plus the worker message
loop driven over a real pipe from a thread, and the validation errors
that keep misconfigured runs from silently diverging.
"""

import dataclasses
import json
import multiprocessing
import threading

import pytest

from repro.cluster import (
    ClusterConfig,
    ShardSpec,
    ShardWorker,
    cluster_scenario,
    plan_shards,
    run_cluster,
    smoke_scenario,
    worker_entry,
)
from repro.errors import SimulationError
from repro.sim.clock import HOUR


@pytest.fixture(scope="module")
def invariance_runs():
    """One smoke scenario at three shard counts (inline, traced)."""
    return {
        n: run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(11), n_shards=n, mode="inline"
            )
        )
        for n in (1, 2, 4)
    }


class TestShardInvariance:
    def test_manifests_byte_identical(self, invariance_runs):
        reference = invariance_runs[1].manifest.to_json()
        for n, result in invariance_runs.items():
            assert result.manifest.to_json() == reference, (
                f"N={n} manifest diverged from N=1"
            )

    def test_balances_and_ledger_digests_identical(self, invariance_runs):
        reference = invariance_runs[1].manifest.extra
        for result in invariance_runs.values():
            extra = result.manifest.extra
            assert extra["balances_digest"] == reference["balances_digest"]
            assert extra["ledger_digest"] == reference["ledger_digest"]
            assert (
                extra["ledger_event_count"]
                == reference["ledger_event_count"]
            )

    def test_conservation_and_antisymmetry_every_round(
        self, invariance_runs
    ):
        for result in invariance_runs.values():
            assert result.conserved
            assert result.all_consistent
            assert len(result.rounds) >= 2  # daily cuts + the final one
            for round_info in result.rounds:
                assert round_info["consistent"]
                assert (
                    round_info["total_value"]
                    == round_info["expected_total_value"]
                )

    def test_zombie_detections_identical(self, invariance_runs):
        reference = invariance_runs[1].detections
        assert reference, "smoke scenario should catch its zombie"
        for result in invariance_runs.values():
            assert result.detections == reference

    def test_report_carries_per_run_detail(self, invariance_runs):
        report = invariance_runs[2].report
        assert report["n_shards"] == 2
        assert report["mode"] == "inline"
        assert report["restarts"] == [0, 0]
        assert len(report["assignment"]) == smoke_scenario(11).n_isps
        assert set(report["shards"]) == {"0", "1"}
        attempted = sum(
            shard["attempted"] for shard in report["shards"].values()
        )
        assert (
            attempted
            == invariance_runs[2].manifest.extra["sends_attempted"]
        )

    def test_cross_shard_traffic_actually_flows(self, invariance_runs):
        shards = invariance_runs[4].report["shards"].values()
        assert sum(shard["exported"] for shard in shards) > 0
        assert sum(shard["exported"] for shard in shards) == sum(
            shard["imported"] for shard in shards
        )


class TestWorkerEntry:
    """The spawn-mode message loop, driven from a thread over a pipe."""

    def _spec(self, tmp_path=None):
        scenario = cluster_scenario(
            3, n_isps=4, users_per_isp=6, days=1, adversarial=False
        )
        plan = plan_shards(scenario.n_isps, 1, seed=scenario.seed)
        return ShardSpec(
            shard_id=0,
            n_shards=1,
            scenario=scenario,
            assignment=plan.assignment,
            epoch_len=6 * HOUR,
            total_cycles=4,
            journal_dir=str(tmp_path) if tmp_path is not None else None,
        )

    def _drive(self, conn, total_cycles, reconcile_cycles):
        outputs = []
        for cycle in range(total_cycles + 1):
            conn.send(
                {
                    "type": "inputs",
                    "cycle": cycle,
                    "batches": [],
                    "reconcile": cycle in reconcile_cycles,
                    "final": cycle == total_cycles,
                }
            )
            outputs.append(conn.recv())
        return outputs

    def test_loop_over_pipe_matches_direct_worker(self, tmp_path):
        spec = self._spec(tmp_path)
        parent_conn, child_conn = multiprocessing.Pipe()
        thread = threading.Thread(
            target=worker_entry, args=(child_conn, spec)
        )
        thread.start()
        outputs = self._drive(parent_conn, spec.total_cycles, {4})
        thread.join(timeout=60)
        assert not thread.is_alive()
        final = outputs[-1]
        assert final["type"] == "final"
        assert final["cut"] is not None
        assert final["attempted"] > 0
        # The same spec driven directly produces the same digests.
        direct = ShardWorker(dataclasses.replace(spec, journal_dir=None))
        for cycle in range(spec.total_cycles + 1):
            result = direct.handle_inputs(
                {
                    "type": "inputs",
                    "cycle": cycle,
                    "batches": [],
                    "reconcile": cycle == 4,
                    "final": cycle == 4,
                }
            )
        assert result["digests"] == final["digests"]
        assert result["accounting"] == final["accounting"]

    def test_stop_message_ends_loop(self):
        spec = self._spec()
        parent_conn, child_conn = multiprocessing.Pipe()
        thread = threading.Thread(
            target=worker_entry, args=(child_conn, spec)
        )
        thread.start()
        parent_conn.send({"type": "stop"})
        thread.join(timeout=60)
        assert not thread.is_alive()

    def test_closed_pipe_ends_loop(self):
        spec = self._spec()
        parent_conn, child_conn = multiprocessing.Pipe()
        thread = threading.Thread(
            target=worker_entry, args=(child_conn, spec)
        )
        thread.start()
        parent_conn.close()
        thread.join(timeout=60)
        assert not thread.is_alive()

    def test_stale_inputs_dropped_and_gaps_rejected(self):
        spec = self._spec()
        worker = ShardWorker(spec)
        first = worker.handle_inputs(
            {"cycle": 0, "batches": [], "reconcile": False, "final": False}
        )
        assert first["type"] == "outputs"
        # A resent duplicate is ignored, not reapplied.
        assert (
            worker.handle_inputs(
                {"cycle": 0, "batches": [], "reconcile": False,
                 "final": False}
            )
            is None
        )
        with pytest.raises(SimulationError, match="expected inputs"):
            worker.handle_inputs(
                {"cycle": 2, "batches": [], "reconcile": False,
                 "final": False}
            )

    def test_unreadable_journal_rejected(self, tmp_path):
        spec = self._spec(tmp_path)
        with open(spec.journal_path, "w", encoding="utf-8") as handle:
            json.dump({"format": 999}, handle)
        with pytest.raises(SimulationError, match="journal format"):
            ShardWorker(spec)


class TestValidation:
    def test_cadence_constraints_enforced(self):
        scenario = smoke_scenario(0)
        with pytest.raises(ValueError, match="duration"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=1, mode="inline",
                    epoch_len=7 * HOUR,  # divides neither day nor duration
                )
            )
        with pytest.raises(ValueError, match="day length"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=1, mode="inline",
                    epoch_len=16 * HOUR,  # divides duration, not the day
                )
            )
        bad_reconcile = smoke_scenario(0)
        bad_reconcile.reconcile_every = 90 * 60.0  # 1.5h
        with pytest.raises(ValueError, match="reconcile_every"):
            run_cluster(
                ClusterConfig(
                    scenario=bad_reconcile, n_shards=1, mode="inline"
                )
            )
        with pytest.raises(ValueError, match="epoch_len"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=1, mode="inline",
                    epoch_len=0.0,
                )
            )

    def test_mode_and_kill_config_validated(self, tmp_path):
        scenario = smoke_scenario(0)
        with pytest.raises(ValueError, match="mode"):
            run_cluster(
                ClusterConfig(scenario=scenario, n_shards=1, mode="threads")
            )
        with pytest.raises(ValueError, match="together"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=1, mode="inline",
                    kill_shard=0,
                )
            )
        with pytest.raises(ValueError, match="journal_dir"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=1, mode="inline",
                    kill_shard=0, kill_cycle=3,
                )
            )
        with pytest.raises(ValueError, match="kill_shard"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=2, mode="inline",
                    kill_shard=5, kill_cycle=3,
                    journal_dir=str(tmp_path),
                )
            )
        with pytest.raises(ValueError, match="kill_cycle"):
            run_cluster(
                ClusterConfig(
                    scenario=scenario, n_shards=2, mode="inline",
                    kill_shard=0, kill_cycle=10_000,
                    journal_dir=str(tmp_path),
                )
            )

    def test_more_shards_than_isps_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            run_cluster(
                ClusterConfig(
                    scenario=smoke_scenario(0), n_shards=100, mode="inline"
                )
            )


class TestUntraced:
    def test_untraced_run_keeps_accounting_oracles(self):
        traced = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(11), n_shards=2, mode="inline"
            )
        )
        untraced = run_cluster(
            ClusterConfig(
                scenario=smoke_scenario(11), n_shards=2, mode="inline",
                traced=False,
            )
        )
        assert untraced.manifest.event_count == 0
        assert untraced.conserved and untraced.all_consistent
        assert (
            untraced.manifest.extra["balances_digest"]
            == traced.manifest.extra["balances_digest"]
        )
        assert (
            untraced.manifest.extra["sends_attempted"]
            == traced.manifest.extra["sends_attempted"]
        )
