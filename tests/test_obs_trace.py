"""Unit tests for the trace recorder, sinks, spans and event schema."""

import io
import json

import pytest

from repro.obs.schema import (
    EVENT_TYPES,
    LEDGER_EVENT_TYPES,
    TraceSchemaError,
    validate_event,
    validate_trace_lines,
)
from repro.obs.spans import NULL_SPANS, SpanRegistry
from repro.obs.trace import (
    NULL_TRACER,
    AdditiveMultisetDigest,
    JsonlSink,
    ListSink,
    RingSink,
    TraceRecorder,
    canonical_line,
    multiset_digest,
)


class TestCanonicalLine:
    def test_sorted_compact(self):
        assert canonical_line({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_key_order_irrelevant(self):
        assert canonical_line({"x": 1, "y": 2}) == canonical_line({"y": 2, "x": 1})


class TestTraceRecorder:
    def test_emit_assigns_sequence_and_time(self):
        sink = ListSink()
        recorder = TraceRecorder(sink=sink, clock=lambda: 42.5)
        recorder.emit("crash", node="isp0")
        recorder.emit("restart", node="isp0")
        events = sink.events()
        assert [e["seq"] for e in events] == [1, 2]
        assert all(e["t"] == 42.5 for e in events)
        assert recorder.events_emitted == 2

    def test_no_clock_stamps_zero(self):
        sink = ListSink()
        recorder = TraceRecorder(sink=sink)
        recorder.emit("crash", node="bank")
        assert sink.events()[0]["t"] == 0.0

    def test_emit_at_explicit_time(self):
        sink = ListSink()
        recorder = TraceRecorder(sink=sink, clock=lambda: 1.0)
        recorder.emit_at(99.0, "crash", node="bank")
        assert sink.events()[0]["t"] == 99.0

    def test_disabled_emits_nothing(self):
        sink = ListSink()
        recorder = TraceRecorder(sink=sink, enabled=False)
        recorder.emit("crash", node="isp0")
        recorder.emit_at(1.0, "crash", node="isp0")
        assert len(sink) == 0
        assert recorder.events_emitted == 0

    def test_digest_tracks_lines_without_a_sink(self):
        with_sink = TraceRecorder(sink=ListSink(), clock=lambda: 1.0)
        sinkless = TraceRecorder(clock=lambda: 1.0)
        for recorder in (with_sink, sinkless):
            recorder.emit("crash", node="isp1")
            recorder.emit("restart", node="isp1")
        assert with_sink.digest() == sinkless.digest()

    def test_digest_differs_on_any_field_change(self):
        a = TraceRecorder()
        b = TraceRecorder()
        a.emit("crash", node="isp0")
        b.emit("crash", node="isp1")
        assert a.digest() != b.digest()

    def test_null_tracer_is_shared_and_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.clock is None
        NULL_TRACER.emit("crash", node="x")
        assert NULL_TRACER.events_emitted == 0


class TestSinks:
    def test_ring_keeps_newest(self):
        ring = RingSink(bound=3)
        recorder = TraceRecorder(sink=ring)
        for node in "abcde":
            recorder.emit("crash", node=node)
        assert len(ring) == 3
        assert [e["node"] for e in ring.events()] == ["c", "d", "e"]
        assert [json.loads(line)["node"] for line in ring.lines()] == ["c", "d", "e"]
        assert ring.bound == 3

    def test_ring_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="bound"):
            RingSink(bound=0)

    def test_ring_eviction_does_not_change_digest(self):
        bounded = TraceRecorder(sink=RingSink(bound=2))
        unbounded = TraceRecorder(sink=ListSink())
        for recorder in (bounded, unbounded):
            for node in "abcd":
                recorder.emit("crash", node=node)
        assert bounded.digest() == unbounded.digest()

    def test_jsonl_sink_writes_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            recorder = TraceRecorder(sink=sink, clock=lambda: 2.0)
            recorder.emit("crash", node="isp0")
            recorder.emit("restart", node="isp0")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert validate_trace_lines(lines) == 2

    def test_jsonl_sink_does_not_close_caller_file(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        TraceRecorder(sink=sink).emit("crash", node="bank")
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["node"] == "bank"


class TestMultisetDigest:
    def test_order_insensitive(self):
        events = [
            {"t": 1.0, "seq": 1, "type": "send", "src": "a", "dst": "b"},
            {"t": 2.0, "seq": 2, "type": "deliver", "src": "a", "dst": "b"},
        ]
        assert multiset_digest(events) == multiset_digest(list(reversed(events)))

    def test_time_and_seq_excluded_by_default(self):
        early = [{"t": 1.0, "seq": 1, "type": "send", "src": "a"}]
        late = [{"t": 9.0, "seq": 7, "type": "send", "src": "a"}]
        assert multiset_digest(early) == multiset_digest(late)

    def test_multiplicity_matters(self):
        one = [{"t": 0, "seq": 1, "type": "send", "src": "a"}]
        two = one + [{"t": 0, "seq": 2, "type": "send", "src": "a"}]
        assert multiset_digest(one) != multiset_digest(two)

    def test_include_types_filters(self):
        events = [
            {"t": 0, "seq": 1, "type": "send", "src": "a"},
            {"t": 0, "seq": 2, "type": "net.drop", "src": "a", "dst": "b"},
        ]
        ledger_only = multiset_digest(events, include_types=LEDGER_EVENT_TYPES)
        assert ledger_only == multiset_digest(
            events[:1], include_types=LEDGER_EVENT_TYPES
        )
        assert ledger_only != multiset_digest(events)

    def test_accepts_canonical_lines(self):
        event = {"t": 0.5, "seq": 1, "type": "crash", "node": "bank"}
        assert multiset_digest([event]) == multiset_digest([canonical_line(event)])


class TestAdditiveMultisetDigest:
    EVENTS = [
        {"t": 1.0, "seq": 1, "type": "send", "src": "a", "dst": "b"},
        {"t": 2.0, "seq": 2, "type": "deliver", "src": "a", "dst": "b"},
        {"t": 3.0, "seq": 3, "type": "midnight", "day": 1},
        {"t": 4.0, "seq": 4, "type": "send", "src": "a", "dst": "b"},
    ]

    def _absorb(self, events, **kwargs):
        acc = AdditiveMultisetDigest(**kwargs)
        for event in events:
            acc.add(event)
        return acc

    def test_order_insensitive_and_accepts_lines(self):
        forward = self._absorb(self.EVENTS)
        backward = self._absorb(
            [canonical_line(e) for e in reversed(self.EVENTS)]
        )
        assert forward.digest() == backward.digest()
        assert forward.count == backward.count == 4

    def test_multiplicity_matters(self):
        one = self._absorb(self.EVENTS[:1])
        two = self._absorb([self.EVENTS[0], self.EVENTS[3]])
        assert one.digest() != two.digest()

    def test_merge_equals_absorbing_the_union(self):
        left = self._absorb(self.EVENTS[:2])
        right = self._absorb(self.EVENTS[2:])
        left.merge(right)
        assert left.digest() == self._absorb(self.EVENTS).digest()
        assert left.count == 4

    def test_state_roundtrip_resumes_exactly(self):
        acc = self._absorb(self.EVENTS[:2])
        resumed = AdditiveMultisetDigest()
        resumed.load_state(acc.state_dict())
        for event in self.EVENTS[2:]:
            acc.add(event)
            resumed.add(event)
        assert resumed.digest() == acc.digest()

    def test_include_types_allow_list(self):
        sends = self._absorb(self.EVENTS, include_types={"send"})
        assert sends.count == 2
        assert sends.digest() == self._absorb(
            [self.EVENTS[0], self.EVENTS[3]], include_types={"send"}
        ).digest()

    def test_exclude_types_deny_list(self):
        no_midnight = self._absorb(self.EVENTS, exclude_types=("midnight",))
        assert no_midnight.count == 3
        assert no_midnight.digest() == self._absorb(
            [e for e in self.EVENTS if e["type"] != "midnight"]
        ).digest()

    def test_exclude_fields_defaults_drop_time_and_seq(self):
        early = self._absorb([{"t": 1.0, "seq": 1, "type": "send", "src": "a"}])
        late = self._absorb([{"t": 9.0, "seq": 7, "type": "send", "src": "a"}])
        assert early.digest() == late.digest()
        kept = self._absorb(
            [{"t": 1.0, "seq": 1, "type": "send", "src": "a"}],
            exclude_fields=(),
        )
        assert kept.digest() != early.digest()

    def test_empty_accumulators_agree(self):
        assert (
            AdditiveMultisetDigest().digest()
            == AdditiveMultisetDigest(include_types={"send"}).digest()
        )


class TestSchema:
    def test_every_type_has_nonempty_requirements_documented(self):
        assert LEDGER_EVENT_TYPES <= set(EVENT_TYPES)
        for etype, required in EVENT_TYPES.items():
            assert isinstance(required, frozenset), etype

    def test_valid_event_passes(self):
        validate_event(
            {"t": 0.0, "seq": 1, "type": "send",
             "src": "a", "dst": "b", "kind": "normal", "status": "ok"}
        )

    def test_extra_fields_allowed(self):
        validate_event(
            {"t": 0.0, "seq": 1, "type": "crash", "node": "bank",
             "annotation": "anything"}
        )

    @pytest.mark.parametrize("missing", ["t", "seq", "type"])
    def test_envelope_required(self, missing):
        event = {"t": 0.0, "seq": 1, "type": "crash", "node": "bank"}
        del event[missing]
        with pytest.raises(TraceSchemaError, match="envelope|unknown"):
            validate_event(event)

    def test_negative_time_rejected(self):
        with pytest.raises(TraceSchemaError, match="time"):
            validate_event({"t": -1.0, "seq": 1, "type": "crash", "node": "b"})

    def test_boolean_time_rejected(self):
        with pytest.raises(TraceSchemaError, match="time"):
            validate_event({"t": True, "seq": 1, "type": "crash", "node": "b"})

    @pytest.mark.parametrize("seq", [0, -3, True, "1"])
    def test_invalid_seq_rejected(self, seq):
        with pytest.raises(TraceSchemaError, match="seq"):
            validate_event({"t": 0.0, "seq": seq, "type": "crash", "node": "b"})

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceSchemaError, match="unknown event type"):
            validate_event({"t": 0.0, "seq": 1, "type": "frobnicate"})

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceSchemaError, match="missing required"):
            validate_event({"t": 0.0, "seq": 1, "type": "send", "src": "a"})

    def test_lines_must_increase_seq(self):
        lines = [
            canonical_line({"t": 0.0, "seq": 2, "type": "crash", "node": "a"}),
            canonical_line({"t": 0.0, "seq": 1, "type": "crash", "node": "a"}),
        ]
        with pytest.raises(TraceSchemaError, match="strictly increasing"):
            validate_trace_lines(lines)

    def test_unparseable_line_rejected(self):
        with pytest.raises(TraceSchemaError, match="unparseable"):
            validate_trace_lines(["{not json"])

    def test_blank_lines_skipped(self):
        line = canonical_line({"t": 0.0, "seq": 1, "type": "crash", "node": "a"})
        assert validate_trace_lines(["", line, "  "]) == 1


class TestSpans:
    def test_records_with_injected_timer(self):
        ticks = iter([10.0, 13.0, 20.0, 21.0])
        spans = SpanRegistry(timer=lambda: next(ticks))
        with spans.span("work"):
            pass
        with spans.span("work"):
            pass
        stats = spans.stats()["work"]
        assert stats["count"] == 2
        assert stats["total"] == pytest.approx(4.0)
        assert stats["min"] == pytest.approx(1.0)
        assert stats["max"] == pytest.approx(3.0)
        assert stats["mean"] == pytest.approx(2.0)

    def test_disabled_registry_records_nothing(self):
        spans = SpanRegistry(enabled=False)
        with spans.span("work"):
            pass
        spans.record("work", 1.0)
        assert spans.stats() == {}

    def test_null_spans_shared_noop(self):
        assert NULL_SPANS.enabled is False
        with NULL_SPANS.span("anything"):
            pass
        assert NULL_SPANS.stats() == {}

    def test_direct_record(self):
        spans = SpanRegistry()
        spans.record("x", 0.25)
        assert spans.stats()["x"]["total"] == pytest.approx(0.25)
