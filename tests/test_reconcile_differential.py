"""Lockstep as differential oracle for the bounded-lag drive.

The acceptance contract of the barrier-free mode: for *any* scenario,
shard count and lag bound K, the asynchronous run must converge at
quiescence to a final run manifest **byte-identical** to the lockstep
run's, with the same reconciliation rounds and zero verifier faults.
Hypothesis draws small randomized deployments (ISP/user counts, traffic
rate, adversaries, seed) and a random (K, shard count) pair; any
divergence shrinks to a minimal scenario. A fixed-seed matrix over
K ∈ {1, 2, 4} × shards ∈ {1..4} and a CLI-level byte comparison pin the
same contract deterministically.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import cli
from repro.cluster import ClusterConfig, cluster_scenario, run_cluster


def run_inline(scenario, n_shards, lag=0):
    return run_cluster(
        ClusterConfig(
            scenario=scenario, n_shards=n_shards, mode="inline",
            traced=False, lag=lag,
        )
    )


def assert_equivalent(base, async_result, lag):
    """The oracle: identical invariants, faultless streaming."""
    assert async_result.manifest.to_json() == base.manifest.to_json()
    assert async_result.rounds == base.rounds
    assert async_result.report["lag"] == lag
    summary = async_result.report["reconcile"]
    assert summary["counters"]["faults"] == 0
    assert summary["faults"] == []
    assert summary["all_consistent"]
    assert summary["windows_closed"] == len(async_result.rounds)
    assert async_result.conserved and async_result.all_consistent


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_isps=st.integers(min_value=2, max_value=5),
    users=st.integers(min_value=2, max_value=6),
    rate=st.sampled_from([8.0, 16.0, 24.0]),
    adversarial=st.booleans(),
    lag=st.sampled_from([1, 2, 4]),
    n_shards=st.integers(min_value=1, max_value=3),
)
def test_bounded_lag_converges_to_lockstep_manifest(
    seed, n_isps, users, rate, adversarial, lag, n_shards
):
    n_shards = min(n_shards, n_isps)  # the planner caps shards at ISPs
    scenario = cluster_scenario(
        seed, n_isps=n_isps, users_per_isp=users, days=1,
        normal_rate_per_day=rate, adversarial=adversarial,
    )
    base = run_inline(scenario, n_shards)
    async_result = run_inline(scenario, n_shards, lag=lag)
    assert_equivalent(base, async_result, lag)


class TestFixedMatrix:
    """One seed, the full drive matrix — deterministic, no shrinking."""

    @pytest.fixture(scope="class")
    def lockstep(self):
        return run_inline(cluster_scenario(5, n_isps=6, users_per_isp=8,
                                           days=1), 1)

    @pytest.mark.parametrize("lag", [1, 2, 4])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_lag_and_shard_invariance(self, lockstep, lag, n_shards):
        async_result = run_inline(
            cluster_scenario(5, n_isps=6, users_per_isp=8, days=1),
            n_shards, lag=lag,
        )
        assert_equivalent(lockstep, async_result, lag)

    def test_lockstep_report_carries_no_reconcile_summary(self, lockstep):
        # The streaming summary is the async drive's signature; the
        # lockstep drive reconciles in batch and must say so.
        assert lockstep.report["lag"] == 0
        assert "reconcile" not in lockstep.report


class TestConfigValidation:
    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError, match="lag"):
            run_cluster(
                ClusterConfig(
                    scenario=cluster_scenario(1, n_isps=2, users_per_isp=2,
                                              days=1),
                    n_shards=1, mode="inline", lag=-1,
                )
            )

    def test_non_integer_lag_rejected(self):
        with pytest.raises(ValueError, match="lag"):
            run_cluster(
                ClusterConfig(
                    scenario=cluster_scenario(1, n_isps=2, users_per_isp=2,
                                              days=1),
                    n_shards=1, mode="inline", lag=1.5,
                )
            )


def test_cli_lag_writes_identical_manifest_bytes(tmp_path, capsys):
    """`repro cluster --lag K` is the CI cmp smoke, in-process."""
    base_path = tmp_path / "lockstep.json"
    lag_path = tmp_path / "lag2.json"
    common = ["cluster", "--seed", "9", "--shards", "2", "--mode", "inline",
              "--isps", "4", "--users", "8", "--days", "1"]
    assert cli.main(common + ["--manifest", str(base_path)]) == 0
    assert cli.main(
        common + ["--lag", "2", "--manifest", str(lag_path)]
    ) == 0
    assert base_path.read_bytes() == lag_path.read_bytes()
    out = capsys.readouterr().out
    assert "lockstep" in out and "bounded-lag K=2" in out
