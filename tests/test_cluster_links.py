"""Unit tests for the inter-shard data plane (wire codec, FIFO links)."""

import pytest

from repro.cluster.links import (
    InterShardLink,
    LetterSequencer,
    ShardOutbox,
    decode_letter,
    encode_letter,
)
from repro.core.transfer import Letter
from repro.errors import SimulationError
from repro.sim.workload import Address, TrafficKind


def _letter(paid=True, kind=TrafficKind.NORMAL, content=None):
    return Letter(Address(0, 1), Address(3, 2), kind, paid=paid,
                  content=content)


class TestWireCodec:
    def test_roundtrip_preserves_everything(self):
        for paid in (True, False):
            for kind in TrafficKind:
                original = _letter(paid=paid, kind=kind, content=("a", "b"))
                seq, rebuilt = decode_letter(encode_letter(original, 17))
                assert seq == 17
                assert rebuilt == original

    def test_malformed_wire_raises(self):
        with pytest.raises(SimulationError):
            decode_letter((1, 2, 3))  # too short
        with pytest.raises(SimulationError):
            decode_letter((0, 0, 1, 3, 2, "no-such-kind", True, None))


class TestLetterSequencer:
    def test_per_source_monotone(self):
        sequencer = LetterSequencer()
        assert [sequencer.stamp(0) for _ in range(3)] == [0, 1, 2]
        assert sequencer.stamp(5) == 0
        assert sequencer.stamp(0) == 3

    def test_state_roundtrip(self):
        sequencer = LetterSequencer()
        for src in (0, 0, 2, 7):
            sequencer.stamp(src)
        restored = LetterSequencer()
        restored.load_state(sequencer.state_dict())
        assert restored.stamp(0) == sequencer.stamp(0)
        assert restored.stamp(2) == sequencer.stamp(2)
        assert restored.stamp(9) == 0


class TestOutboxAndLink:
    def test_outbox_emits_one_batch_per_peer_including_empty(self):
        outbox = ShardOutbox(1, [0, 2])
        wire = encode_letter(_letter(), 0)
        outbox.add(0, wire)
        batches = outbox.flush(epoch=4)
        assert set(batches) == {0, 2}
        assert batches[0] == {"src_shard": 1, "epoch": 4, "letters": [wire]}
        assert batches[2]["letters"] == []
        # flush drains: the next epoch starts empty
        assert outbox.flush(epoch=5)[0]["letters"] == []

    def test_link_accepts_contiguous_epochs(self):
        link = InterShardLink(1)
        assert link.accept({"src_shard": 1, "epoch": 0, "letters": []}) == []
        assert link.accept({"src_shard": 1, "epoch": 1, "letters": ["x"]}) == ["x"]
        assert link.expected_epoch == 2

    def test_link_drops_duplicates_from_restarted_sender(self):
        link = InterShardLink(0, expected_epoch=3)
        assert link.accept({"src_shard": 0, "epoch": 2, "letters": ["dup"]}) is None
        assert link.expected_epoch == 3  # unchanged by a duplicate

    def test_link_raises_on_gap_wrong_source_and_missing_tag(self):
        link = InterShardLink(0)
        with pytest.raises(SimulationError, match="batch lost"):
            link.accept({"src_shard": 0, "epoch": 2, "letters": []})
        with pytest.raises(SimulationError, match="arrived on the link"):
            link.accept({"src_shard": 1, "epoch": 0, "letters": []})
        with pytest.raises(SimulationError, match="missing epoch tag"):
            link.accept({"src_shard": 0, "letters": []})
