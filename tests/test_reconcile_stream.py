"""Delta-stream verifier semantics: disorder taxonomy, faults, parity.

The :class:`~repro.core.reconcile.StreamingReconciler` contract pinned
exactly as DESIGN.md §11 states it — disorder is classified three ways
and nothing else:

* **dup-drop**: replayed deltas, seals and totals (including ones for
  already-closed windows) are counted and ignored, never an error;
* **gap-stall**: out-of-order seals buffer, closure waits for the gap;
* **window-expiry**: the frontier running more than ``max_lag`` windows
  ahead of the oldest open window is a :class:`StaleWindowError` under
  ``strict`` and a recorded fault otherwise.

Everything that is not disorder is a conflict fault (disagreeing
duplicate, post-seal delta, unknown party, conflicting totals,
conservation breach, incomplete finalize). The hypothesis suites drive
arbitrary interleavings with injected duplicates and require the exact
reports an in-order run produces — plus field-for-field parity with the
batch :meth:`Bank.reconcile` path on the same claims, the property the
lockstep-as-oracle argument rests on.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    Bank,
    PairDeltaStream,
    ReconcileError,
    StaleWindowError,
    StreamingReconciler,
)
from repro.obs import ListSink, TraceRecorder
from repro.obs.schema import validate_trace_lines


def make(reporters=(0, 1, 2), **kwargs):
    kwargs.setdefault("max_lag", 8)
    return StreamingReconciler(reporters, **kwargs)


class TestPairDeltaStream:
    def test_offer_classifies_apply_duplicate_conflict(self):
        stream = PairDeltaStream(0, 1)
        assert stream.offer(0, 5) == "applied"
        assert stream.offer(0, 5) == "duplicate"
        assert stream.offer(0, 7) == "conflict"
        assert stream.value(0) == 5

    def test_forget_releases_window_state(self):
        stream = PairDeltaStream(0, 1)
        stream.offer(3, -2)
        stream.forget(3)
        assert stream.value(3) is None
        # Forgotten means a replay re-applies rather than conflicting;
        # the reconciler guards closed windows with its own cursor.
        assert stream.offer(3, 9) == "applied"
        stream.forget(4)  # absent window: no-op, not an error


class TestHappyPath:
    def test_in_order_windows_close_in_order(self):
        ver = make()
        for window in range(3):
            for reporter in (0, 1, 2):
                deltas = {p: (1 if reporter < p else -1)
                          for p in (0, 1, 2) if p != reporter}
                ver.ingest_report(reporter, window, deltas)
            assert ver.windows_closed == window + 1
        summary = ver.finalize()
        assert summary["all_consistent"]
        assert [r.round_seq for r in ver.reports] == [0, 1, 2]
        assert summary["counters"]["faults"] == 0
        assert ver.open_windows == []

    def test_eager_pair_verification_counts(self):
        ver = make((0, 1))
        ver.ingest_delta(0, 1, 0, 4)
        assert ver.counters["pairs_verified_early"] == 0
        ver.ingest_delta(1, 0, 0, -4)
        assert ver.counters["pairs_verified_early"] == 1

    def test_inconsistent_pair_flags_suspect(self):
        ver = make((0, 1, 2), strict=True)
        # Reporter 2 lies to both peers; anti-symmetry breaks on both
        # of its pairs, so inference singles it out.
        ver.ingest_report(0, 0, {1: 3, 2: 5})
        ver.ingest_report(1, 0, {0: -3, 2: 1})
        ver.ingest_report(2, 0, {0: -4, 1: -2})
        report = ver.reports[0]
        assert not report.consistent
        assert report.suspects == [2]
        assert not ver.all_consistent
        # Verification findings are not protocol faults.
        assert ver.counters["faults"] == 0

    def test_totals_gate_and_conservation(self):
        closed = []
        ver = make((0, 1), totals_sources=(0, 1),
                   on_report=lambda r, m: closed.append(m))
        ver.ingest_report(0, 0, {1: 2})
        ver.ingest_report(1, 0, {0: -2})
        assert ver.windows_closed == 0  # waiting on totals
        ver.ingest_totals(0, 0, 100, 60)
        assert ver.windows_closed == 0
        ver.ingest_totals(1, 0, 20, 60)
        assert ver.windows_closed == 1
        assert closed[0] == {
            "window": 0, "total_value": 120,
            "expected_total_value": 120, "conserved": True,
        }
        assert ver.finalize()["counters"]["faults"] == 0

    def test_finalize_is_idempotent(self):
        ver = make((0,))
        ver.ingest_report(0, 0, {})
        first = ver.finalize()
        assert first == ver.finalize()
        assert first["windows_closed"] == 1


class TestDupDrop:
    def test_duplicate_delta_before_and_after_seal(self):
        ver = make((0, 1))
        ver.ingest_delta(0, 1, 0, 6)
        assert ver.ingest_delta(0, 1, 0, 6) == "duplicate"
        ver.seal(0, 0)
        # Same value after the seal is still only a replay.
        assert ver.ingest_delta(0, 1, 0, 6) == "duplicate"
        assert ver.counters["dup_deltas_dropped"] == 2
        assert ver.counters["faults"] == 0

    def test_replay_after_window_closed_is_dropped_unverified(self):
        ver = make((0, 1))
        ver.ingest_report(0, 0, {1: 6})
        ver.ingest_report(1, 0, {0: -6})
        assert ver.windows_closed == 1
        # The closed window's values were forgotten, so even a
        # *disagreeing* replay is dropped: bounded memory's price.
        assert ver.ingest_delta(0, 1, 0, 999) == "duplicate"
        assert ver.ingest_totals(0, 0, 1, 2) == "duplicate"
        assert ver.counters["faults"] == 0

    def test_duplicate_seals_and_totals(self):
        ver = make((0, 1), totals_sources=(0,))
        ver.seal(0, 0)
        assert ver.seal(0, 0) == "duplicate"
        assert ver.seal(0, 2) == "buffered"
        assert ver.seal(0, 2) == "duplicate"
        ver.ingest_totals(0, 0, 5, 5)
        assert ver.ingest_totals(0, 0, 5, 5) == "duplicate"
        assert ver.counters["dup_seals_dropped"] == 2
        assert ver.counters["dup_totals_dropped"] == 1
        assert ver.counters["faults"] == 0


class TestGapStall:
    def test_out_of_order_seal_buffers_then_drains(self):
        ver = make((0, 1))
        ver.ingest_report(1, 0, {})
        ver.ingest_report(1, 1, {})
        assert ver.seal(0, 1) == "buffered"
        assert ver.windows_closed == 0  # stalled, nothing lost
        assert ver.seal(0, 0) == "applied"  # fills the gap ...
        assert ver.windows_closed == 2  # ... and drains the buffer
        assert ver.counters["seals_buffered"] == 1
        assert ver.counters["faults"] == 0

    def test_one_sided_pair_stalls_until_peer_seals(self):
        ver = make((0, 1))
        ver.ingest_report(0, 0, {1: 3})
        assert ver.windows_closed == 0
        ver.ingest_report(1, 0, {0: -3})
        assert ver.windows_closed == 1


class TestWindowExpiry:
    def test_strict_raises_stale_window_error(self):
        ver = make((0, 1), max_lag=1)
        ver.ingest_delta(0, 1, 0, 1)
        ver.ingest_delta(0, 1, 1, 1)  # lag 1: at the bound, fine
        with pytest.raises(StaleWindowError):
            ver.ingest_delta(0, 1, 2, 1)  # lag 2 > max_lag

    def test_closing_message_does_not_trip_restored_bound(self):
        ver = make((0, 1), max_lag=0)
        ver.ingest_report(0, 0, {1: 2})
        # This reply both observes window 0 and closes it; the bound is
        # checked after closure, so lag is back to <= 0.
        ver.ingest_report(1, 0, {0: -2})
        assert ver.windows_closed == 1

    def test_non_strict_records_fault_and_continues(self):
        ver = make((0, 1), max_lag=0, strict=False)
        ver.ingest_delta(0, 1, 0, 1)
        assert ver.ingest_delta(0, 1, 1, 1) == "applied"
        assert ver.counters["faults"] >= 1
        assert ver.faults[0]["kind"] == "window-expiry"
        assert ver.faults[0]["max_lag"] == 0


class TestConflictFaults:
    def test_disagreeing_duplicate_delta(self):
        ver = make((0, 1))
        ver.ingest_delta(0, 1, 0, 5)
        with pytest.raises(ReconcileError, match="conflicting-delta"):
            ver.ingest_delta(0, 1, 0, 7)

    def test_post_seal_delta(self):
        ver = make((0, 1))
        ver.seal(0, 0)
        with pytest.raises(ReconcileError, match="post-seal-delta"):
            ver.ingest_delta(0, 1, 0, 5)

    def test_unknown_parties(self):
        ver = make((0, 1), totals_sources=(0,))
        with pytest.raises(ReconcileError, match="unknown-reporter"):
            ver.ingest_delta(9, 1, 0, 1)
        with pytest.raises(ReconcileError, match="unknown-peer"):
            ver.ingest_delta(0, 9, 0, 1)
        with pytest.raises(ReconcileError, match="unknown-reporter"):
            ver.seal(9, 0)
        with pytest.raises(ReconcileError, match="unknown-source"):
            ver.ingest_totals(9, 0, 1, 1)
        # Without configured sources there is no registry to violate.
        assert make((0, 1)).ingest_totals(9, 0, 1, 1) == "applied"

    def test_conflicting_totals(self):
        ver = make((0, 1), totals_sources=(0, 1))
        ver.ingest_totals(0, 0, 10, 10)
        with pytest.raises(ReconcileError, match="conflicting-totals"):
            ver.ingest_totals(0, 0, 10, 11)

    def test_conservation_breach_faults_at_closure(self):
        ver = make((0,), totals_sources=(0,), strict=False)
        ver.ingest_report(0, 0, {})
        ver.ingest_totals(0, 0, 10, 12)
        assert ver.windows_closed == 1  # report still produced
        assert [f["kind"] for f in ver.faults] == ["conservation"]
        assert ver.window_meta[0]["conserved"] is False

    def test_finalize_with_open_window_is_incomplete(self):
        ver = make((0, 1))
        ver.ingest_report(0, 0, {1: 1})
        with pytest.raises(ReconcileError, match="incomplete"):
            ver.finalize()

    def test_input_validation(self):
        with pytest.raises(ValueError, match="max_lag"):
            StreamingReconciler((0, 1), max_lag=-1)
        ver = make((0, 1))
        with pytest.raises(ValueError, match="window"):
            ver.ingest_delta(0, 1, -1, 1)
        with pytest.raises(ValueError, match="window"):
            ver.seal(0, -1)
        with pytest.raises(ValueError, match="window"):
            ver.ingest_totals(0, -1, 1, 1)


class TestTracing:
    def test_events_emitted_and_schema_valid(self):
        sink = ListSink()
        ver = make((0, 1), strict=False,
                   tracer=TraceRecorder(sink=sink))
        ver.ingest_report(0, 0, {1: 2})
        ver.ingest_report(1, 0, {0: -2})
        ver.ingest_delta(0, 1, 1, 5)
        ver.finalize()  # incomplete: window 1 never sealed
        types = [event["type"] for event in sink.events()]
        assert types.count("reconcile.delta") == 3
        assert types.count("reconcile.window") == 1
        assert "reconcile.fault" in types
        assert validate_trace_lines(sink.lines()) == len(sink)


# -- hypothesis: arbitrary interleavings match the in-order run -------------

def reference_run(n_reporters, claims_per_window, totals_sources=None):
    """The unshuffled oracle: report windows in order, reporter order."""
    ver = StreamingReconciler(
        range(n_reporters), max_lag=len(claims_per_window) + 1,
        totals_sources=totals_sources,
    )
    for window, claims in enumerate(claims_per_window):
        for reporter in range(n_reporters):
            ver.ingest_report(reporter, window, claims.get(reporter, {}))
        if totals_sources is not None:
            for source in totals_sources:
                ver.ingest_totals(source, window, 0, 0)
    return ver


def window_claims(draw, n_reporters):
    """Anti-symmetric ground truth for one window (all pairs honest)."""
    claims = {r: {} for r in range(n_reporters)}
    for i in range(n_reporters):
        for j in range(i + 1, n_reporters):
            delta = draw(st.integers(min_value=-50, max_value=50))
            claims[i][j] = delta
            claims[j][i] = -delta
    return claims


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_shuffled_streams_with_duplicates_match_in_order_run(data):
    n_reporters = data.draw(st.integers(min_value=2, max_value=4),
                            label="n_reporters")
    n_windows = data.draw(st.integers(min_value=1, max_value=3),
                          label="n_windows")
    claims = [window_claims(data.draw, n_reporters)
              for _ in range(n_windows)]

    # Every disorder the bounded-lag cluster can physically produce:
    # arbitrary interleaving across streams, arbitrary delta order
    # within one, replays anywhere after their original. The one thing
    # a correct sender never does is emit a *new* delta after its own
    # seal — that is the post-seal-delta conflict, tested separately —
    # so each stream's queue keeps its seal last.
    rng = random.Random(data.draw(st.integers(0, 2**32 - 1), label="seed"))
    queues = []
    for window in range(n_windows):
        for reporter in range(n_reporters):
            deltas = [
                ("delta", reporter, peer, window, delta)
                for peer, delta in claims[window][reporter].items()
            ]
            rng.shuffle(deltas)
            queues.append(deltas + [("seal", reporter, window)])
        queues.append([("totals", window)])
    messages = []
    while queues:
        queue = rng.choice(queues)
        messages.append(queue.pop(0))
        if not queue:
            queues.remove(queue)
    dup_count = data.draw(
        st.integers(min_value=0, max_value=len(messages)), label="dups"
    )
    for _ in range(dup_count):
        origin = rng.randrange(len(messages))
        messages.insert(
            rng.randint(origin + 1, len(messages)), messages[origin]
        )

    ver = StreamingReconciler(
        range(n_reporters), max_lag=n_windows + 1, totals_sources=(0,),
    )
    for msg in messages:
        if msg[0] == "delta":
            ver.ingest_delta(*msg[1:])
        elif msg[0] == "seal":
            ver.seal(*msg[1:])
        else:
            ver.ingest_totals(0, msg[1], 0, 0)
    summary = ver.finalize()

    oracle = reference_run(n_reporters, claims, totals_sources=(0,))
    assert summary["counters"]["faults"] == 0
    assert summary["windows_closed"] == n_windows
    assert summary["all_consistent"]
    assert ver.reports == oracle.reports
    assert ver.window_meta == oracle.window_meta


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_streaming_report_matches_batch_bank_reconcile(data):
    """Field-for-field parity with Bank.reconcile on identical claims.

    Claims here are arbitrary — not necessarily anti-symmetric — so the
    inconsistency findings and suspects must agree too, not just the
    clean path.
    """
    n = data.draw(st.integers(min_value=1, max_value=4), label="n")
    claims = {}
    for reporter in range(n):
        peers = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1).filter(
                    lambda p, r=reporter: p != r
                )
            ),
            label=f"peers{reporter}",
        )
        claims[reporter] = {
            peer: data.draw(st.integers(min_value=-20, max_value=20))
            for peer in sorted(peers)
        }

    batch_bank, stream_bank = Bank(), Bank()
    for isp in range(n):
        batch_bank.register_isp(isp, initial_account=0)
        stream_bank.register_isp(isp, initial_account=0)
    batch = batch_bank.reconcile(claims)
    ver = stream_bank.stream_reconciler()
    for reporter in range(n):
        ver.ingest_report(reporter, 0, claims[reporter])
    ver.finalize()

    assert stream_bank.reports == [batch]  # dataclass equality: all fields
    assert stream_bank.next_seq == batch_bank.next_seq == 1
