"""Tests for the spammer economics model (E1/E2 foundations)."""

import math

import pytest

from repro.economics.breakeven import break_even_table, surviving_campaigns
from repro.economics.spammer import (
    STATUS_QUO_COST_PER_MSG,
    CampaignModel,
    SpamRegime,
    cost_increase_factor,
)


def bulk_campaign(audience=1_000_000):
    return CampaignModel(
        audience=audience, conversion_rate=0.00003, revenue_per_response=25.0
    )


class TestRegimes:
    def test_cost_increase_at_least_two_orders(self):
        """The paper's headline §1.2 claim."""
        assert cost_increase_factor() >= 100.0

    def test_zmail_regime_costs_more(self):
        assert SpamRegime.zmail().cost_per_message > (
            SpamRegime.status_quo().cost_per_message
        )

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            SpamRegime("bad", -1.0)


class TestCampaignModel:
    def test_responses_saturate_at_audience(self):
        model = bulk_campaign(audience=1000)
        assert model.expected_responses(10**9) <= 1000 * model.conversion_rate

    def test_responses_monotone_in_volume(self):
        model = bulk_campaign()
        values = [model.expected_responses(v) for v in (0, 10, 1000, 10**6)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_break_even_rate_scales_with_cost(self):
        model = bulk_campaign()
        sq = model.break_even_response_rate(SpamRegime.status_quo())
        zm = model.break_even_response_rate(SpamRegime.zmail())
        assert zm / sq == pytest.approx(cost_increase_factor())

    def test_optimal_volume_closed_form(self):
        model = bulk_campaign()
        regime = SpamRegime.status_quo()
        expected = model.audience * math.log(
            model.conversion_rate * model.revenue_per_response
            / regime.cost_per_message
        )
        assert model.optimal_volume(regime) == int(expected)

    def test_optimal_volume_is_actually_optimal(self):
        """Brute-force check around the closed form."""
        model = bulk_campaign(audience=10_000)
        regime = SpamRegime.status_quo()
        star = model.optimal_volume(regime)
        best = model.expected_profit(star, regime)
        for delta in (-2000, -500, 500, 2000):
            assert model.expected_profit(star + delta, regime) <= best + 1e-6

    def test_unprofitable_campaign_sends_nothing(self):
        model = bulk_campaign()
        assert model.optimal_volume(SpamRegime.zmail()) == 0
        assert model.optimal_profit(SpamRegime.zmail()) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignModel(audience=0, conversion_rate=0.1, revenue_per_response=1)
        with pytest.raises(ValueError):
            CampaignModel(audience=10, conversion_rate=1.5, revenue_per_response=1)
        with pytest.raises(ValueError):
            CampaignModel(audience=10, conversion_rate=0.1, revenue_per_response=-1)


class TestBreakEvenTable:
    def test_bulk_campaigns_die_targeted_survive(self):
        """The paper: 'incentives will favor more targeted advertising'."""
        rows = break_even_table()
        survivors = surviving_campaigns(rows)
        assert "targeted-niche" in survivors
        assert "opt-in-retail" in survivors
        assert "pharma-bulk" not in survivors
        assert "mortgage-bulk" not in survivors

    def test_every_campaign_volume_drops(self):
        for row in break_even_table():
            assert row.zmail_volume <= row.statusquo_volume
            assert 0.0 <= row.volume_reduction <= 1.0

    def test_aggregate_volume_reduction_substantial(self):
        """'The amount of spam will undoubtedly decrease substantially.'"""
        rows = break_even_table()
        before = sum(r.statusquo_volume for r in rows)
        after = sum(r.zmail_volume for r in rows)
        assert after < 0.5 * before

    def test_profits_nonnegative_at_optimum(self):
        for row in break_even_table():
            assert row.statusquo_profit >= 0.0
            assert row.zmail_profit >= 0.0

    def test_custom_campaign_list(self):
        rows = break_even_table(campaigns=[("solo", 0.001, 10.0)])
        assert len(rows) == 1 and rows[0].campaign == "solo"
