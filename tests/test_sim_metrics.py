"""Tests for counters, time series, histograms and the registry."""

import pytest

from repro.sim.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    summary_stats,
)


class TestSummaryStats:
    def test_empty_is_zeros(self):
        stats = summary_stats([])
        assert stats == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "stddev": 0.0,
        }

    def test_basic(self):
        stats = summary_stats([1.0, 2.0, 3.0])
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["stddev"] == pytest.approx((2.0 / 3.0) ** 0.5)

    def test_stddev_is_population_not_sample(self):
        # [2, 4, 4, 4, 5, 5, 7, 9] is the textbook known-variance set:
        # mean 5, population variance exactly 4 (stddev 2). The sample
        # (n-1) estimator would give sqrt(32/7) ≈ 2.138 — this test pins
        # the documented divisor-n choice and fails if anyone "fixes" it.
        stats = summary_stats([2, 4, 4, 4, 5, 5, 7, 9])
        assert stats["mean"] == pytest.approx(5.0)
        assert stats["stddev"] == pytest.approx(2.0)
        assert stats["stddev"] != pytest.approx((32.0 / 7.0) ** 0.5)

    def test_stddev_zero_for_constant_sequence(self):
        stats = summary_stats([3.5] * 10)
        assert stats["stddev"] == 0.0
        assert stats["min"] == stats["max"] == stats["mean"] == 3.5


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_decrement_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").increment(-1)


class TestTimeSeries:
    def test_record_and_stats(self):
        series = TimeSeries("s")
        series.record(0.0, 10.0)
        series.record(1.0, 20.0)
        assert len(series) == 2
        assert series.last == 20.0
        assert series.stats()["mean"] == pytest.approx(15.0)

    def test_non_decreasing_times_enforced(self):
        series = TimeSeries("s")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            series.record(4.0, 2.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("s")
        series.record(5.0, 1.0)
        series.record(5.0, 2.0)
        assert len(series) == 2

    def test_time_weighted_mean(self):
        series = TimeSeries("s")
        series.record(0.0, 10.0)  # held for 1s
        series.record(1.0, 0.0)  # held for 3s
        series.record(4.0, 99.0)  # final sample: zero width
        assert series.time_weighted_mean() == pytest.approx(10.0 / 4.0)

    def test_time_weighted_mean_too_short(self):
        series = TimeSeries("s")
        assert series.time_weighted_mean() == 0.0
        series.record(1.0, 5.0)
        assert series.time_weighted_mean() == 0.0


class TestHistogram:
    def test_bins_and_bounds(self):
        hist = Histogram("h", 0.0, 10.0, bins=10)
        hist.observe(0.5)
        hist.observe(9.5)
        hist.observe(-1.0)
        hist.observe(10.0)  # boundary counts as overflow
        assert hist.counts[0] == 1
        assert hist.counts[9] == 1
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total_observations == 4

    def test_mean_is_exact(self):
        hist = Histogram("h", 0.0, 10.0, bins=2)
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.mean == pytest.approx(2.0)

    def test_quantile(self):
        hist = Histogram("h", 0.0, 100.0, bins=100)
        for v in range(100):
            hist.observe(float(v))
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=2.0)
        assert hist.quantile(0.99) == pytest.approx(99.0, abs=2.0)

    def test_quantile_empty(self):
        assert Histogram("h", 0.0, 1.0, bins=4).quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        hist = Histogram("h", 0.0, 1.0, bins=4)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram("h", 1.0, 1.0, bins=4)
        with pytest.raises(ValueError):
            Histogram("h", 0.0, 1.0, bins=0)


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.series("b") is registry.series("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("sent").increment(3)
        registry.series("queue").record(0.0, 1.0)
        registry.histogram("lat", 0, 10, 5).observe(2.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"sent": 3}
        assert snap["series"]["queue"]["len"] == 1
        assert snap["histograms"]["lat"]["observations"] == 1
