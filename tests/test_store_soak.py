"""Tests for the recovery-equivalence soak harness.

The headline assertion reproduces the CI gate in miniature: the same
seeded crash/restart/flood scenario run durably (every restart rebuilt
from the SQLite store) and as an in-memory oracle must produce
byte-identical run manifests.
"""

import json

import pytest

from repro.chaos.deployment import ChaosDeployment
from repro.errors import SimulationError
from repro.obs.manifest import RunManifest
from repro.obs.schema import EVENT_TYPES
from repro.store import DurableStore
from repro.store.soak import (
    STORE_EVENT_TYPES,
    SoakSpec,
    StoreCrashController,
    run_soak,
)

FAST = SoakSpec(
    seed=7,
    n_isps=3,
    users_per_isp=6,
    days=0.1,
    rate_per_day=1500.0,
    commit_interval=900.0,
    crash_nodes=("isp1", "bank"),
    crash_down_for=45.0,
    flood_rate_per_sec=15.0,
    flood_duration=60.0,
)


class TestSoakSpec:
    def test_crash_plan_evenly_spaced(self):
        plan = FAST.crash_plan()
        assert [event.node for event in plan] == ["isp1", "bank"]
        assert plan[0].at == pytest.approx(FAST.duration / 3)
        assert plan[1].at == pytest.approx(2 * FAST.duration / 3)

    def test_store_event_types_schema_registered(self):
        # Excluded-from-digest types must exist in the schema, or a
        # typo'd name would silently fail to exclude anything.
        for etype in STORE_EVENT_TYPES:
            assert etype in EVENT_TYPES


class TestRecoveryEquivalence:
    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("soak")
        durable_manifest = str(tmp / "durable.json")
        oracle_manifest = str(tmp / "oracle.json")
        durable = run_soak(
            FAST,
            store_path=str(tmp / "soak.db"),
            manifest_path=durable_manifest,
        )
        oracle = run_soak(FAST, manifest_path=oracle_manifest)
        return durable, oracle, durable_manifest, oracle_manifest

    def test_both_modes_pass(self, pair):
        durable, oracle, _, _ = pair
        assert durable["passed"], durable
        assert oracle["passed"], oracle

    def test_crashes_actually_injected(self, pair):
        durable, _, _, _ = pair
        assert durable["stats"]["crashes"] == 2
        assert durable["stats"]["restarts"] == 2

    def test_manifests_byte_identical(self, pair):
        _, _, durable_path, oracle_path = pair
        durable_bytes = open(durable_path, "rb").read()
        oracle_bytes = open(oracle_path, "rb").read()
        assert durable_bytes == oracle_bytes

    def test_final_digests_match(self, pair):
        durable, oracle, _, _ = pair
        assert durable["final_digest"] == oracle["final_digest"]
        assert durable["cuts"] == oracle["cuts"]

    def test_manifest_is_valid_document(self, pair):
        _, _, durable_path, _ = pair
        manifest = RunManifest.from_json(open(durable_path).read())
        assert manifest.seed == FAST.seed
        assert manifest.extra["scenario"] == "store-soak"
        assert manifest.extra["converged"] is True
        assert manifest.extra["violations"] == 0

    def test_store_verifies_after_soak(self, pair):
        durable, _, _, _ = pair
        assert durable["store_records"] > 0
        assert durable["store_barrier"] == durable["cuts"]


class TestStoreCrashController:
    @pytest.fixture
    def rig(self, tmp_path):
        deployment = ChaosDeployment(
            n_isps=2, users_per_isp=3, seed=3, faults=None
        )
        store = DurableStore.create(str(tmp_path / "rig.db"))
        controller = StoreCrashController(deployment, store)
        deployment.crash_controller = controller
        yield deployment, store, controller
        store.close()

    def test_crash_persists_node_state(self, rig):
        _, store, controller = rig
        controller.crash("isp0")
        assert store.get("journal", "isp0") is not None
        assert store.get("endpoint", "isp0") is not None

    def test_restart_consumes_node_state(self, rig):
        _, store, controller = rig
        controller.crash("isp0")
        controller.restart("isp0")
        assert store.get("journal", "isp0") is None
        assert store.get("endpoint", "isp0") is None

    def test_restart_without_journal_raises(self, rig):
        _, _, controller = rig
        with pytest.raises(SimulationError, match="no crash journal"):
            controller.restart("isp0")

    def test_restart_with_missing_endpoint_raises(self, rig):
        _, store, controller = rig
        controller.crash("bank")
        store.commit([], barrier=store.barrier, deletes=[("endpoint", "bank")])
        with pytest.raises(SimulationError, match="no endpoint state"):
            controller.restart("bank")

    def test_tampered_journal_refuses_restart(self, rig):
        _, store, controller = rig
        controller.crash("bank")
        sealed = store.get("journal", "bank")
        envelope = json.loads(sealed)
        envelope["payload"] = envelope["payload"].replace("0", "9", 1)
        store.commit([("journal", "bank", json.dumps(envelope))],
                     barrier=store.barrier)
        with pytest.raises(SimulationError):
            controller.restart("bank")
