#!/usr/bin/env python3
"""Distributed banks (paper §5, "Bank Setup").

The paper sketches that the central bank "can be implemented as a set of
distributed banks or a hierarchy of banks". This example runs real
traffic across 12 ISPs, splits them across three regional banks, and
shows hierarchical verification finding an injected cheater with the
heaviest verification node doing a fraction of the central bank's work.

Run:
    python examples/bank_federation.py
"""

import random

from repro.core import BankFederation, ZmailNetwork, verify_credit_matrix
from repro.sim import Address, TrafficKind


def collect_credit_reports(n_isps: int, messages: int, cheater: int):
    net = ZmailNetwork(n_isps=n_isps, users_per_isp=4, seed=77)
    rng = random.Random(77)
    for _ in range(messages):
        net.send(
            Address(rng.randrange(n_isps), rng.randrange(4)),
            Address(rng.randrange(n_isps), rng.randrange(4)),
            TrafficKind.NORMAL,
        )
    isps = net.compliant_isps()
    for isp in isps.values():
        isp.begin_snapshot(0)
    reports = {}
    for isp_id, isp in sorted(isps.items()):
        credit = isp.snapshot_reply()
        isp.resume_sending()
        if isp_id == cheater:
            credit = {k: v + 12 for k, v in credit.items()}  # misreport
        reports[isp_id] = credit
    return reports


def main() -> None:
    n_isps, cheater = 12, 7
    reports = collect_credit_reports(n_isps, messages=4000, cheater=cheater)

    central = verify_credit_matrix(reports)
    central_pairs = n_isps * (n_isps - 1) // 2
    print(f"central bank:   {central_pairs} pairs checked at one node, "
          f"{len(central)} inconsistent")

    federation = BankFederation(
        [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
    )
    outcome = federation.reconcile(reports)
    print("federated (3 regions):")
    for region in outcome.regions:
        print(f"  region {region.region}: {region.local_pairs_checked} "
              f"local pairs, {len(region.local_inconsistent)} inconsistent, "
              f"{region.foreign_rows_forwarded} rows forwarded")
    print(f"  root: {outcome.root_pairs_checked} cross-region pairs, "
          f"{len(outcome.root_inconsistent)} inconsistent")
    heaviest = max(
        [outcome.root_pairs_checked]
        + [r.local_pairs_checked for r in outcome.regions]
    )
    print(f"\nheaviest single node: {heaviest} pairs "
          f"(central bank: {central_pairs})")
    print(f"total coverage unchanged: "
          f"{outcome.total_pairs_checked == central_pairs}")
    print(f"cheater isp{cheater} detected: {cheater in outcome.suspects()}")
    assert outcome.total_pairs_checked == central_pairs
    assert cheater in outcome.suspects()


if __name__ == "__main__":
    main()
