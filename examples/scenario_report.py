#!/usr/bin/env python3
"""The declarative Scenario API: a full mixed simulation in one spec.

Builds the kitchen-sink deployment — 4 ISPs (one non-compliant), normal
correspondence, a funded spammer on a compliant ISP, a free-riding
spammer on the non-compliant one, and a zombie outbreak — runs five
virtual days with daily reconciliation, and prints the summary report.

Run:
    python examples/scenario_report.py
"""

from repro.core import NonCompliantMailPolicy, ZmailConfig
from repro.core.scenario import Scenario, SpammerSpec, ZombieSpec
from repro.sim import DAY, HOUR, Address


def main() -> None:
    scenario = Scenario(
        n_isps=4,
        users_per_isp=12,
        compliant=[True, True, True, False],
        config=ZmailConfig(
            default_daily_limit=80,
            default_user_balance=100,
            auto_topup_amount=0,
            noncompliant_policy=NonCompliantMailPolicy.SEGREGATE,
        ),
        seed=42,
        duration=5 * DAY,
        normal_rate_per_day=6.0,
        spammers=[
            SpammerSpec(Address(0, 0), volume=1_500, war_chest=150),
            SpammerSpec(Address(3, 0), volume=1_500),
        ],
        zombies=[
            ZombieSpec(
                Address(1, 11), rate_per_hour=120.0,
                start=2 * DAY, end=2 * DAY + 10 * HOUR,
            )
        ],
        reconcile_every=DAY,
    )
    result = scenario.run()

    print("Scenario: 4 ISPs (3 compliant), 5 days, mixed adversaries\n")
    for key, value in result.summary().items():
        print(f"  {key:<24} {value}")

    print("\nPer-reconciliation rounds:")
    for report in result.reconciliations:
        print(f"  round {report.round_seq}: consistent={report.consistent}, "
              f"pairs={report.pairs_checked}, "
              f"ops={report.settlement_operations}")

    print("\nZombie detections:")
    for detection in result.zombie_detections:
        print(f"  {detection.address} blocked at limit "
              f"{detection.daily_limit} (liability <= "
              f"{detection.liability_epennies} e-pennies)")

    assert result.conserved
    assert result.all_reconciliations_consistent
    print("\nconservation + consistency: OK")


if __name__ == "__main__":
    main()
