#!/usr/bin/env python3
"""Spam economics under Zmail: the paper's §1.2 market-forces story.

Part 1 computes the analytic break-even table (cost ratio, optimal
campaign volumes under both regimes). Part 2 validates it behaviourally:
a funded spammer blasts a simulated deployment and runs out of e-pennies,
while the same campaign on the status-quo (non-compliant) path is free.

Run:
    python examples/spam_economics.py
"""

from repro.core import ZmailConfig, ZmailNetwork
from repro.economics import (
    break_even_table,
    cost_increase_factor,
    project_market,
    CampaignModel,
)
from repro.sim import DAY, Address, SeededStreams
from repro.sim.workload import SpamCampaignWorkload


def analytic_part() -> None:
    print("=" * 72)
    print("Part 1 — analytic break-even (paper §1.2, claim 1)")
    print("=" * 72)
    print(f"per-message cost increase factor: {cost_increase_factor():.0f}x "
          "(paper: 'at least two orders of magnitude')\n")

    header = (f"{'campaign':<16} {'conv.rate':>9} {'$/resp':>7} "
              f"{'volume(SQ)':>11} {'volume(Zmail)':>13} {'reduction':>9}")
    print(header)
    print("-" * len(header))
    for row in break_even_table():
        print(f"{row.campaign:<16} {row.conversion_rate:>9.5f} "
              f"{row.revenue_per_response:>7.0f} {row.statusquo_volume:>11,} "
              f"{row.zmail_volume:>13,} {row.volume_reduction:>8.0%}")

    before, after = project_market(
        campaigns=[
            CampaignModel(1_000_000, 0.00003, 25.0),
            CampaignModel(1_000_000, 0.00005, 40.0),
            CampaignModel(1_000_000, 0.002, 30.0),
        ]
    )
    print(f"\nmarket projection: spam share {before.spam_share:.0%} -> "
          f"{after.spam_share:.0%}; ISP annual cost "
          f"${before.isp_annual_cost:,.0f} -> ${after.isp_annual_cost:,.0f}")


def behavioural_part() -> None:
    print()
    print("=" * 72)
    print("Part 2 — behavioural check on a simulated deployment")
    print("=" * 72)
    config = ZmailConfig(
        default_daily_limit=100_000,
        default_user_balance=50,
        auto_topup_amount=0,
    )
    net = ZmailNetwork(n_isps=4, users_per_isp=25, config=config, seed=7)
    spammer = Address(0, 0)
    war_chest = 2_000  # e-pennies the spammer can afford ($20.00)
    net.fund_user(spammer, epennies=war_chest)

    campaign = SpamCampaignWorkload(
        spammer=spammer, n_isps=4, users_per_isp=25,
        volume=10_000, start=0.0, duration=DAY, streams=SeededStreams(7),
    )
    net.run_workload(campaign.generate())

    sent = net.metrics.counter("send.sent_paid").value
    local = net.metrics.counter("send.delivered_local").value
    blocked = net.metrics.counter("send.blocked_balance").value
    print(f"campaign attempted: 10,000 messages")
    print(f"delivered (paid):   {sent + local:,} "
          f"(bounded by the ${war_chest / 100:.2f} war chest + windfalls)")
    print(f"blocked (broke):    {blocked:,}")

    windfall = sum(
        user.balance - config.default_user_balance
        for isp_id, isp in net.compliant_isps().items()
        for user in isp.ledger.users()
        if Address(isp_id, user.user_id) != spammer
    )
    print(f"receivers' windfall: {windfall:,} e-pennies "
          "(the paper: 'a windfall rather than a nuisance')")
    assert net.total_value() == net.expected_total_value()
    print("conservation audit: OK")


def main() -> None:
    analytic_part()
    behavioural_part()


if __name__ == "__main__":
    main()
