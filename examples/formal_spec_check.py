#!/usr/bin/env python3
"""Model-check the paper's §4 formal specification (Abstract Protocol).

Runs the transliterated AP-notation spec under a randomized weakly-fair
scheduler with invariants checked after every step, both honestly and
with an injected cheating ISP — reproducing the §4.4 claim that the bank
"can detect the suspected misbehaved ISPs".

Run:
    python examples/formal_spec_check.py
"""

from repro.apn import (
    CheatMode,
    ZmailSpecConfig,
    build_zmail_protocol,
    total_value,
)


def honest_run() -> None:
    print("Honest run: 3 ISPs x 3 users, 4000 scheduler steps")
    config = ZmailSpecConfig(n=3, m=3, seed=7, key_bits=128)
    protocol = build_zmail_protocol(config)
    initial = total_value(protocol.state, config)
    steps = protocol.run(4_000)
    final = total_value(protocol.state, config)
    print(f"  steps executed:          {steps}")
    print(f"  invariants checked:      conservation, non-negativity, "
          "credit anti-symmetry (after every step)")
    print(f"  total value start/end:   {initial} / {final}")
    print(f"  reconciliation rounds:   {protocol.completed_rounds()}")
    print(f"  inconsistencies flagged: {len(protocol.flagged_pairs())}")
    emails = sum(isp["delivered"] for isp in protocol.isps)
    print(f"  emails delivered:        {emails}\n")
    assert initial == final
    assert not protocol.flagged_pairs()


def cheater_run() -> None:
    print("Cheater run: ISP 1 inflates its credit claims")
    config = ZmailSpecConfig(
        n=3, m=3, seed=11, key_bits=128,
        cheaters={1: CheatMode.INFLATE_SENT},
    )
    protocol = build_zmail_protocol(config)
    protocol.run(6_000)
    pairs = protocol.flagged_pairs()
    implicated: dict[int, int] = {}
    for a, b in pairs:
        implicated[a] = implicated.get(a, 0) + 1
        implicated[b] = implicated.get(b, 0) + 1
    print(f"  reconciliation rounds: {protocol.completed_rounds()}")
    print(f"  flagged pairs:         {len(pairs)}")
    print(f"  implication counts:    {dict(sorted(implicated.items()))}")
    suspect = max(implicated, key=implicated.get)
    print(f"  prime suspect:         isp[{suspect}] (injected cheater: isp[1])")
    assert suspect == 1


def main() -> None:
    honest_run()
    cheater_run()


if __name__ == "__main__":
    main()
