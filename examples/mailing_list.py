#!/usr/bin/env python3
"""Mailing lists under Zmail (paper §5).

A volunteer list with 30 subscribers posts repeatedly. With automated
acknowledgments the distributor's cost is zero; without them each post
costs the full fan-out. Stale subscribers (who never acknowledge) are
pruned automatically — the paper's hygiene side benefit.

Run:
    python examples/mailing_list.py
"""

from repro.core import ZmailNetwork
from repro.core.mailinglist import ListServer
from repro.sim import Address


def build(prune_after: int) -> tuple[ZmailNetwork, ListServer, set[Address]]:
    net = ZmailNetwork(n_isps=3, users_per_isp=12, seed=5)
    distributor = Address(0, 0)
    net.fund_user(distributor, epennies=1_000)
    server = ListServer(net, distributor, prune_after_misses=prune_after)
    members = [
        Address(isp, user)
        for isp in range(3)
        for user in range(12)
        if Address(isp, user) != distributor
    ][:30]
    for member in members:
        server.subscribe(member)
    # A tenth of the list is dead addresses that never acknowledge.
    dead = set(members[::10])
    return net, server, dead


def main() -> None:
    print("With acknowledgments (and pruning after 2 misses):")
    net, server, dead = build(prune_after=2)
    ack_fn = lambda address: address not in dead
    for post in range(4):
        outcome = server.post(ack_probability_fn=ack_fn)
        print(f"  post {post}: sent={outcome.sent_ok:>2} "
              f"acked={outcome.acked:>2} net cost={outcome.net_epenny_cost:>2} "
              f"e-pennies; pruned={len(outcome.pruned)}")
    print(f"  subscribers remaining: {len(server)} "
          f"(started with 30, {len(dead)} were dead)")
    print(f"  distributor total cost: {server.total_net_cost()} e-pennies\n")

    print("Without acknowledgments (the naive §5 worry):")
    net2, server2, _ = build(prune_after=0)
    for post in range(4):
        outcome = server2.post(ack_probability_fn=lambda a: False)
        print(f"  post {post}: sent={outcome.sent_ok:>2} "
              f"net cost={outcome.net_epenny_cost:>2} e-pennies")
    print(f"  distributor total cost: {server2.total_net_cost()} e-pennies")

    assert net.total_value() == net.expected_total_value()
    assert net2.total_value() == net2.expected_total_value()
    print("\nconservation audits: OK")


if __name__ == "__main__":
    main()
