#!/usr/bin/env python3
"""Zombie outbreak containment (paper §4.1, §5).

A virus turns three users into zombies blasting mail at machine speed.
The per-user daily limit bounds each victim's liability and — because
hitting the limit is itself the signal — detects every zombie, while
normal users sail through unaffected.

Run:
    python examples/zombie_outbreak.py
"""

from repro.core import ZmailConfig, ZmailNetwork
from repro.core.zombie import ZombieMonitor
from repro.sim import DAY, HOUR, Address, SeededStreams
from repro.sim.workload import (
    NormalUserWorkload,
    ZombieBurstWorkload,
    merge_workloads,
)


def main() -> None:
    limit = 40
    config = ZmailConfig(
        default_daily_limit=limit,
        default_user_balance=500,
        auto_topup_amount=0,
    )
    net = ZmailNetwork(n_isps=3, users_per_isp=10, config=config, seed=13)
    monitor = ZombieMonitor(net)
    streams = SeededStreams(13)

    zombies = [Address(0, 3), Address(1, 7), Address(2, 1)]
    bursts = [
        ZombieBurstWorkload(
            zombie=z, n_isps=3, users_per_isp=10,
            rate_per_hour=200.0, start=i * HOUR, end=i * HOUR + 8 * HOUR,
            streams=streams.spawn(f"burst{i}"),
        ).generate()
        for i, z in enumerate(zombies)
    ]
    normal = NormalUserWorkload(
        n_isps=3, users_per_isp=10, rate_per_day=5.0, streams=streams
    ).generate(DAY)

    net.run_workload(merge_workloads(normal, *bursts))
    detections = monitor.poll()

    print(f"daily limit: {limit} messages/user")
    print(f"zombies injected: {len(zombies)}, detected: {len(detections)}\n")
    for detection in detections:
        user = net.isps[detection.address.isp].ledger.user(
            detection.address.user
        )
        spent = config.default_user_balance - user.balance
        print(f"  {detection.address}: blocked after hitting the limit; "
              f"liability {spent} e-pennies (bound: {limit})")
        assert spent <= limit

    blocked = net.metrics.counter("send.blocked_limit").value
    print(f"\nvirus messages refused by the limit: {blocked:,}")

    false_positives = {d.address for d in detections} - set(zombies)
    print(f"innocent users flagged: {len(false_positives)}")
    assert not false_positives
    assert {d.address for d in detections} == set(zombies)
    assert net.total_value() == net.expected_total_value()
    print("conservation audit: OK")


if __name__ == "__main__":
    main()
