#!/usr/bin/env python3
"""Quickstart: a two-ISP Zmail deployment in ~40 lines.

Builds the smallest interesting deployment — two compliant ISPs, a
central bank, a handful of users — sends some mail, and shows the
zero-sum accounting plus a reconciliation round.

Run:
    python examples/quickstart.py
"""

from repro.core import ZmailNetwork
from repro.sim import Address, TrafficKind


def main() -> None:
    # Two compliant ISPs with 5 users each; the bank is created inside.
    net = ZmailNetwork(n_isps=2, users_per_isp=5, seed=1)
    alice = Address(0, 1)  # user 1 at ISP 0
    bob = Address(1, 2)  # user 2 at ISP 1

    balance = net.config.default_user_balance
    print(f"Every user starts with {balance} e-pennies.\n")

    # Alice sends Bob three emails; each moves one e-penny to Bob.
    for i in range(3):
        receipt = net.send(alice, bob, TrafficKind.NORMAL)
        print(f"email {i + 1}: {receipt.status.value}")

    # Bob replies once.
    net.send(bob, alice, TrafficKind.NORMAL)

    alice_acct = net.isps[0].ledger.user(1)
    bob_acct = net.isps[1].ledger.user(2)
    print(f"\nAlice: sent {alice_acct.lifetime_sent}, "
          f"received {alice_acct.lifetime_received}, "
          f"balance {alice_acct.balance} e-pennies")
    print(f"Bob:   sent {bob_acct.lifetime_sent}, "
          f"received {bob_acct.lifetime_received}, "
          f"balance {bob_acct.balance} e-pennies")

    # The inter-ISP credit arrays mirror the traffic...
    print(f"\nISP0 credit toward ISP1: {net.isps[0].credit.get(1, 0)}")
    print(f"ISP1 credit toward ISP0: {net.isps[1].credit.get(0, 0)}")

    # ...and the bank's reconciliation verifies their anti-symmetry.
    report = net.reconcile("direct")
    print(f"\nreconciliation round {report.round_seq}: "
          f"consistent={report.consistent}, "
          f"pairs checked={report.pairs_checked}")

    # Global conservation: no e-penny was created or destroyed.
    assert net.total_value() == net.expected_total_value()
    print("conservation audit: OK")


if __name__ == "__main__":
    main()
