#!/usr/bin/env python3
"""Incremental deployment from two compliant ISPs (paper §1.3, §5).

Part 1 runs the round-based adoption model and prints the S-curve —
"the good experience of the users of compliant ISPs will attract more
people to switch... Eventually, we envision that Zmail will spread over
the Internet."

Part 2 shows a concrete deployment flipping ISPs compliant mid-run with
``ZmailNetwork.make_compliant`` and mail seamlessly becoming paid.

Run:
    python examples/incremental_deployment.py
"""

from repro.core import (
    AdoptionParams,
    AdoptionSimulation,
    NonCompliantMailPolicy,
    SendStatus,
    ZmailNetwork,
)
from repro.sim import Address


def adoption_curve() -> None:
    print("Adoption dynamics (100 ISPs, starting from 2 compliant):")
    sim = AdoptionSimulation(
        AdoptionParams(
            n_isps=100,
            initial_compliant=2,
            policy=NonCompliantMailPolicy.SEGREGATE,
            base_switch_propensity=0.15,
            seed=3,
        )
    )
    sim.run(max_rounds=60)
    for record in sim.rounds:
        if record.round_index % 2:
            continue
        bar = "#" * int(50 * record.compliant_fraction)
        print(f"  round {record.round_index:>2}: {bar:<50} "
              f"{record.compliant_fraction:>4.0%} "
              f"(spam seen by compliant user: "
              f"{record.spam_seen_by_compliant_user:.2f})")
    print(f"\n  positive feedback (hazard grows with adoption): "
          f"{sim.has_positive_feedback()}")
    print(f"  rounds to 50%: {sim.rounds_to_fraction(0.5)}, "
          f"to 90%: {sim.rounds_to_fraction(0.9)}\n")


def live_flip() -> None:
    print("Flipping a live ISP compliant mid-run:")
    net = ZmailNetwork(
        n_isps=3, users_per_isp=5, compliant=[True, True, False], seed=4
    )
    before = net.send(Address(0, 0), Address(2, 0))
    print(f"  mail to ISP2 while non-compliant: {before.status.value} "
          "(free, no e-penny)")
    net.make_compliant(2)
    after = net.send(Address(0, 0), Address(2, 0))
    print(f"  mail to ISP2 after joining:       {after.status.value} "
          "(paid, zero-sum)")
    assert before.status is SendStatus.SENT_UNPAID
    assert after.status is SendStatus.SENT_PAID
    report = net.reconcile("direct")
    print(f"  first reconciliation with 3 ISPs: consistent={report.consistent}")


def main() -> None:
    adoption_curve()
    live_flip()


if __name__ == "__main__":
    main()
