#!/usr/bin/env python3
"""Zmail over real SMTP on localhost (paper §1.3).

"Zmail can be implemented on top of the current Internet email protocol
SMTP... Zmail requires no change to SMTP." This demo proves it live: two
ISP domains run genuine asyncio SMTP servers on localhost TCP ports; a
plain SMTP client submits stamped messages; the receiving handlers drive
the Zmail ledgers.

Run:
    python examples/smtp_live_demo.py
"""

import asyncio

from repro.core import ZmailNetwork
from repro.sim import Address, TrafficKind
from repro.smtp import (
    Envelope,
    MailMessage,
    SMTPClient,
    SMTPServer,
    ZmailStamp,
    from_sim_address,
    read_stamp,
    stamp_message,
    to_sim_address,
)


class Gateway:
    """One ISP's SMTP face over the shared Zmail deployment."""

    def __init__(self, network: ZmailNetwork, isp_id: int) -> None:
        self.network = network
        self.isp_id = isp_id
        self.server = SMTPServer(self.handle, hostname=f"isp{isp_id}.example")

    async def handle(self, envelope: Envelope) -> None:
        sender = to_sim_address(envelope.mail_from)
        recipient = to_sim_address(envelope.rcpt_to)
        stamp = read_stamp(envelope.message)
        origin = stamp.sender_isp if stamp else "unstamped"
        receipt = self.network.send(sender, recipient, TrafficKind.NORMAL)
        print(f"    [isp{self.isp_id}] accepted {envelope.mail_from} -> "
              f"{envelope.rcpt_to} (stamp: {origin}, "
              f"outcome: {receipt.status.value})")


async def demo() -> None:
    network = ZmailNetwork(n_isps=2, users_per_isp=4, seed=99)
    gateway = Gateway(network, isp_id=1)
    host, port = await gateway.server.start()
    print(f"ISP1's SMTP server listening on {host}:{port}\n")

    alice, bob = Address(0, 1), Address(1, 2)
    client = SMTPClient(host, port)
    await client.connect()
    print("sending 3 messages over the wire:")
    for i in range(3):
        message = MailMessage.compose(
            sender=str(from_sim_address(alice)),
            recipient=str(from_sim_address(bob)),
            subject=f"hello #{i}",
            body="Paid for with one e-penny.\n.leading-dot line survives too",
        )
        stamped = stamp_message(message, ZmailStamp(sender_isp="isp0"))
        await client.send(
            Envelope(str(from_sim_address(alice)),
                     str(from_sim_address(bob)), stamped)
        )
    await client.quit()
    await gateway.server.stop()

    print("\nledger state after the wire traffic:")
    sender_acct = network.isps[0].ledger.user(1)
    receiver_acct = network.isps[1].ledger.user(2)
    print(f"  alice balance: {sender_acct.balance} "
          f"(paid {sender_acct.lifetime_sent} e-pennies)")
    print(f"  bob balance:   {receiver_acct.balance} "
          f"(earned {receiver_acct.lifetime_received})")
    report = network.reconcile("direct")
    print(f"  reconciliation: consistent={report.consistent}")
    assert network.total_value() == network.expected_total_value()
    print("  conservation audit: OK")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
