#!/usr/bin/env python3
"""An adaptive spammer discovers Zmail's economics the hard way.

The operator knows nothing about the pricing regime — it only watches its
own profit and scales volume up on gains, down on losses. Under the
status quo (free riding from a non-compliant ISP) the campaign grows to
saturation; under Zmail the same loop extinguishes itself within a few
periods. "Market forces will control the volume of spam" — operationally.

Run:
    python examples/adaptive_spammer.py
"""

from repro.core import ZmailConfig, ZmailNetwork
from repro.economics.adaptive import AdaptiveSpammer
from repro.sim import Address


def run_regime(label: str, *, compliant_spammer: bool) -> None:
    flags = [True, True, True] if compliant_spammer else [True, True, False]
    net = ZmailNetwork(
        n_isps=3, users_per_isp=10, compliant=flags,
        config=ZmailConfig(
            default_daily_limit=10**6,
            default_user_balance=10**6,
            auto_topup_amount=0,
        ),
        seed=82,
    )
    spammer = AdaptiveSpammer(
        network=net,
        address=Address(0 if compliant_spammer else 2, 0),
        conversion_rate=0.0002,  # profitable at $0.0001/msg, ruinous at 1¢
        epenny_dollars=0.01 if compliant_spammer else 0.0,
        initial_volume=10_000,
        seed=82,
    )
    spammer.run(periods=8)
    print(f"{label}:")
    print(f"  {'period':>6} {'volume':>8} {'conversions':>11} {'profit':>10}")
    for outcome in spammer.history:
        print(f"  {outcome.period:>6} {outcome.attempted:>8,} "
              f"{outcome.conversions:>11} {outcome.profit:>10.2f}")
    print(f"  final volume: {spammer.final_volume():,}   "
          f"total profit: ${spammer.total_profit():,.2f}\n")


def main() -> None:
    print("Same operator, same feedback rule, two pricing regimes.\n")
    run_regime("status quo (free riding)", compliant_spammer=False)
    run_regime("Zmail (1 e-penny per message)", compliant_spammer=True)


if __name__ == "__main__":
    main()
